"""Parameterized drift models and the live drift state of one core.

The analog stack only hits the paper's accuracy/energy numbers while it
stays calibrated: MRR resonances wander thermally, the comb laser ages,
row-TIA transimpedance drifts, and the eoADC's thresholding comparators
accumulate input-referred offset with use.  This module models those
processes at the *serving* level: each :class:`DriftModel` is a
deterministic function of modelled wall-clock seconds and inference
count, and a :class:`DriftState` composes a suite of models into the
live hardware truth of one core.

Every perturbation collapses onto the three knobs the mixed-signal
read-out chain actually exposes (see
:meth:`repro.core.tensor_core.PhotonicTensorCore.matvec`):

* ``current_scale`` — multiplicative error on the summed row
  photocurrent (thermal MRR detuning, laser power decay);
* ``gain_scale`` — multiplicative error on the row-TIA transimpedance;
* ``voltage_offset`` — additive input-referred offset at the eoADC
  (comparator aging), in volts.

The state also owns the *compensation* — the trims the last
recalibration programmed into the hardware (TIA gain trim absorbing
multiplicative error, ladder re-bisection absorbing the offset).  The
serving engines evaluate the **residual** (truth relative to the
compensation they were compiled under), so a freshly recalibrated core
is bit-for-bit pristine and then degrades again as drift continues.

Drift is deterministic by construction (no hidden RNG): replaying a
trace replays the exact degradation, which is what the recovery
benches and the regression suite need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import ThermalSpec
from ..errors import ConfigurationError


@dataclass(frozen=True)
class Perturbation:
    """One composed hardware error triple; identity = no perturbation."""

    #: Multiplicative error on the summed row photocurrent.
    current_scale: float = 1.0
    #: Multiplicative error on the row-TIA transimpedance.
    gain_scale: float = 1.0
    #: Additive input-referred eoADC offset [V].
    voltage_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.current_scale <= 0.0 or self.gain_scale <= 0.0:
            raise ConfigurationError(
                f"perturbation scales must be positive, got "
                f"current_scale={self.current_scale}, gain_scale={self.gain_scale}"
            )

    @property
    def is_identity(self) -> bool:
        return (
            self.current_scale == 1.0
            and self.gain_scale == 1.0
            and self.voltage_offset == 0.0
        )

    def compose(self, other: "Perturbation") -> "Perturbation":
        """Stack two independent perturbations: scales multiply,
        offsets add."""
        return Perturbation(
            current_scale=self.current_scale * other.current_scale,
            gain_scale=self.gain_scale * other.gain_scale,
            voltage_offset=self.voltage_offset + other.voltage_offset,
        )

    def relative_to(self, reference: "Perturbation") -> "Perturbation":
        """This perturbation as seen through hardware trimmed for
        ``reference``: the residual the read-out chain actually
        suffers.  ``truth.relative_to(truth)`` is the identity."""
        return Perturbation(
            current_scale=self.current_scale / reference.current_scale,
            gain_scale=self.gain_scale / reference.gain_scale,
            voltage_offset=self.voltage_offset - reference.voltage_offset,
        )


def apply_read_out(residual, currents, front_gain: float, full_scale: float):
    """The shared mixed-signal read-out arithmetic: photocurrents
    through the (possibly drifted) TIA onto the clipped eoADC input
    range.  Returns ``(currents, voltages)``.

    Both the device loop (:meth:`~repro.core.tensor_core.
    PhotonicTensorCore.matvec`) and the compiled fast path
    (:meth:`~repro.runtime.engine.CompiledCore.matmul`) evaluate this
    one function — keeping the term order in a single place is what
    *guarantees* they agree code-for-code at every age.  ``residual``
    is the surviving :class:`Perturbation` (None or the identity =
    pristine hardware, evaluated with the exact drift-free
    arithmetic); ``front_gain`` is the caller's ``gain * tia_gain``
    product.
    """
    if residual is not None and residual.is_identity:
        residual = None
    if residual is None:
        voltages = np.clip(front_gain * currents, 0.0, full_scale - 1e-9)
        return currents, voltages
    currents = currents * residual.current_scale
    voltages = np.clip(
        front_gain * residual.gain_scale * currents + residual.voltage_offset,
        0.0,
        full_scale - 1e-9,
    )
    return currents, voltages


class DriftModel:
    """One degradation process of the analog stack.

    Subclasses are frozen dataclasses mapping ``(seconds, inferences)``
    — modelled wall-clock age and conversions served — to a
    :class:`Perturbation`.  ``stage`` names the read-out stage the
    model perturbs (``optical`` / ``tia`` / ``adc``), which is the
    granularity the :class:`~repro.health.monitor.HealthMonitor`
    attributes probe errors at.
    """

    kind = "drift"
    stage = "optical"

    def perturbation(self, seconds: float, inferences: int) -> Perturbation:
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind


@dataclass(frozen=True)
class ThermalDetuning(DriftModel):
    """Ambient thermal wander detuning the compute-ring resonances.

    A sinusoidal temperature excursion of ``amplitude_kelvin`` with
    period ``period_s`` shifts every ring resonance by the silicon
    thermo-optic coefficient; the carrier slides along the ring flank,
    attenuating the summed photocurrent.  The attenuation is the
    behavioural quadratic flank model ``1 - (shift / linewidth)^2``
    floored at ``floor`` (a ring pulled a full linewidth off its
    operating point has long tripped the thermal-lock alarm).
    """

    kind = "thermal_detuning"
    stage = "optical"

    #: Peak temperature excursion [K].
    amplitude_kelvin: float = 0.25
    #: Excursion period [s] (slow HVAC-class wander).
    period_s: float = 60.0
    #: Resonance shift per Kelvin [m/K]; silicon O-band default.
    shift_per_kelvin: float = ThermalSpec.shift_per_kelvin
    #: Ring linewidth scale [m] normalizing the flank attenuation.
    linewidth: float = 50e-12
    #: Lowest transmission the detuning can drag the path to.
    floor: float = 0.25

    def __post_init__(self) -> None:
        if self.amplitude_kelvin < 0.0:
            raise ConfigurationError(
                f"amplitude must be non-negative, got {self.amplitude_kelvin}"
            )
        if self.period_s <= 0.0 or self.linewidth <= 0.0:
            raise ConfigurationError(
                "thermal drift needs positive period_s and linewidth"
            )
        if not 0.0 < self.floor <= 1.0:
            raise ConfigurationError(f"floor must be in (0, 1], got {self.floor}")

    def perturbation(self, seconds: float, inferences: int) -> Perturbation:
        delta_t = self.amplitude_kelvin * math.sin(
            2.0 * math.pi * seconds / self.period_s
        )
        shift = self.shift_per_kelvin * delta_t
        scale = max(1.0 - (shift / self.linewidth) ** 2, self.floor)
        return Perturbation(current_scale=scale)


@dataclass(frozen=True)
class LaserPowerDecay(DriftModel):
    """Comb laser output power decaying exponentially with age."""

    kind = "laser_power_decay"
    stage = "optical"

    #: Fractional power-decay rate [1/s].
    rate_per_s: float = 1e-4

    def __post_init__(self) -> None:
        if self.rate_per_s < 0.0:
            raise ConfigurationError(
                f"decay rate must be non-negative, got {self.rate_per_s}"
            )

    def perturbation(self, seconds: float, inferences: int) -> Perturbation:
        return Perturbation(current_scale=math.exp(-self.rate_per_s * seconds))


@dataclass(frozen=True)
class TiaGainDrift(DriftModel):
    """Row-TIA transimpedance drifting linearly with age.

    ``drift_per_s`` may be negative (gain droop) or positive (peaking);
    the scale is clamped to a sane analog range so a long idle gap
    cannot drive the model through zero.
    """

    kind = "tia_gain_drift"
    stage = "tia"

    #: Fractional gain change per second (signed).
    drift_per_s: float = -2e-4
    #: Clamp range of the resulting gain scale.
    minimum_scale: float = 0.05
    maximum_scale: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 < self.minimum_scale < 1.0 < self.maximum_scale:
            raise ConfigurationError(
                "gain drift clamps must satisfy 0 < minimum < 1 < maximum"
            )

    def perturbation(self, seconds: float, inferences: int) -> Perturbation:
        scale = 1.0 + self.drift_per_s * seconds
        scale = min(max(scale, self.minimum_scale), self.maximum_scale)
        return Perturbation(gain_scale=scale)


@dataclass(frozen=True)
class ComparatorOffsetAging(DriftModel):
    """eoADC thresholding comparators aging with use.

    Hot-carrier / BTI-class aging grows an input-referred offset with
    every conversion the chain performs; the offset saturates at
    ``saturation_volts`` (the classic asymptotic aging curve, linear in
    early life).
    """

    kind = "comparator_offset_aging"
    stage = "adc"

    #: Offset growth per conversion [V] (signed).
    volts_per_inference: float = 1e-7
    #: Magnitude the offset saturates at [V].
    saturation_volts: float = 0.4

    def __post_init__(self) -> None:
        if self.saturation_volts <= 0.0:
            raise ConfigurationError(
                f"saturation must be positive, got {self.saturation_volts}"
            )

    def perturbation(self, seconds: float, inferences: int) -> Perturbation:
        magnitude = min(
            abs(self.volts_per_inference) * inferences, self.saturation_volts
        )
        return Perturbation(
            voltage_offset=math.copysign(magnitude, self.volts_per_inference)
        )


#: The read-out stages attribution decomposes the residual into.
DRIFT_STAGES = ("optical", "tia", "adc")


class DriftState:
    """The live degradation state of one physical core.

    Owns a suite of :class:`DriftModel` processes, the modelled clock
    they evolve on (wall-clock seconds + conversions served — advanced
    by the session after every flush, or explicitly via
    :meth:`advance` / :meth:`~repro.api.PhotonicSession.age`), and the
    compensation the last recalibration trimmed into the hardware.

    Engines compiled from the core snapshot ``compensation`` and
    ``epoch`` at compile time and evaluate the residual against that
    snapshot — see :class:`repro.runtime.engine.CompiledCore` — so
    :meth:`recalibrate` makes *newly compiled* programs pristine while
    programs compiled under an older epoch keep serving with their
    stale trims until the serving caches recompile them.
    """

    def __init__(self, models=(), label: str = "core") -> None:
        if isinstance(models, DriftModel):
            models = (models,)
        models = tuple(models)
        for model in models:
            if not isinstance(model, DriftModel):
                raise ConfigurationError(
                    f"drift models must be DriftModel instances, "
                    f"got {type(model).__name__}"
                )
        self.models = models
        self.label = label
        #: Modelled wall-clock age [s] of the core.
        self.elapsed_s = 0.0
        #: Conversions (ADC sample slots) the core has served.
        self.inferences = 0
        #: Calibration epoch; bumped by every :meth:`recalibrate`.
        self.epoch = 0
        #: The trims currently programmed into the hardware.
        self.compensation = Perturbation()
        self._truth_memo: tuple[float, int, Perturbation] | None = None

    @property
    def active(self) -> bool:
        """Whether any drift process is attached (an inactive state is
        free: engines skip the residual arithmetic entirely)."""
        return bool(self.models)

    def advance(self, seconds: float = 0.0, inferences: int = 0) -> None:
        """Age the core by modelled wall-clock and/or served conversions."""
        if seconds < 0.0 or inferences < 0:
            raise ConfigurationError(
                f"drift only ages forward, got seconds={seconds}, "
                f"inferences={inferences}"
            )
        self.elapsed_s += seconds
        self.inferences += int(inferences)
        self._truth_memo = None

    def truth(self) -> Perturbation:
        """The composed hardware error right now (memoized per clock)."""
        memo = self._truth_memo
        if memo is not None and memo[0] == self.elapsed_s and memo[1] == self.inferences:
            return memo[2]
        truth = Perturbation()
        for model in self.models:
            truth = truth.compose(model.perturbation(self.elapsed_s, self.inferences))
        self._truth_memo = (self.elapsed_s, self.inferences, truth)
        return truth

    def residual(self) -> Perturbation:
        """The error surviving the *current* hardware trims — what a
        freshly compiled engine (and the device loop) suffers."""
        return self.truth().relative_to(self.compensation)

    def stage_residual(self, stage: str) -> Perturbation:
        """The residual restricted to one read-out stage's knob, used
        by the monitor's per-stage drift attribution."""
        if stage not in DRIFT_STAGES:
            raise ConfigurationError(
                f"unknown drift stage {stage!r}; choose from {list(DRIFT_STAGES)}"
            )
        residual = self.residual()
        if stage == "optical":
            return Perturbation(current_scale=residual.current_scale)
        if stage == "tia":
            return Perturbation(gain_scale=residual.gain_scale)
        return Perturbation(voltage_offset=residual.voltage_offset)

    def recalibrate(self) -> Perturbation:
        """Trim the hardware for the current truth: the programmable
        TIA gain absorbs the multiplicative error, the re-bisected
        ladder absorbs the offset.  Bumps the calibration epoch so the
        serving caches can tell stale programs from fresh ones; returns
        the new compensation."""
        self.compensation = self.truth()
        self.epoch += 1
        return self.compensation

    def restore(
        self,
        epoch: int,
        compensation,
        elapsed_s: float | None = None,
        inferences: int | None = None,
    ) -> None:
        """Adopt persisted calibration state (the warm-start path of
        :class:`repro.elastic.ProgramStore`): a replacement core takes
        over the fleet's epoch, hardware trims, and — optionally — the
        modelled age of the core it replaces, so programs compiled
        under that epoch restore bit-for-bit instead of recompiling.

        ``compensation`` is a :class:`Perturbation` or its persisted
        ``(current_scale, gain_scale, voltage_offset)`` triple.
        """
        epoch = int(epoch)
        if epoch < 0:
            raise ConfigurationError(
                f"calibration epoch must be >= 0, got {epoch}"
            )
        if not isinstance(compensation, Perturbation):
            compensation = Perturbation(*(float(value) for value in compensation))
        if elapsed_s is not None:
            if elapsed_s < 0.0:
                raise ConfigurationError(
                    f"restored core age must be >= 0 s, got {elapsed_s}"
                )
            self.elapsed_s = float(elapsed_s)
        if inferences is not None:
            if inferences < 0:
                raise ConfigurationError(
                    f"restored inference count must be >= 0, got {inferences}"
                )
            self.inferences = int(inferences)
        self.epoch = epoch
        self.compensation = compensation
        self._truth_memo = None

    def describe(self) -> str:
        if not self.models:
            return "no drift"
        return ", ".join(model.describe() for model in self.models)

    def __repr__(self) -> str:
        return (
            f"<DriftState '{self.label}': {self.describe()}, "
            f"age {self.elapsed_s:.3g} s / {self.inferences} inferences, "
            f"epoch {self.epoch}>"
        )
