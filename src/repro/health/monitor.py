"""Probe-based health monitoring and the recalibration policy.

Real mixed-signal ADC deployments never trust compile-time calibration
for long: they interleave known test patterns with traffic and re-trim
when the returned codes walk away from the golden ones.  The
:class:`HealthMonitor` is that loop for a serving session: at
construction (compile time) it freezes a seeded probe program — a full
weight matrix plus a batch of probe vectors — and the *golden* codes a
pristine core returns for them; every :meth:`check` replays the probes
through the live (drifting) core and reports the disagreement as a
typed :class:`HealthReport`:

* ``code_error_rate`` — fraction of probe codes differing from golden;
* ``rms_code_error`` / ``max_code_error`` — magnitude of the walk, in
  LSB;
* ``enob_loss`` — the effective-number-of-bits cost of the walk,
  ``0.5 * log2(1 + 12 * rms^2)`` (code error variance stacked on the
  ideal quantization noise of 1/12 LSB^2);
* ``attribution`` — per-stage code-error rates obtained by replaying
  the probes with the residual restricted to one read-out knob at a
  time (optical / TIA / ADC) — the simulator's privilege standing in
  for the per-stage test modes real calibration firmware exposes.

A :class:`HealthPolicy` automates the loop on a session or cluster:
probe every N flushes, recalibrate past a code-error-rate threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..telemetry.export import ReportExport
from .drift import DRIFT_STAGES, Perturbation


@dataclass(frozen=True)
class HealthPolicy:
    """When to probe and when to recalibrate; the health twin of
    :class:`~repro.api.policy.FlushPolicy`.

    ``probe_every`` runs a probe check after every N-th flush;
    ``recalibrate_threshold`` is the probe code-error rate past which
    the session recalibrates itself (None = monitor only, never
    auto-recalibrate).
    """

    #: Probe after every N-th flush.
    probe_every: int = 1
    #: Probe vectors per check.
    probes: int = 8
    #: Code-error rate triggering auto-recalibration (None = never).
    recalibrate_threshold: float | None = 0.05
    #: Seed of the frozen probe program.
    probe_seed: int = 1310

    def __post_init__(self) -> None:
        if self.probe_every < 1:
            raise ConfigurationError(
                f"probe_every must be >= 1 flush, got {self.probe_every}"
            )
        if self.probes < 1:
            raise ConfigurationError(f"need at least one probe, got {self.probes}")
        if self.recalibrate_threshold is not None and not (
            0.0 <= self.recalibrate_threshold < 1.0
        ):
            raise ConfigurationError(
                f"recalibrate_threshold must be in [0, 1) or None, "
                f"got {self.recalibrate_threshold}"
            )

    @classmethod
    def monitor_only(cls, probe_every: int = 1, probes: int = 8) -> "HealthPolicy":
        """Probe on a cadence but never recalibrate automatically."""
        return cls(
            probe_every=probe_every, probes=probes, recalibrate_threshold=None
        )

    @classmethod
    def auto(
        cls,
        threshold: float = 0.05,
        probe_every: int = 1,
        probes: int = 8,
    ) -> "HealthPolicy":
        """Probe every ``probe_every`` flushes and recalibrate once the
        code-error rate exceeds ``threshold``."""
        return cls(
            probe_every=probe_every,
            probes=probes,
            recalibrate_threshold=threshold,
        )

    def describe(self) -> str:
        trigger = (
            "monitor only"
            if self.recalibrate_threshold is None
            else f"recalibrate > {self.recalibrate_threshold:g}"
        )
        return f"probe every {self.probe_every} flush(es), {trigger}"


@dataclass(frozen=True)
class HealthReport(ReportExport):
    """One probe check of a core against its golden codes.

    ``to_dict()`` / ``to_json()`` export it JSON-ready alongside every
    other report type (see :class:`repro.telemetry.ReportExport`).
    """

    #: Session flush count when the check ran.
    flush_index: int
    #: Modelled core age at check time.
    elapsed_s: float
    inferences: int
    #: Probe vectors replayed.
    probes: int
    #: Probe codes disagreeing with golden (count and fraction).
    code_errors: int
    code_error_rate: float
    #: Magnitude of the code walk [LSB].
    rms_code_error: float
    max_code_error: int
    #: Effective-number-of-bits cost of the walk.
    enob_loss: float
    #: Per-stage code-error rates: {"optical": .., "tia": .., "adc": ..}.
    attribution: dict
    #: The residual perturbation the probes measured.
    residual: Perturbation
    #: Whether this check ran immediately after a recalibration (the
    #: verification point of the recovery curve).
    recalibrated: bool = False

    @property
    def healthy(self) -> bool:
        """Bit-for-bit agreement with the golden probe codes."""
        return self.code_errors == 0

    @property
    def dominant_stage(self) -> str | None:
        """The read-out stage attribution blames most (None if clean)."""
        if self.healthy:
            return None
        return max(self.attribution, key=lambda stage: self.attribution[stage])

    def lines(self) -> list[str]:
        status = "healthy" if self.healthy else f"blame {self.dominant_stage}"
        lines = [
            f"probe check @ flush {self.flush_index}: "
            f"{self.code_errors} probe codes walked "
            f"({self.code_error_rate:.0%} of {self.probes} vectors), {status}",
            f"code walk         : rms {self.rms_code_error:.2f} LSB, "
            f"max {self.max_code_error} LSB, ENOB loss {self.enob_loss:.2f} bits",
            f"attribution       : "
            + ", ".join(
                f"{stage} {rate:.0%}" for stage, rate in self.attribution.items()
            ),
        ]
        if self.recalibrated:
            lines.append("recalibrated      : yes (post-trim verification)")
        return lines

    def __str__(self) -> str:
        return "\n".join(self.lines())


class HealthMonitor:
    """The probe loop of one :class:`~repro.api.PhotonicSession`.

    Construction freezes the probe program: a seeded full-tile weight
    matrix, a batch of probe input vectors, and the golden codes a
    pristine core produces for them (evaluated with the identity
    residual, so golden never depends on *when* the monitor was
    built).  The probe engine is compiled through the session core —
    the pSRAM streaming it costs is charged to the session's
    calibration ledger, and :meth:`recompile` rebuilds it after a
    recalibration so the engine carries the fresh trims.
    """

    def __init__(self, session, probes: int = 8, seed: int = 1310) -> None:
        if probes < 1:
            raise ConfigurationError(f"need at least one probe, got {probes}")
        self._session = session
        self.probes = probes
        self.seed = seed
        core = session.core
        rng = np.random.default_rng(seed)
        #: Frozen probe program: full-tile weights exercising every
        #: column, inputs spread over the analog range.
        self.probe_weights = rng.integers(
            0, core.max_weight + 1, (core.rows, core.columns)
        )
        self.probe_inputs = rng.uniform(0.0, 1.0, (core.columns, probes))
        self._engine = None
        self._golden = None
        self.recompile()

    @property
    def golden_codes(self) -> np.ndarray:
        """The pristine probe codes frozen at compile time (copy)."""
        return self._golden.copy()

    def recompile(self) -> None:
        """(Re)compile the probe engine through the session core,
        charging the weight streaming to the calibration ledger.  The
        golden codes are computed once — pristine evaluation does not
        depend on the core's age."""
        session = self._session
        core = session.core
        energy_before = core.weight_update_energy()
        core.load_weight_matrix(self.probe_weights)
        session._calibration_energy += core.weight_update_energy() - energy_before
        session._calibration_time += core.weight_update_time()
        tel = session.telemetry
        if tel is not None:
            stream_time = core.weight_update_time()
            stream_start = tel.clock.now
            tel.clock.advance(stream_time)
            tel.span(
                "compile probes",
                "health",
                stream_start,
                stream_time,
                args={"probes": self.probes},
            )
        self._engine = core.compile()
        if self._golden is None:
            self._golden = self._engine.matmul(
                self.probe_inputs, residual=Perturbation()
            ).codes

    def check(self, recalibrated: bool = False) -> HealthReport:
        """Replay the probes through the live core and compare against
        golden; charges the probe conversions to the calibration ledger
        and returns the typed report."""
        session = self._session
        codes = self._engine.matmul(self.probe_inputs).codes
        total = codes.size
        errors = int(np.count_nonzero(codes != self._golden))
        delta = codes.astype(float) - self._golden
        rms = float(np.sqrt(np.mean(delta**2)))
        enob_loss = 0.5 * math.log2(1.0 + 12.0 * rms**2)

        drift = session.drift
        if drift is not None and drift.active:
            residual = drift.residual()
            attribution = {}
            for stage in DRIFT_STAGES:
                stage_codes = self._engine.matmul(
                    self.probe_inputs, residual=drift.stage_residual(stage)
                ).codes
                attribution[stage] = float(
                    np.count_nonzero(stage_codes != self._golden) / total
                )
        else:
            residual = Perturbation()
            attribution = {stage: 0.0 for stage in DRIFT_STAGES}

        # Probe overhead: each probe vector spends one ADC sample slot
        # on the core at full grid power, on the calibration ledger
        # (not the serving ledger) so the overhead stays attributable.
        performance = session.performance
        period = 1.0 / performance.sample_rate
        probe_time = self.probes * period
        session._probe_runs += 1
        session._probe_vectors += self.probes
        session._calibration_time += probe_time
        session._calibration_energy += probe_time * performance.total_power

        tel = session.telemetry
        if tel is not None:
            probe_start = tel.clock.now
            tel.clock.advance(probe_time)
            tel.metrics.counter("probe_runs").inc()
            blame = (
                max(attribution, key=attribution.get) if errors else None
            )
            tel.span(
                "probe check",
                "health",
                probe_start,
                probe_time,
                args={
                    "probes": self.probes,
                    "code_errors": errors,
                    "code_error_rate": errors / total,
                    "blame": blame,
                },
            )

        return HealthReport(
            flush_index=session.flushes,
            elapsed_s=drift.elapsed_s if drift is not None else 0.0,
            inferences=drift.inferences if drift is not None else 0,
            probes=self.probes,
            code_errors=errors,
            code_error_rate=errors / total,
            rms_code_error=rms,
            max_code_error=int(np.abs(delta).max(initial=0.0)),
            enob_loss=enob_loss,
            attribution=attribution,
            residual=residual,
            recalibrated=recalibrated,
        )

    def __repr__(self) -> str:
        return (
            f"<HealthMonitor {self.probes} probes on "
            f"{self.probe_weights.shape[0]}x{self.probe_weights.shape[1]} "
            f"probe program, seed {self.seed}>"
        )
