"""Drift injection, probe-based monitoring and online recalibration.

The serving stack compiles weight programs once and caches them; this
package closes the loop that keeps those programs honest as the analog
hardware ages:

* :mod:`repro.health.drift` — parameterized :class:`DriftModel`
  processes (thermal MRR detuning, laser power decay, TIA gain drift,
  comparator-offset aging) composed into the live :class:`DriftState`
  of one core, evolving with modelled wall-clock and inference count;
* :mod:`repro.health.monitor` — :class:`HealthMonitor` replays frozen
  probe vectors against compile-time golden codes and reports the walk
  as a typed :class:`HealthReport`; :class:`HealthPolicy` automates
  the cadence and the recalibration trigger.

Sessions opt in with ``PhotonicSession(drift=[...], health_policy=...)``;
clusters drain a drifting core from rotation, recalibrate it and
restore it while the rest of the fleet absorbs the traffic.
"""

from .drift import (
    DRIFT_STAGES,
    ComparatorOffsetAging,
    DriftModel,
    DriftState,
    LaserPowerDecay,
    Perturbation,
    ThermalDetuning,
    TiaGainDrift,
)
from .monitor import HealthMonitor, HealthPolicy, HealthReport

__all__ = [
    "DRIFT_STAGES",
    "ComparatorOffsetAging",
    "DriftModel",
    "DriftState",
    "HealthMonitor",
    "HealthPolicy",
    "HealthReport",
    "LaserPowerDecay",
    "Perturbation",
    "ThermalDetuning",
    "TiaGainDrift",
]
