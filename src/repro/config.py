"""Device and system parameters for the GF45SPCLO-calibrated models.

This module is the single source of truth for every number used by the
reproduction.  Each dataclass documents whether a value is *stated in the
paper* or *calibrated* (chosen within a physically plausible range so a
paper-stated quantity is reproduced); see ``DESIGN.md`` section 2 for the
full provenance table.

The top-level entry point is :func:`default_technology`, which returns a
:class:`Technology` holding all sub-configurations.  Everything downstream
(pSRAM, compute core, eoADC, tensor core) is constructed from one of these
objects, so a Monte-Carlo or design-space sweep only has to perturb a
``Technology`` (via :func:`dataclasses.replace`) to retarget the entire
stack.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from .constants import SPEED_OF_LIGHT, db_per_cm_to_alpha, dbm_to_watts
from .errors import ConfigurationError

#: Operating wavelength stated in the paper (Section IV-C) [m].
OPERATING_WAVELENGTH = 1310.5e-9

#: Laser wall-plug efficiency from the paper's reference [47].
WALL_PLUG_EFFICIENCY = 0.23


@dataclass
class WaveguideSpec:
    """Strip-waveguide modal parameters around the operating wavelength.

    ``group_index`` is calibrated from the paper's 9.36 nm FSR of the
    7.5 um compute ring; ``effective_index`` from resonance order m = 88
    at 1310.5 nm.  ``adjust_index`` is the modal index of the PDK ring
    cell's length-adjustment section, calibrated so a 68 nm adjustment
    shifts the resonance by the paper's 2.33 nm.
    """

    effective_index: float = 2.447251
    group_index: float = 3.893651
    adjust_index: float = 3.015294
    loss_db_per_cm: float = 2.0
    reference_wavelength: float = OPERATING_WAVELENGTH

    @property
    def alpha(self) -> float:
        """Power attenuation coefficient [1/m]."""
        return db_per_cm_to_alpha(self.loss_db_per_cm)


@dataclass
class CouplerSpec:
    """Exponential gap-to-power-coupling map for bus/ring couplers.

    Calibrated at two points: the 250 nm eoADC ring gap must give the
    critical coupling kappa^2 = 0.0231 of the heavily doped 10 um ring
    (16.15 dB/cm junction loss), and the 200 nm compute-ring gap gives
    kappa^2 = 0.046 (Q ~ 9e3, -27 dB thru extinction, 91% drop
    efficiency; consistent with the paper's spectra).
    """

    amplitude: float = 0.723366
    decay_length: float = 72.588e-9
    max_power_coupling: float = 0.5

    def power_coupling(self, gap: float) -> float:
        """Power cross-coupling kappa^2 for a coupler gap [m]."""
        if gap < 0.0:
            raise ConfigurationError(f"coupler gap must be non-negative, got {gap}")
        value = self.amplitude * math.exp(-gap / self.decay_length)
        return min(value, self.max_power_coupling)


@dataclass
class DepletionJunctionSpec:
    """Reverse/forward-biased pn-junction phase shifter (eoADC rings).

    ``efficiency`` (dlambda/dV at the operating point) is calibrated so
    the 1-hot activation window equals half an ADC code bin given the
    paper's 200 uW channel power, 18 uW reference power and the ring
    photon lifetime an 8 GS/s conversion can afford (DESIGN.md
    section 2).  The 32 pm/V value implies heavy junction doping, which
    is also what sets the ADC ring's 16 dB/cm loaded loss — the two
    are physically coupled.  ``asymmetry`` adds a mild quadratic term:
    injection (positive V_pn) shifts slightly harder than depletion.
    """

    efficiency: float = 32e-12
    asymmetry_per_volt: float = 0.012
    max_forward_voltage: float = 4.5
    max_reverse_voltage: float = 4.5
    capacitance: float = 12e-15

    def wavelength_shift(self, v_pn: float) -> float:
        """Resonance red-shift [m] for a junction voltage ``v_pn`` [V].

        The sign convention follows the paper's Fig. 3(a): increasing
        reverse bias (more negative ``v_pn`` = V_p - V_n) red-shifts the
        resonance, so the shift is ``-efficiency * v_pn`` to first order.
        """
        linear = -self.efficiency * v_pn
        correction = 1.0 + self.asymmetry_per_volt * abs(v_pn) * (1.0 if v_pn > 0 else -1.0)
        return linear * correction


@dataclass
class InjectionTunerSpec:
    """Forward-bias carrier-injection tuner for weight/pSRAM rings.

    A 1.8 V digital drive must move a ~64 pm-linewidth ring by several
    linewidths, which depletion tuning cannot do; injection provides a
    calibrated 180 pm blue-shift at VDD (~2.8 linewidths, giving the
    ~-20 dB off/on contrast of the paper's compute spectra).
    """

    shift_at_vdd: float = 180e-12
    vdd: float = 1.8
    turn_on_voltage: float = 0.7
    carrier_time_constant: float = 10e-12

    def wavelength_shift(self, voltage: float) -> float:
        """Blue-shift magnitude [m] applied at a drive ``voltage`` [V].

        Returns a *negative* wavelength shift (blue) growing linearly
        above the diode turn-on voltage and clamped at the VDD value.
        """
        if voltage <= self.turn_on_voltage:
            return 0.0
        span = self.vdd - self.turn_on_voltage
        fraction = min((voltage - self.turn_on_voltage) / span, 1.0)
        return -self.shift_at_vdd * fraction


@dataclass
class ThermalSpec:
    """Thermo-optic tuning parameters for silicon rings."""

    #: Resonance shift per Kelvin [m/K]; ~75 pm/K for silicon at O-band.
    shift_per_kelvin: float = 75e-12
    #: Integrated heater efficiency [m/W] (~200 pm/mW).
    heater_efficiency: float = 200e-12 / 1e-3
    #: Maximum heater power [W].
    max_heater_power: float = 5e-3


@dataclass
class RingSpec:
    """Geometry of a microring resonator."""

    radius: float
    gap_thru: float
    gap_drop: float | None = None
    loss_db_per_cm: float = 4.0
    power_coupling_thru: float | None = None
    power_coupling_drop: float | None = None

    @property
    def circumference(self) -> float:
        return 2.0 * math.pi * self.radius


@dataclass
class PhotodiodeSpec:
    """Ge photodiode parameters (typical 45SPCLO monolithic values)."""

    responsivity: float = 0.8
    dark_current: float = 10e-9
    capacitance: float = 10e-15
    bandwidth: float = 40e9


@dataclass
class PsramSpec:
    """Photonic SRAM bitcell parameters (paper Section II-A / IV-A)."""

    #: Optical hold bias into PS1 [W]; paper: -20 dBm.
    bias_power: float = dbm_to_watts(-20.0)
    #: Write pulse power on WBL/WBLB [W]; paper: 0 dBm.
    write_power: float = dbm_to_watts(0.0)
    #: Write pulse width [s]; paper: 50 ps.
    write_pulse_width: float = 50e-12
    #: Update rate [Hz]; paper: 20 GHz.
    update_rate: float = 20e9
    #: Supply voltage [V].
    vdd: float = 1.8
    #: Storage-node capacitance [F] (calibrated: 0.4 mA write photocurrent
    #: flips 5 fF across VDD/2 in ~11 ps, well inside the 50 ps pulse).
    node_capacitance: float = 5e-15
    #: Driver time constant [s] for the cross-coupled MRR drive.
    driver_time_constant: float = 5e-12
    #: Effective switched capacitance [F] for the electrical share of the
    #: write energy (calibrated so total switching energy is 0.5 pJ).
    switched_capacitance: float = 86.554e-15
    #: Static electrical power per held cell [W] (driver leakage).
    hold_electrical_power: float = 5e-6

    @property
    def switch_energy_target(self) -> float:
        """Paper-stated energy per switching event [J]."""
        return 0.5e-12


@dataclass
class EoAdcSpec:
    """1-hot encoding electro-optic ADC parameters (Sections II-C / IV-C)."""

    bits: int = 3
    full_scale_voltage: float = 4.0
    #: Optical input power per MRR channel [W]; paper: 200 uW.
    channel_power: float = 200e-6
    #: Optical reference power per thresholding block [W]; paper: 18 uW.
    reference_power: float = 18e-6
    #: Analog/digital supply [V]; paper: 1.8 V.
    supply_voltage: float = 1.8
    #: Sample rate with TIA + amplifier chain [Hz]; paper: 8 GS/s.
    sample_rate: float = 8e9
    #: Sample rate without TIA/amplifiers [Hz]; paper: 416.7 MS/s.
    sample_rate_no_tia: float = 416.7e6
    #: Total electrical power [W]; paper: 11 mW.
    electrical_power: float = 11e-3
    #: Fraction of electrical power burnt by the TIA + amplifier chain;
    #: paper: removing them saves 58 %.
    tia_amp_power_fraction: float = 0.58
    #: Comparator/TIA trip asymmetry guard [W] (numerical hysteresis).
    threshold_hysteresis_power: float = 0.0
    #: Per-ring resonance-trim residual (std-dev) [m]; produces the
    #: Fig. 10 DNL texture.  Deterministically seeded.
    trim_sigma: float = 3e-12
    trim_seed: int = 45

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ConfigurationError(f"ADC needs at least 1 bit, got {self.bits}")
        if self.reference_power >= self.channel_power:
            raise ConfigurationError(
                "reference power must be below channel power for 1-hot thresholding"
            )

    @property
    def levels(self) -> int:
        return 2**self.bits

    @property
    def lsb_voltage(self) -> float:
        return self.full_scale_voltage / self.levels

    def reference_voltages(self) -> list[float]:
        """Bin-center reference ladder V_k = (k + 1/2) * LSB, k = 0..2^p-1."""
        lsb = self.lsb_voltage
        return [(k + 0.5) * lsb for k in range(self.levels)]

    @property
    def optical_power_wall_plug(self) -> float:
        """Total optical wall-plug power [W]; paper: 7.58 mW."""
        total = self.levels * (self.channel_power + self.reference_power)
        return total / WALL_PLUG_EFFICIENCY

    @property
    def total_power(self) -> float:
        """Optical wall-plug + electrical power [W]; paper: 18.58 mW."""
        return self.optical_power_wall_plug + self.electrical_power

    @property
    def energy_per_conversion(self) -> float:
        """Energy per conversion [J]; paper: 2.32 pJ."""
        return self.total_power / self.sample_rate


@dataclass
class ComputeCoreSpec:
    """Mixed-signal vector-multiplication core parameters (Section II-B)."""

    #: WDM channels per vector compute macro; paper: 4.
    wavelengths_per_macro: int = 4
    #: Channel spacing [m]; paper: 2.33 nm.
    channel_spacing: float = 2.33e-9
    #: Weight precision in bits; paper demonstrates 3.
    weight_bits: int = 3
    #: Optical input power per channel at each macro input [W].
    channel_power: float = 200e-6
    #: Ring-length adjustment step per channel [m]; paper: 68 nm.
    length_adjust_step: float = 68e-9


@dataclass
class TensorCoreSpec:
    """16x16 tensor-core system parameters (Section IV-D)."""

    rows: int = 16
    columns: int = 16
    weight_bits: int = 3
    #: ADC sample rate bounds the system clock; paper: 8 GS/s.
    sample_rate: float = 8e9
    #: Row TIA power [W] (calibrated from the paper's 28 nm TIA ref [52]).
    tia_power_per_row: float = 42e-3
    #: Control / clock distribution / thermal stabilization overhead [W]
    #: (calibrated closing term of the 3.02 TOPS/W budget).
    control_overhead_power: float = 127.13e-3

    @property
    def ops_per_sample(self) -> int:
        """1 op = one n-bit multiply or add (paper convention): a 1 x m
        dot product is m multiplies + m accumulates per row."""
        return 2 * self.columns * self.rows

    @property
    def psram_cells(self) -> int:
        return self.rows * self.columns * self.weight_bits


@dataclass
class Technology:
    """Bundle of every device/system spec for one technology corner."""

    wavelength: float = OPERATING_WAVELENGTH
    wall_plug_efficiency: float = WALL_PLUG_EFFICIENCY
    waveguide: WaveguideSpec = field(default_factory=WaveguideSpec)
    coupler: CouplerSpec = field(default_factory=CouplerSpec)
    depletion: DepletionJunctionSpec = field(default_factory=DepletionJunctionSpec)
    injection: InjectionTunerSpec = field(default_factory=InjectionTunerSpec)
    thermal: ThermalSpec = field(default_factory=ThermalSpec)
    photodiode: PhotodiodeSpec = field(default_factory=PhotodiodeSpec)
    psram: PsramSpec = field(default_factory=PsramSpec)
    eoadc: EoAdcSpec = field(default_factory=EoAdcSpec)
    compute: ComputeCoreSpec = field(default_factory=ComputeCoreSpec)
    tensor: TensorCoreSpec = field(default_factory=TensorCoreSpec)

    def compute_ring_spec(self) -> RingSpec:
        """7.5 um add-drop ring used for weights and the pSRAM latch
        (paper Section IV-B: 7.5 um radius, 200 nm thru gap)."""
        return RingSpec(radius=7.5e-6, gap_thru=200e-9, gap_drop=200e-9, loss_db_per_cm=4.0)

    def adc_ring_spec(self) -> RingSpec:
        """10 um all-pass ring used by the eoADC (paper Section IV-C:
        10 um radius, 250 nm gap), pinned at critical coupling.

        The heavy junction doping that buys the 32 pm/V tuning
        efficiency loads the ring to 16.15 dB/cm, setting the Q ~ 2.5e4
        / 52 pm linewidth that both the 1-hot window design and the
        8 GS/s photon-lifetime budget rely on.
        """
        ring = RingSpec(radius=10e-6, gap_thru=250e-9, gap_drop=None, loss_db_per_cm=16.1539)
        loss_db = ring.loss_db_per_cm * ring.circumference * 100.0
        single_pass_amplitude = 10.0 ** (-loss_db / 20.0)
        ring.power_coupling_thru = 1.0 - single_pass_amplitude**2
        return ring

    def replace(self, **kwargs) -> "Technology":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)


def default_technology() -> Technology:
    """The GF45SPCLO-calibrated technology used throughout the paper."""
    return Technology()


def ring_fsr(wavelength: float, group_index: float, circumference: float) -> float:
    """Free spectral range [m] of a ring: FSR = lambda^2 / (n_g * L)."""
    return wavelength**2 / (group_index * circumference)


def photon_lifetime(quality_factor: float, wavelength: float) -> float:
    """Cavity field lifetime tau = Q * lambda / (2 * pi * c) [s]."""
    return quality_factor * wavelength / (2.0 * math.pi * SPEED_OF_LIGHT)
