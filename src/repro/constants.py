"""Physical constants and unit-conversion helpers.

Everything in this package works in SI units (meters, seconds, watts,
volts, amperes, joules) unless a function name says otherwise.  The
converters here are the only sanctioned way to move between engineering
units (dBm, nm, GHz) and SI, so unit bugs stay in one file.
"""

from __future__ import annotations

import math

from .errors import UnitConversionError

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602_176_634e-19

#: Planck constant [J*s].
PLANCK_CONSTANT = 6.626_070_15e-34

#: Boltzmann constant [J/K].
BOLTZMANN_CONSTANT = 1.380_649e-23

#: Vacuum permittivity [F/m].
VACUUM_PERMITTIVITY = 8.854_187_8128e-12

#: Relative permittivity of silicon.
SILICON_RELATIVE_PERMITTIVITY = 11.7

#: Room temperature [K] used for thermal-noise estimates.
ROOM_TEMPERATURE = 300.0


def dbm_to_watts(power_dbm: float) -> float:
    """Convert a power level in dBm to watts.

    >>> dbm_to_watts(0.0)
    0.001
    """
    return 1e-3 * 10.0 ** (power_dbm / 10.0)


def watts_to_dbm(power_watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises :class:`~repro.errors.UnitConversionError` (a
    ``ValueError``) for non-positive powers, which have no dBm
    representation.
    """
    if power_watts <= 0.0:
        raise UnitConversionError(f"power must be positive to convert to dBm, got {power_watts}")
    return 10.0 * math.log10(power_watts / 1e-3)


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio in dB to a linear ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to dB."""
    if value <= 0.0:
        raise UnitConversionError(f"ratio must be positive to convert to dB, got {value}")
    return 10.0 * math.log10(value)


def db_per_cm_to_alpha(loss_db_per_cm: float) -> float:
    """Convert a propagation loss in dB/cm to a power attenuation
    coefficient alpha [1/m], as in ``P(z) = P0 * exp(-alpha * z)``.
    """
    loss_db_per_m = loss_db_per_cm * 100.0
    return loss_db_per_m * math.log(10.0) / 10.0


def wavelength_to_frequency(wavelength_m: float) -> float:
    """Optical frequency [Hz] of a vacuum wavelength [m]."""
    if wavelength_m <= 0.0:
        raise UnitConversionError(f"wavelength must be positive, got {wavelength_m}")
    return SPEED_OF_LIGHT / wavelength_m


def frequency_to_wavelength(frequency_hz: float) -> float:
    """Vacuum wavelength [m] of an optical frequency [Hz]."""
    if frequency_hz <= 0.0:
        raise UnitConversionError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz


def photon_energy(wavelength_m: float) -> float:
    """Energy [J] of a single photon at the given vacuum wavelength."""
    return PLANCK_CONSTANT * wavelength_to_frequency(wavelength_m)


def nm(value: float) -> float:
    """Nanometers to meters."""
    return value * 1e-9


def um(value: float) -> float:
    """Micrometers to meters."""
    return value * 1e-6


def mm(value: float) -> float:
    """Millimeters to meters."""
    return value * 1e-3


def ps(value: float) -> float:
    """Picoseconds to seconds."""
    return value * 1e-12

def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * 1e-9


def ghz(value: float) -> float:
    """Gigahertz to hertz."""
    return value * 1e9


def mw(value: float) -> float:
    """Milliwatts to watts."""
    return value * 1e-3


def uw(value: float) -> float:
    """Microwatts to watts."""
    return value * 1e-6


def ff(value: float) -> float:
    """Femtofarads to farads."""
    return value * 1e-15


def pj(value: float) -> float:
    """Picojoules to joules."""
    return value * 1e-12


def fj(value: float) -> float:
    """Femtojoules to joules."""
    return value * 1e-15
