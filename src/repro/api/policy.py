"""Pluggable flush policies: when does pending traffic evaluate?

The session batches every submitted request until a *flush* evaluates
them together — that is where the throughput comes from.  A
:class:`FlushPolicy` decides when that happens without the caller
hand-placing ``flush()`` calls:

* :meth:`FlushPolicy.explicit` — never auto-flush; only an explicit
  :meth:`~repro.api.PhotonicSession.flush` or a blocking
  :meth:`~repro.api.Future.result` drains the queues (the legacy
  ``InferenceServer`` behaviour).
* :meth:`FlushPolicy.max_batch` — flush as soon as the pending request
  count reaches the limit, bounding queue growth at a full batch.
* :meth:`FlushPolicy.max_delay` — flush once the oldest pending
  request has waited longer than the limit, bounding latency.  The
  session is single-threaded, so the deadline is checked on the next
  ``submit`` (and a blocking ``result()`` always flushes immediately).
* :meth:`FlushPolicy.deadline_aware` — the SLO policy: flush early
  once the most urgent pending request's remaining deadline slack
  drops to ``headroom`` seconds, so a batch still filling up never
  rides a request past its deadline.  Requests without a ``deadline=``
  never trip this limit.

Limits compose: ``FlushPolicy(batch_limit=64, delay_limit=0.01)``
flushes on whichever trips first.

Ages and deadlines are measured on whatever clock the session reads —
the host wall clock by default, or an injected modelled clock
(``PhotonicSession(clock=...)``) for open-loop simulation (see
:mod:`repro.traffic`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FlushPolicy:
    """When the session auto-flushes; see the module docstring."""

    #: Flush when this many requests are pending (None = no limit).
    batch_limit: int | None = None
    #: Flush when the oldest pending request is this old [s] (None = no limit).
    delay_limit: float | None = None
    #: Flush when the most urgent pending deadline is within this many
    #: seconds of expiring (None = deadlines never force a flush).
    deadline_headroom: float | None = None

    def __post_init__(self) -> None:
        if self.batch_limit is not None and self.batch_limit < 1:
            raise ConfigurationError(
                f"batch limit must be >= 1, got {self.batch_limit}"
            )
        if self.delay_limit is not None and self.delay_limit < 0.0:
            raise ConfigurationError(
                f"delay limit must be >= 0, got {self.delay_limit}"
            )
        if self.deadline_headroom is not None and self.deadline_headroom < 0.0:
            raise ConfigurationError(
                f"deadline headroom must be >= 0, got {self.deadline_headroom}"
            )

    # -- constructors --------------------------------------------------------
    @classmethod
    def explicit(cls) -> "FlushPolicy":
        """Only flush() / result() drain the queues."""
        return cls()

    @classmethod
    def max_batch(cls, limit: int) -> "FlushPolicy":
        """Auto-flush once ``limit`` requests are pending."""
        return cls(batch_limit=limit)

    @classmethod
    def max_delay(cls, seconds: float) -> "FlushPolicy":
        """Auto-flush once the oldest pending request is ``seconds`` old."""
        return cls(delay_limit=seconds)

    @classmethod
    def deadline_aware(
        cls, headroom: float, batch_limit: int | None = None
    ) -> "FlushPolicy":
        """The SLO policy: auto-flush once the most urgent pending
        request is within ``headroom`` seconds of its deadline (an
        optional ``batch_limit`` still caps queue growth)."""
        return cls(batch_limit=batch_limit, deadline_headroom=headroom)

    # -- decision ------------------------------------------------------------
    def should_flush(
        self,
        pending: int,
        oldest_age: float,
        deadline_slack: float | None = None,
    ) -> bool:
        """Whether the session should flush now, given ``pending``
        queued requests whose oldest has waited ``oldest_age`` seconds
        and whose most urgent deadline expires in ``deadline_slack``
        seconds (None = no pending request carries a deadline)."""
        if pending <= 0:
            return False
        if self.batch_limit is not None and pending >= self.batch_limit:
            return True
        if self.delay_limit is not None and oldest_age >= self.delay_limit:
            return True
        if (
            self.deadline_headroom is not None
            and deadline_slack is not None
            and deadline_slack <= self.deadline_headroom
        ):
            return True
        return False

    def describe(self) -> str:
        parts = []
        if self.batch_limit is not None:
            parts.append(f"max_batch={self.batch_limit}")
        if self.delay_limit is not None:
            parts.append(f"max_delay={self.delay_limit:g}s")
        if self.deadline_headroom is not None:
            parts.append(f"slo_headroom={self.deadline_headroom:g}s")
        return ", ".join(parts) if parts else "explicit"
