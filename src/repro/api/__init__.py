"""The one front door onto the photonic serving stack.

Everything a caller needs lives behind one object graph:

* :class:`PhotonicSession` — owns the tensor core, the batching
  scheduler, the shared weight-program cache, the ADC ladder memo and
  the flush policy.  Raw requests go through ``submit`` /
  ``submit_conv``; declarative models deploy through ``compile``.
* :class:`PhotonicCluster` — the scale-out front door: N session
  core slots behind the same surface, a pluggable
  :class:`RoutingPolicy` (round-robin / least-loaded / cache-affinity),
  per-request QoS (``priority=``, ``max_pending`` admission shedding),
  model replication (``compile(..., replicas=k)`` →
  :class:`ReplicatedModel`) and an aggregated :class:`ClusterReport`.
* :class:`Model` + layer specs (:class:`Dense`, :class:`Conv2d`,
  :class:`ReLU`, :class:`AvgPool`, :class:`Flatten`) — a pure
  description of a feed-forward network, with :meth:`Model.from_mlp` /
  :meth:`Model.from_cnn` adapters for existing trained models.
* :class:`Future` — every submit returns one; ``result()`` blocks
  (auto-flushing), the non-blocking accessors raise
  :class:`~repro.errors.PendingFlushError` while pending.
* :class:`FlushPolicy` — max_batch / max_delay / explicit; replaces
  hand-called ``flush()``.
* :class:`RunReport` — the unified per-flush accounting record
  (requests, batches, cache behaviour, analog energy/latency, probe
  and recalibration counters).
* :class:`HealthPolicy` (re-exported from :mod:`repro.health`) — probe
  cadence + recalibration threshold for sessions/clusters constructed
  with ``drift=[...DriftModel...]``; typed :class:`HealthReport` probe
  checks against compile-time golden codes.
* :class:`TraceRecorder` / :class:`MetricsRegistry` (re-exported from
  :mod:`repro.telemetry`) — pass ``trace=`` / ``metrics=`` at
  construction for modelled-clock Chrome tracing and
  ``latency_quantiles`` on the reports; without them the serving path
  makes zero telemetry calls.

Quickstart::

    from repro.api import Dense, FlushPolicy, Model, PhotonicSession

    session = PhotonicSession(grid=(8, 8), flush_policy=FlushPolicy.max_batch(32))
    endpoint = session.compile(Model.from_mlp(trained_mlp), calibration=x_train)
    future = endpoint.submit(x_test)
    logits = future.result()          # auto-flushes
    print(future.report)              # unified RunReport of that flush
"""

from ..health import HealthPolicy, HealthReport
from ..telemetry import MetricsRegistry, Telemetry, TraceRecorder
from .cluster import ClusterReport, PhotonicCluster, ReplicatedModel
from .futures import Future, RunReport
from .graph import AvgPool, Conv2d, Dense, Flatten, Model, ReLU
from .policy import FlushPolicy
from .routing import HashRing, RoutingPolicy
from .session import CompiledStage, DeployedModel, PhotonicSession

__all__ = [
    "AvgPool",
    "ClusterReport",
    "CompiledStage",
    "Conv2d",
    "Dense",
    "DeployedModel",
    "Flatten",
    "FlushPolicy",
    "Future",
    "HashRing",
    "HealthPolicy",
    "HealthReport",
    "MetricsRegistry",
    "Model",
    "PhotonicCluster",
    "PhotonicSession",
    "ReLU",
    "ReplicatedModel",
    "RoutingPolicy",
    "RunReport",
    "Telemetry",
    "TraceRecorder",
]
