"""Declarative model graphs for the one-front-door API.

A :class:`Model` is a pure description of a feed-forward network — a
sequence of layer *specs* (:class:`Dense`, :class:`Conv2d`,
:class:`ReLU`, :class:`AvgPool`, :class:`Flatten`) holding float
weights and hyper-parameters, with no device state attached.  It is
what callers hand to :meth:`repro.api.PhotonicSession.compile`, which
turns it into a deployed endpoint on the session's tensor core.

Specs validate eagerly (weight shapes, positive gains/strides) and the
model validates the chain at construction: feature counts must agree
across consecutive dense layers, image-domain layers cannot follow
vector-domain ones without the shapes working out, and a
:class:`Flatten` must bridge conv features into a dense head.

Adapters bridge the existing trained-model classes:
:meth:`Model.from_mlp` wraps a :class:`repro.ml.network.MLP` and
:meth:`Model.from_cnn` wraps a kernel bank plus MLP head — the same
composition :class:`repro.ml.network.PhotonicCNN` deploys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ConfigurationError
from ..ml.convolution import normalize_kernel_bank

if TYPE_CHECKING:
    from numpy.typing import ArrayLike


@dataclass(frozen=True)
class Dense:
    """A dense (fully connected) layer spec: float ``weights`` of shape
    (out_features, in_features), optional ``bias``.  ``signed=False``
    maps the weights onto a single unsigned pSRAM array instead of the
    differential pair; ``gain=None`` leaves the row-TIA range to the
    session's calibration (or native 1.0 without one)."""

    weights: np.ndarray
    bias: np.ndarray | None = None
    signed: bool = True
    gain: float | None = None

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=float)
        if weights.ndim != 2:
            raise ConfigurationError(
                f"Dense weights must be 2-D (out, in), got shape {weights.shape}"
            )
        object.__setattr__(self, "weights", weights)
        if self.bias is not None:
            bias = np.asarray(self.bias, dtype=float)
            if bias.shape != (weights.shape[0],):
                raise ConfigurationError(
                    f"Dense bias must have shape ({weights.shape[0]},), "
                    f"got {bias.shape}"
                )
            object.__setattr__(self, "bias", bias)
        if self.gain is not None and self.gain <= 0.0:
            raise ConfigurationError(f"Dense gain must be positive, got {self.gain}")

    @property
    def out_features(self) -> int:
        return self.weights.shape[0]

    @property
    def in_features(self) -> int:
        return self.weights.shape[1]


@dataclass(frozen=True)
class Conv2d:
    """A valid-convolution layer spec: float ``kernels`` of shape
    (num_kernels, k, k) or (num_kernels, in_channels, k, k).  The gain
    is a fixed numeric TIA range — differential halves must digitize at
    one common gain to subtract exactly, so there is no per-tile auto
    calibration here."""

    kernels: np.ndarray
    stride: int = 1
    gain: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernels", normalize_kernel_bank(self.kernels))
        if self.stride < 1:
            raise ConfigurationError(f"Conv2d stride must be >= 1, got {self.stride}")
        if self.gain <= 0.0:
            raise ConfigurationError(f"Conv2d gain must be positive, got {self.gain}")

    @property
    def num_kernels(self) -> int:
        return self.kernels.shape[0]

    @property
    def in_channels(self) -> int:
        return self.kernels.shape[1]

    @property
    def kernel_size(self) -> int:
        return self.kernels.shape[2]


@dataclass(frozen=True)
class ReLU:
    """Digital rectified-linear activation between photonic layers."""


@dataclass(frozen=True)
class AvgPool:
    """Digital non-overlapping average pooling over feature maps."""

    size: int = 2

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(f"AvgPool size must be >= 1, got {self.size}")


@dataclass(frozen=True)
class Flatten:
    """Flatten (batch, ...) feature maps into (batch, features)."""


#: Layer specs carrying weights that compile onto the photonic core.
COMPUTE_SPECS = (Dense, Conv2d)
#: Digital glue specs executed between photonic layers.
DIGITAL_SPECS = (ReLU, AvgPool, Flatten)

#: Any layer spec a :class:`Model` may carry.
LayerSpec = Dense | Conv2d | ReLU | AvgPool | Flatten


@dataclass(frozen=True)
class Model:
    """An immutable, validated sequence of layer specs.

    Build with :meth:`sequential` (or the :meth:`from_mlp` /
    :meth:`from_cnn` adapters) and deploy with
    :meth:`repro.api.PhotonicSession.compile`.
    """

    layers: tuple[LayerSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        layers = tuple(self.layers)
        object.__setattr__(self, "layers", layers)
        self._validate(layers)

    # -- construction --------------------------------------------------------
    @classmethod
    def sequential(cls, *layers: LayerSpec) -> "Model":
        """A feed-forward model running ``layers`` in order."""
        return cls(layers=layers)

    @classmethod
    def from_mlp(cls, mlp: Any) -> "Model":
        """Adapt a trained :class:`repro.ml.network.MLP`: two dense
        layers with a ReLU between, sharing the MLP's float arrays."""
        for attribute in ("w1", "b1", "w2", "b2"):
            if not hasattr(mlp, attribute):
                raise ConfigurationError(
                    f"from_mlp needs an MLP-like object with .{attribute}"
                )
        return cls.sequential(
            Dense(mlp.w1, bias=mlp.b1),
            ReLU(),
            Dense(mlp.w2, bias=mlp.b2),
        )

    @classmethod
    def from_cnn(
        cls,
        kernels: ArrayLike,
        mlp: Any,
        pool: int = 2,
        stride: int = 1,
        conv_gain: float = 1.0,
    ) -> "Model":
        """Adapt the conv + ReLU + avg-pool + MLP-head composition of
        :class:`repro.ml.network.PhotonicCNN` into a declarative graph."""
        head = cls.from_mlp(mlp)
        return cls.sequential(
            Conv2d(kernels, stride=stride, gain=conv_gain),
            ReLU(),
            AvgPool(pool),
            Flatten(),
            *head.layers,
        )

    # -- validation ----------------------------------------------------------
    @staticmethod
    def _validate(layers: tuple) -> None:
        if not layers:
            raise ConfigurationError("a model needs at least one layer")
        known = COMPUTE_SPECS + DIGITAL_SPECS
        domain = None  # None (unset) | "vector" | "image"
        features: int | None = None
        channels: int | None = None
        for index, layer in enumerate(layers):
            where = f"layer {index} ({type(layer).__name__})"
            if not isinstance(layer, known):
                raise ConfigurationError(
                    f"{where}: not a layer spec; use Dense/Conv2d/ReLU/"
                    "AvgPool/Flatten"
                )
            if isinstance(layer, Dense):
                if domain == "image":
                    raise ConfigurationError(
                        f"{where}: Dense cannot consume feature maps; "
                        "insert Flatten() first"
                    )
                if features is not None and layer.in_features != features:
                    raise ConfigurationError(
                        f"{where}: expects {layer.in_features} input "
                        f"features but the previous layer produces {features}"
                    )
                domain, features = "vector", layer.out_features
            elif isinstance(layer, Conv2d):
                if domain == "vector":
                    raise ConfigurationError(
                        f"{where}: Conv2d cannot follow a vector-domain layer"
                    )
                if channels is not None and layer.in_channels != channels:
                    raise ConfigurationError(
                        f"{where}: expects {layer.in_channels} input channels "
                        f"but the previous layer produces {channels}"
                    )
                domain, channels = "image", layer.num_kernels
            elif isinstance(layer, AvgPool):
                if domain == "vector":
                    raise ConfigurationError(
                        f"{where}: AvgPool operates on feature maps, not vectors"
                    )
            elif isinstance(layer, Flatten):
                if domain == "vector":
                    raise ConfigurationError(
                        f"{where}: Flatten is redundant after a vector-domain layer"
                    )
                # Flattened width depends on the runtime image size.
                domain, features, channels = "vector", None, None
        if not any(isinstance(layer, COMPUTE_SPECS) for layer in layers):
            raise ConfigurationError(
                "a model needs at least one Dense or Conv2d compute layer"
            )

    # -- inspection ----------------------------------------------------------
    @property
    def compute_layers(self) -> tuple:
        """The Dense/Conv2d specs, in order."""
        return tuple(
            layer for layer in self.layers if isinstance(layer, COMPUTE_SPECS)
        )

    @property
    def input_domain(self) -> str:
        """``"image"`` if the first compute layer convolves, else
        ``"vector"``."""
        first = self.compute_layers[0]
        return "image" if isinstance(first, Conv2d) else "vector"

    def describe(self) -> str:
        """One line per layer, for logs and examples."""
        lines = []
        for index, layer in enumerate(self.layers):
            if isinstance(layer, Dense):
                detail = (
                    f"Dense {layer.out_features}x{layer.in_features}"
                    f"{'' if layer.signed else ' (unsigned)'}"
                )
            elif isinstance(layer, Conv2d):
                detail = (
                    f"Conv2d {layer.num_kernels} kernels "
                    f"{layer.kernel_size}x{layer.kernel_size}"
                    f"{f' stride {layer.stride}' if layer.stride != 1 else ''}"
                )
            elif isinstance(layer, AvgPool):
                detail = f"AvgPool {layer.size}x{layer.size}"
            else:
                detail = type(layer).__name__
            lines.append(f"{index}: {detail}")
        return "\n".join(lines)
