"""Scaling the front door: a fleet of core slots behind one API.

The paper pitches the pSRAM tensor core as a tileable building block —
throughput scales by instantiating more cores, not by pushing one core
harder.  :class:`PhotonicCluster` is that scale-out step for the
serving API: it owns **N** :class:`~repro.api.PhotonicSession` core
slots (each a full session — its own
:class:`~repro.runtime.scheduler.BatchScheduler`, LRU program caches
and ADC ladder memo) behind the same ``submit`` / ``submit_conv`` /
``compile`` → :class:`~repro.api.futures.Future` surface, so
single-core code is just ``PhotonicCluster(cores=1)`` and the existing
:class:`PhotonicSession` remains the 1-core specialization.

On top of the per-core sessions the cluster adds:

* a pluggable :class:`~repro.api.routing.RoutingPolicy` (round-robin /
  least-loaded / cache-affinity consistent hashing of weight-program
  keys) deciding which slot each routed request lands on;
* per-request QoS — ``priority=`` on every submit route orders which
  cores flush first, and admission control (``max_pending``) sheds
  best-effort traffic with a typed
  :class:`~repro.errors.ClusterSaturatedError` once the fleet backlog
  hits the cap (positive-priority requests bypass the shed gate);
* :meth:`compile` with ``replicas=k`` — one model deployed onto k
  distinct cores, batches fanned out round-robin across the replicas
  with each session's per-stage analog accounting intact;
* :meth:`report` — a :class:`ClusterReport` rolling the per-core
  :class:`~repro.api.futures.RunReport` records into fleet totals plus
  per-core utilization and imbalance statistics;
* **elastic fleets** (:mod:`repro.elastic`) — an optional
  :class:`~repro.elastic.Autoscaler` policy grows
  (:meth:`add_core` / :meth:`scale_up`, warm-started from an attached
  :class:`~repro.elastic.ProgramStore`) and shrinks
  (:meth:`scale_down`, reusing the drain machinery to *park* a core)
  the fleet between ``min_cores`` and ``max_cores`` on load watermarks;
  per-slot :class:`~repro.elastic.CoreSpec` overrides build
  heterogeneous fleets whose capability-aware router places each
  program shape on the cheapest capable core, and cache-affinity
  routing runs on an incremental :class:`~repro.api.routing.HashRing`
  so hot programs keep their homes across membership changes.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..config import Technology
from ..elastic import Autoscaler, CoreSpec, FleetSnapshot, ProgramStore
from ..errors import ClusterSaturatedError, ConfigurationError
from ..health.drift import DriftModel, DriftState
from ..health.monitor import HealthPolicy, HealthReport
from ..runtime.engine import weight_key
from ..telemetry import (
    END_TO_END_HISTOGRAM,
    QUEUE_WAIT_HISTOGRAM,
    Histogram,
    MetricsRegistry,
    ReportExport,
    Telemetry,
    TraceRecorder,
    merged_tenant_quantiles,
)
from .futures import Future, RunReport
from .graph import Model
from .policy import FlushPolicy
from .routing import HashRing, RoutingPolicy
from .session import ClockSource, DeployedModel, DriftLike, PhotonicSession

if TYPE_CHECKING:
    from numpy.typing import ArrayLike

    from ..obs import Observer


@dataclass(frozen=True)
class ClusterReport(ReportExport):
    """Fleet-level accounting: per-core reports rolled into totals.

    ``total`` is the element-wise sum of ``per_core`` (see
    :meth:`RunReport.combined`); ``routed`` counts the requests the
    cluster steered to each core and ``shed`` the requests admission
    control rejected.  On a one-core cluster ``total`` equals that
    core's session report bit for bit.  ``to_dict()`` / ``to_json()``
    export the whole record (per-core reports included) JSON-ready.
    """

    cores: int
    routing: str
    total: RunReport
    per_core: tuple[RunReport, ...]
    #: Requests routed through the cluster to each core, in core order.
    routed: tuple[int, ...]
    #: Requests rejected by admission control (ClusterSaturatedError).
    shed: int
    #: Cores currently drained out of the routing rotation.
    draining: tuple[int, ...] = ()
    #: Drain cycles performed so far (maintenance drain → restore).
    drains: int = 0
    #: Autoscaler grow events (unpark or ``add_core``) so far.
    scale_ups: int = 0
    #: Autoscaler shrink events (drain → park) so far.
    scale_downs: int = 0
    #: Integral of the active-core count over modelled time [core·s]:
    #: the capacity a fleet actually paid for — an autoscaled fleet
    #: meeting the same SLO as a static max-size fleet shows the
    #: savings here.  0.0 without a modelled clock.
    core_seconds: float = 0.0
    #: Requests pending per core at report time (the per-core
    #: :attr:`~repro.runtime.scheduler.SchedulerStats.pending` signal
    #: the autoscaler and least-loaded routing watch), in core order.
    pending: tuple[int, ...] = ()
    #: Deadline-shed requests per core (each core's cumulative
    #: ``RunReport.deadline_misses``), in core order.
    deadline_shed: tuple[int, ...] = ()
    #: Fleet-wide modelled latency distributions, merged bin-for-bin
    #: from the per-core telemetry histograms (quantiles are not
    #: additive, so the merge happens at the histogram level — see
    #: :meth:`repro.telemetry.Histogram.merged`).  None on a cluster
    #: without telemetry or before any request resolved.
    latency_quantiles: dict | None = None
    #: Fleet-wide per-tenant queue-wait / service-time split, merged
    #: bin-for-bin from the per-core per-tenant histograms (see
    #: :func:`repro.telemetry.merged_tenant_quantiles`).  None without
    #: telemetry or before any labelled request resolved.
    tenant_quantiles: dict | None = None

    @property
    def cache_hit_rate(self) -> float:
        """Aggregate program-cache hit rate across the fleet."""
        return self.total.cache_hit_rate

    @property
    def utilization(self) -> tuple[float, ...]:
        """Each core's share of the fleet's ADC sample slots (sums to
        1.0 when any analog work ran; all zeros otherwise)."""
        if self.total.samples == 0:
            return tuple(0.0 for _ in self.per_core)
        return tuple(
            report.samples / self.total.samples for report in self.per_core
        )

    @property
    def fleet_latency(self) -> float:
        """Modelled serving time [s] of the whole fleet: cores run
        concurrently, so the slowest core's weight-streaming + analog
        total is the makespan (one core in → that core's latency;
        an empty fleet or zero-request window reports 0.0)."""
        return max(
            (report.total_latency for report in self.per_core), default=0.0
        )

    @property
    def imbalance(self) -> float:
        """Hottest core over the fleet mean, in ADC samples (1.0 =
        perfectly balanced; ``cores`` = everything on one core).  A
        zero-request window — a flush firing with nothing queued, or
        an empty fleet — is trivially balanced at 1.0 rather than a
        division by zero."""
        if not self.per_core or self.total.samples == 0:
            return 1.0
        mean = self.total.samples / self.cores
        return max(report.samples for report in self.per_core) / mean

    def lines(self) -> list[str]:
        lines = [
            f"cluster of {self.cores} cores, routing {self.routing}: "
            f"{self.total.requests} requests "
            f"({self.shed} shed by admission control)"
        ]
        lines.extend(self.total.lines()[1:])
        for index, (report, share) in enumerate(
            zip(self.per_core, self.utilization)
        ):
            lines.append(
                f"core {index}            : {self.routed[index]} routed, "
                f"{report.samples} samples ({share:.0%} of fleet), "
                f"{report.cache_hits}/{report.cache_hits + report.cache_misses} "
                f"cache hits"
            )
        lines.append(f"imbalance         : {self.imbalance:.2f}x fleet mean")
        if self.latency_quantiles is not None:
            e2e = self.latency_quantiles["end_to_end"]
            lines.append(
                f"fleet end-to-end  : p50 {e2e['p50'] * 1e6:.3f} us, "
                f"p99 {e2e['p99'] * 1e6:.3f} us, "
                f"p999 {e2e['p999'] * 1e6:.3f} us modelled "
                f"({e2e['count']} requests)"
            )
        if self.drains or self.draining:
            drained = (
                ", ".join(str(core) for core in self.draining)
                if self.draining
                else "none"
            )
            lines.append(
                f"maintenance       : {self.drains} drain cycles, "
                f"currently drained: {drained}"
            )
        if self.scale_ups or self.scale_downs or self.core_seconds:
            lines.append(
                f"autoscaling       : {self.scale_ups} scale-ups, "
                f"{self.scale_downs} scale-downs, "
                f"{self.core_seconds:.3g} core-seconds"
            )
        return lines

    def __str__(self) -> str:
        return "\n".join(self.lines())


class ReplicatedModel:
    """One model deployed onto ``k`` distinct cores of a cluster.

    ``submit(batch)`` fans whole batches out round-robin across the
    replica endpoints (a batch stays on one replica so it coalesces
    into that core's dense evaluation and its per-stage analog
    accounting lands on that core's ledger); ``predict`` (also
    ``__call__``) is the blocking convenience.
    """

    def __init__(
        self,
        cluster: "PhotonicCluster",
        endpoints: tuple[DeployedModel, ...],
        core_indices: tuple[int, ...],
        label: str,
    ) -> None:
        self._cluster = cluster
        self._endpoints = endpoints
        self._core_indices = core_indices
        self.label = label
        self._cursor = 0

    @property
    def model(self) -> Model:
        return self._endpoints[0].model

    @property
    def replicas(self) -> int:
        return len(self._endpoints)

    @property
    def endpoints(self) -> tuple[DeployedModel, ...]:
        """The per-core :class:`DeployedModel` endpoints, in placement
        order (their ``session`` attributes name the backing cores)."""
        return self._endpoints

    @property
    def core_indices(self) -> tuple[int, ...]:
        """Which cluster core each replica endpoint lives on."""
        return self._core_indices

    def submit(
        self,
        batch: ArrayLike,
        priority: int = 0,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> Future:
        """Queue one forward pass on the next replica in rotation.

        Replicas on drained cores sit the rotation out — the active
        replicas absorb their traffic during maintenance (if every
        replica is drained, the batch falls back to the full set so
        the model never refuses traffic).
        """
        priority = self._cluster._admit(priority)
        drained = self._cluster._drained
        slots = [
            slot
            for slot in range(len(self._endpoints))
            if self._core_indices[slot] not in drained
        ] or list(range(len(self._endpoints)))
        slot = slots[self._cursor % len(slots)]
        future = self._endpoints[slot].submit(
            batch, deadline=deadline, tenant=tenant
        )
        # Only a successfully queued batch advances the rotation and
        # the cluster bookkeeping — a rejected batch routes nowhere.
        self._cursor += 1
        self._cluster._note_routed(self._core_indices[slot], priority)
        return future

    def predict(self, batch: ArrayLike, priority: int = 0) -> np.ndarray:
        """Blocking forward: submit + :meth:`Future.result`."""
        return self.submit(batch, priority=priority).result()

    __call__ = predict

    def __repr__(self) -> str:
        return (
            f"<ReplicatedModel '{self.label}': {self.replicas} replicas "
            f"on cores {list(self._core_indices)}>"
        )


class PhotonicCluster:
    """N session-backed core slots behind the single-session surface.

    Construction mirrors :class:`~repro.api.PhotonicSession` (every
    per-core knob passes straight through to the slots) plus the fleet
    knobs: ``cores``, ``routing`` (a
    :class:`~repro.api.routing.RoutingPolicy`; default round-robin) and
    ``max_pending`` (fleet-wide admission cap; None = never shed).

    The elastic knobs (all optional, see :mod:`repro.elastic`):
    ``core_specs`` gives per-slot :class:`~repro.elastic.CoreSpec`
    overrides for heterogeneous fleets; ``autoscaler`` attaches an
    :class:`~repro.elastic.Autoscaler` policy that grows/parks slots
    on load watermarks; ``program_store`` attaches a
    :class:`~repro.elastic.ProgramStore` every slot warm-starts its
    compiled weight programs from (and writes through to).
    """

    def __init__(
        self,
        cores: int = 1,
        technology: Technology | None = None,
        grid: tuple[int, int] | None = None,
        rows: int | None = None,
        columns: int | None = None,
        weight_bits: int | None = None,
        adc_bits: int | None = None,
        cache_capacity: int = 8,
        tiled_cache_capacity: int = 4,
        max_batch: int = 256,
        flush_policy: FlushPolicy | None = None,
        routing: RoutingPolicy | None = None,
        max_pending: int | None = None,
        drift: DriftLike = None,
        health_policy: HealthPolicy | None = None,
        core_specs: Sequence[CoreSpec | None] | None = None,
        autoscaler: Autoscaler | None = None,
        program_store: ProgramStore | None = None,
        trace: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
        clock: "ClockSource" = None,
        obs: Observer | None = None,
        label: str = "cluster",
    ) -> None:
        if not isinstance(cores, (int, np.integer)) or cores < 1:
            raise ConfigurationError(f"a cluster needs cores >= 1, got {cores!r}")
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1 (or None to never shed), "
                f"got {max_pending}"
            )
        if routing is not None and not isinstance(routing, RoutingPolicy):
            raise ConfigurationError(
                f"routing must be a RoutingPolicy, got {type(routing).__name__}"
            )
        if isinstance(drift, DriftState) and cores > 1:
            raise ConfigurationError(
                "pass the DriftModel suite (not a DriftState) to a "
                "multi-core cluster so every core gets its own "
                "independent drift state"
            )
        if health_policy is not None and not isinstance(health_policy, HealthPolicy):
            raise ConfigurationError(
                f"health_policy must be a repro.health.HealthPolicy, "
                f"got {type(health_policy).__name__}"
            )
        if autoscaler is not None and not isinstance(autoscaler, Autoscaler):
            raise ConfigurationError(
                f"autoscaler must be a repro.elastic.Autoscaler, "
                f"got {type(autoscaler).__name__}"
            )
        if program_store is not None and not isinstance(program_store, ProgramStore):
            raise ConfigurationError(
                f"program_store must be a repro.elastic.ProgramStore, "
                f"got {type(program_store).__name__}"
            )
        if core_specs is not None:
            specs = tuple(core_specs)
            if len(specs) != int(cores):
                raise ConfigurationError(
                    f"core_specs must give one CoreSpec (or None) per "
                    f"core slot: got {len(specs)} specs for {cores} cores"
                )
            for spec in specs:
                if spec is not None and not isinstance(spec, CoreSpec):
                    raise ConfigurationError(
                        f"core_specs entries must be CoreSpec or None, "
                        f"got {type(spec).__name__}"
                    )
        else:
            specs = (None,) * int(cores)
        if grid is not None:
            # Normalize once so per-slot CoreSpec overrides can replace
            # rows/columns independently of how the default was spelled.
            if rows is not None or columns is not None:
                raise ConfigurationError(
                    "pass either grid=(rows, columns) or rows=/columns=, "
                    "not both"
                )
            try:
                rows, columns = (int(dim) for dim in grid)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"grid must be a (rows, columns) pair, got {grid!r}"
                ) from None
        self.routing = routing if routing is not None else RoutingPolicy.round_robin()
        self.max_pending = max_pending
        #: Fleet maintenance policy; per-core sessions stay policy-free
        #: so the cluster (which can drain cores) owns recalibration.
        self.health_policy = health_policy
        if drift is not None and not isinstance(drift, DriftState):
            # Materialize the model suite once: each session wraps it
            # into its own independent DriftState (cores age apart).
            drift = (drift,) if isinstance(drift, DriftModel) else tuple(drift)
        self.label = str(label)
        # -- telemetry (repro.telemetry) --------------------------------
        #: Optional fleet-level :class:`~repro.telemetry.Telemetry`
        #: binding: holds the fleet registry (routed/shed/drain
        #: counters) and the "fleet" trace track carrying shed / drain /
        #: restore instants.  Each core session gets its *own* binding
        #: (own modelled clock and registry — cores digitize
        #: concurrently on independent timelines) sharing the recorder
        #: and the cluster's trace process.  None without
        #: ``trace=``/``metrics=``, and then the fleet makes zero
        #: telemetry calls.
        if trace is not None and not isinstance(trace, TraceRecorder):
            raise ConfigurationError(
                f"trace must be a repro.telemetry.TraceRecorder, "
                f"got {type(trace).__name__}"
            )
        if metrics is not None and not isinstance(metrics, MetricsRegistry):
            raise ConfigurationError(
                f"metrics must be a repro.telemetry.MetricsRegistry, "
                f"got {type(metrics).__name__}"
            )
        self.telemetry: Telemetry | None
        self._trace = trace
        self._pid: int | None = None
        if trace is not None or metrics is not None:
            pid = trace.process(self.label) if trace is not None else None
            self._pid = pid
            self.telemetry = Telemetry(
                trace=trace,
                metrics=metrics,
                process=self.label,
                track="fleet",
                pid=pid,
            )
        else:
            self.telemetry = None
        # -- active observability (repro.obs) ---------------------------
        #: Optional :class:`~repro.obs.Observer` shared by the fleet:
        #: every core session feeds it flush/health samples, and the
        #: cluster feeds it shed / drain / restore / scale events.
        #: None (the default) = the serving path makes zero obs calls.
        if obs is not None:
            from ..obs import Observer as _Observer

            if not isinstance(obs, _Observer):
                raise ConfigurationError(
                    f"obs must be a repro.obs.Observer, "
                    f"got {type(obs).__name__}"
                )
        self.obs = obs
        #: Suppresses the inner drain/restore/add_core observer events
        #: while a scale_up/scale_down reuses that machinery (the scale
        #: event covers the transition).
        self._in_scale_change = False
        #: The elastic policy (None = fixed fleet) and the shared
        #: compiled-program store (None = every slot cold-compiles).
        self.autoscaler = autoscaler
        self.program_store = program_store
        self._clock = clock
        # Everything a *new* slot is built from — add_core() replays
        # these (modulo its CoreSpec overrides) so grown slots match
        # the founding fleet.
        self._core_defaults: dict = dict(
            technology=technology,
            rows=rows,
            columns=columns,
            weight_bits=weight_bits,
            adc_bits=adc_bits,
            cache_capacity=cache_capacity,
            tiled_cache_capacity=tiled_cache_capacity,
            max_batch=max_batch,
            flush_policy=flush_policy,
            drift=drift,
        )
        # Sessions only ever *grow*: scale-down parks a slot (drain +
        # out of rotation) rather than deleting it, so core indices —
        # and every consumer holding them (hash ring members, replica
        # placements, traffic engines, report deltas) — stay stable.
        self._sessions: list[PhotonicSession] = [
            self._build_session(index, specs[index])
            for index in range(int(cores))
        ]
        if health_policy is not None:
            for session in self._sessions:
                session.ensure_monitor(health_policy)
        self._specs: list[CoreSpec | None] = list(specs)
        self._core_caps: list[tuple[int, int, int]] = [
            self._session_caps(session) for session in self._sessions
        ]
        self._heterogeneous = len(set(self._core_caps)) > 1
        self._ring = HashRing(range(int(cores)))
        #: Bumped on every membership change (add_core); long-lived
        #: consumers holding a session snapshot (e.g.
        #: :class:`~repro.traffic.TrafficEngine`) re-snapshot when it
        #: moves.
        self.membership_version = 0
        self._cursor = 0
        self._routed = [0] * int(cores)
        self._shed = 0
        #: Highest priority admitted per core since its last fleet flush
        #: (None = only default traffic); orders flush() across cores.
        self._pending_priority: list[int | None] = [None] * int(cores)
        #: Fleet-wide submit sequence number of each core's oldest
        #: pending request (None = nothing pending); breaks priority
        #: ties in :meth:`_flush_order` deterministically by submit
        #: order instead of the unstable core index alone.
        self._pending_since: list[int | None] = [None] * int(cores)
        self._submit_seq = 0
        self._replicated: list[ReplicatedModel] = []
        self._drained: set[int] = set()
        self._drains = 0
        #: Total core flush count the last health maintenance ran at.
        self._health_watermark = 0
        self._in_maintenance = False
        # -- elastic state --------------------------------------------------
        #: Slots scaled down (subset of _drained): drained AND eligible
        #: to rejoin warm on the next scale-up, LRU caches intact.
        self._parked: set[int] = set()
        self._scale_ups = 0
        self._scale_downs = 0
        #: Total core flush count the last autoscale decision ran at,
        #: and the shed/miss counters it had seen — decisions vote on
        #: *deltas* per window, not lifetime totals.
        self._scale_watermark = 0
        self._scale_shed_seen = 0
        self._scale_miss_seen = 0
        self._last_scale_at: float | None = None
        self._in_scaling = False
        self._core_seconds = 0.0
        self._seconds_accrued_at = self._elastic_now()
        obs_binding = self.obs
        if obs_binding is not None:
            obs_binding.attach_fleet(self._obs_fleet_snapshot)

    # -- slot construction ---------------------------------------------------
    def _core_binding(self, index: int) -> Telemetry | None:
        """One core slot's telemetry binding (own modelled clock and
        registry, shared recorder/process); None without telemetry."""
        if self.telemetry is None:
            return None
        return Telemetry(
            trace=self._trace,
            process=self.label,
            track=f"core {index}",
            pid=self._pid,
        )

    def _build_session(self, index: int, spec: CoreSpec | None) -> PhotonicSession:
        """Build slot ``index`` from the cluster defaults with the
        spec's per-dimension overrides; the shared program store (when
        attached) rides in so the slot warm-starts its programs."""
        defaults = self._core_defaults
        spec = spec if spec is not None else CoreSpec()
        return PhotonicSession(
            technology=defaults["technology"],
            rows=spec.rows if spec.rows is not None else defaults["rows"],
            columns=(
                spec.columns if spec.columns is not None else defaults["columns"]
            ),
            weight_bits=(
                spec.weight_bits
                if spec.weight_bits is not None
                else defaults["weight_bits"]
            ),
            adc_bits=(
                spec.adc_bits if spec.adc_bits is not None else defaults["adc_bits"]
            ),
            cache_capacity=defaults["cache_capacity"],
            tiled_cache_capacity=defaults["tiled_cache_capacity"],
            max_batch=defaults["max_batch"],
            flush_policy=defaults["flush_policy"],
            drift=defaults["drift"],
            telemetry=self._core_binding(index),
            clock=self._clock,
            program_store=self.program_store,
            obs=self.obs,
            label=f"{self.label}/core{index}",
        )

    @staticmethod
    def _session_caps(session: PhotonicSession) -> tuple[int, int, int]:
        """(rows, columns, adc_bits) — what capability routing reads."""
        return (session.rows, session.columns, session.core.row_adcs[0].bits)

    # -- fleet geometry ------------------------------------------------------
    @property
    def cores(self) -> int:
        return len(self._sessions)

    @property
    def sessions(self) -> tuple[PhotonicSession, ...]:
        """The per-core sessions, in core-index order."""
        return tuple(self._sessions)

    @property
    def technology(self) -> Technology:
        return self._sessions[0].technology

    @property
    def flush_policy(self) -> FlushPolicy:
        """The per-core flush policy (every slot shares one)."""
        return self._sessions[0].flush_policy

    @property
    def rows(self) -> int:
        return self._sessions[0].rows

    @property
    def columns(self) -> int:
        return self._sessions[0].columns

    @property
    def pending(self) -> int:
        """Fleet-wide requests submitted but not yet flushed."""
        return sum(session.pending for session in self._sessions)

    @property
    def next_deadline(self) -> float | None:
        """Earliest absolute deadline among the fleet's pending
        requests (None when nothing pending carries one)."""
        deadlines = [
            session.next_deadline
            for session in self._sessions
            if session.next_deadline is not None
        ]
        return min(deadlines) if deadlines else None

    @property
    def flushes(self) -> int:
        """Total completed flushes across the fleet."""
        return sum(session.flushes for session in self._sessions)

    @property
    def models(self) -> tuple[ReplicatedModel, ...]:
        """Deployed replicated models, in compile order."""
        return tuple(self._replicated)

    @property
    def active_cores(self) -> tuple[int, ...]:
        """Cores currently in the routing rotation (not drained)."""
        return tuple(
            index for index in range(self.cores) if index not in self._drained
        )

    @property
    def draining(self) -> tuple[int, ...]:
        """Cores currently drained out of rotation, ascending."""
        return tuple(sorted(self._drained))

    @property
    def parked(self) -> tuple[int, ...]:
        """Slots scaled down and waiting warm (subset of
        :attr:`draining`), ascending."""
        return tuple(sorted(self._parked))

    @property
    def core_specs(self) -> tuple[CoreSpec | None, ...]:
        """The per-slot :class:`~repro.elastic.CoreSpec` overrides
        (None = cluster default), in core-index order."""
        return tuple(self._specs)

    # -- telemetry -----------------------------------------------------------
    def _fleet_now(self) -> float:
        """The fleet's modelled 'now': cores run concurrently on
        independent clocks, so fleet-scope events (sheds, drains)
        timestamp at the furthest-along core."""
        return max(
            (
                session.telemetry.clock.now
                for session in self._sessions
                if session.telemetry is not None
            ),
            default=0.0,
        )

    def _fleet_instant(self, name: str, args: dict | None = None) -> None:
        """Emit one instant event on the fleet trace track (no-op
        without telemetry)."""
        tel = self.telemetry
        if tel is not None:
            tel.clock.now = self._fleet_now()
            tel.instant(name, "fleet", args)

    def _obs_fleet_snapshot(self) -> dict:
        """The fleet's state at an incident dump (see
        :meth:`repro.obs.Observer.attach_fleet`): membership, backlog
        and routing/scale counters — enough to reconstruct what the
        fleet looked like when an alert fired."""
        return {
            "label": self.label,
            "cores": self.cores,
            "active_cores": list(self.active_cores),
            "draining": sorted(self._drained),
            "parked": sorted(self._parked),
            "pending": self.pending,
            "routed": list(self._routed),
            "shed": self._shed,
            "drains": self._drains,
            "scale_ups": self._scale_ups,
            "scale_downs": self._scale_downs,
            "at": self._fleet_now(),
        }

    def _obs_event(self, kind: str, args: dict | None = None) -> None:
        """Feed one fleet transition to the observer (no-op without
        one), stamped at the fleet's modelled now."""
        obs = self.obs
        if obs is not None:
            obs.note_event(self._fleet_now(), kind, args)

    # -- elastic bookkeeping -------------------------------------------------
    def _elastic_now(self) -> float:
        """Modelled 'now' for scale decisions and core-second
        accounting: the injected clock when one is shared fleet-wide,
        else the furthest-along core clock (0.0 without either)."""
        clock = self._clock
        if clock is not None:
            return float(clock() if callable(clock) else clock.now)
        return self._fleet_now()

    def _accrue_core_seconds(self) -> None:
        """Advance the core-seconds integral to 'now' at the *current*
        active-core count; call before any membership change so each
        interval is billed at the fleet size that actually served it."""
        now = self._elastic_now()
        elapsed = now - self._seconds_accrued_at
        if elapsed > 0.0:
            self._core_seconds += elapsed * len(self.active_cores)
            self._seconds_accrued_at = now

    def _fleet_deadline_misses(self) -> int:
        """Cumulative deadline-shed requests across the fleet (the
        autoscaler's miss signal; cheap — no report construction)."""
        return sum(
            session.scheduler.stats().deadline_misses + session._deadline_misses
            for session in self._sessions
        )

    # -- QoS -----------------------------------------------------------------
    @staticmethod
    def _validated_priority(priority: int) -> int:
        if not isinstance(priority, (int, np.integer)) or isinstance(priority, bool):
            raise ConfigurationError(
                f"priority must be an integer (0 = best-effort, higher "
                f"flushes first and bypasses shedding), got {priority!r}"
            )
        return int(priority)

    def _admit(self, priority: int) -> int:
        """Admission control: once ``max_pending`` requests are queued
        fleet-wide, best-effort traffic (priority <= 0) is shed with a
        :class:`ClusterSaturatedError`; positive priority bypasses."""
        priority = self._validated_priority(priority)
        if (
            self.max_pending is not None
            and priority <= 0
            and self.pending >= self.max_pending
        ):
            self._shed += 1
            if self.telemetry is not None:
                self.telemetry.metrics.counter("shed").inc()
                self._fleet_instant(
                    "shed",
                    args={
                        "pending": self.pending,
                        "max_pending": self.max_pending,
                    },
                )
            self._obs_event(
                "shed",
                {"pending": self.pending, "max_pending": self.max_pending},
            )
            raise ClusterSaturatedError(
                f"cluster saturated: {self.pending} requests pending >= "
                f"max_pending={self.max_pending}; flush()/poll() to drain, "
                "raise max_pending, or submit with priority > 0 to bypass"
            )
        return priority

    def _note_routed(self, core: int, priority: int) -> None:
        """Bookkeeping for one *successfully queued* request (call
        after the session accepted it, so a rejected submit neither
        counts as routed nor pins a phantom priority)."""
        self._routed[core] += 1
        self._submit_seq += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter("routed").inc()
        if self._sessions[core].pending == 0:
            # The submit tripped the core's own flush policy and the
            # request already resolved: nothing pending to prioritize.
            self._pending_priority[core] = None
            self._pending_since[core] = None
        else:
            current = self._pending_priority[core]
            if current is None or priority > current:
                self._pending_priority[core] = priority
            if self._pending_since[core] is None:
                self._pending_since[core] = self._submit_seq
        self._maybe_run_health()
        self._maybe_autoscale()

    # -- routed request paths ------------------------------------------------
    def _placement_cost(self, core: int, shape: tuple[int, int]) -> tuple[int, int]:
        """Cost of serving ``shape`` on ``core``: (powered cells, tile
        passes), compared lexicographically.  Small shapes are cheapest
        on small grids (no dead cells), large shapes on large grids
        (fewer tile passes) — exactly the heterogeneous trade-off; on
        equal cells the fewer-passes core wins (less scheduling and
        weight-streaming overhead)."""
        rows, columns, _ = self._core_caps[core]
        out_features, in_features = shape
        tiles = -(-out_features // rows) * -(-in_features // columns)
        return (tiles * rows * columns, tiles)

    def _capable_cores(
        self,
        shape: tuple[int, int] | None,
        min_adc_bits: int | None,
    ) -> tuple[int, ...]:
        """The active cores a request may land on.  ADC precision is a
        hard-ish constraint (graceful fallback: when no active core
        reaches ``min_adc_bits``, the highest-precision cores stand in
        rather than refusing traffic); on a heterogeneous fleet the
        cheapest-capable cores by :meth:`_placement_cost` remain."""
        candidates = self.active_cores
        if min_adc_bits is not None and len(candidates) > 1:
            capable = tuple(
                index
                for index in candidates
                if self._core_caps[index][2] >= min_adc_bits
            )
            if not capable:
                best = max(self._core_caps[index][2] for index in candidates)
                capable = tuple(
                    index
                    for index in candidates
                    if self._core_caps[index][2] == best
                )
            candidates = capable
        if shape is not None and self._heterogeneous and len(candidates) > 1:
            costs = {
                index: self._placement_cost(index, shape)
                for index in candidates
            }
            cheapest = min(costs.values())
            candidates = tuple(
                index for index in candidates if costs[index] == cheapest
            )
        return candidates

    def _route(
        self,
        key_factory: Callable[[], bytes],
        shape: tuple[int, int] | None = None,
        min_adc_bits: int | None = None,
    ) -> int:
        """Pick the core for one request.  ``key_factory`` builds the
        weight-program routing key; it is only invoked when the policy
        actually hashes keys, so round-robin/least-loaded never pay the
        program serialization.  Drained/parked cores are out of
        rotation and capability filtering (``shape``/``min_adc_bits``)
        narrows the sub-fleet first; cache-affinity then resolves on
        the membership-stable :class:`~repro.api.routing.HashRing`
        (restricted to the capable sub-fleet), so a hot program keeps
        its home core across scale events, while the stateless
        policies decide over the sub-fleet by index."""
        candidates = self._capable_cores(shape, min_adc_bits)
        if len(candidates) == 1:
            self._cursor += 1
            return candidates[0]
        if self.routing.needs_key:
            self._cursor += 1
            return self._ring.lookup(key_factory(), allowed=candidates)
        if self.routing.needs_loads:
            loads = [self._sessions[index].pending for index in candidates]
        else:
            loads = [0] * len(candidates)     # only the length is read
        slot = self.routing.select(None, loads, self._cursor)
        self._cursor += 1
        return candidates[slot]

    def submit(
        self,
        weights: ArrayLike,
        x: ArrayLike,
        gain: float | str | None = None,
        priority: int = 0,
        deadline: float | None = None,
        tenant: str | None = None,
        min_adc_bits: int | None = None,
    ) -> Future:
        """Queue one W @ x request on the core the routing policy
        picks; returns that core's :class:`Future`.  ``gain`` follows
        the session semantics; ``priority`` orders the fleet flush and
        (if positive) bypasses admission shedding; ``deadline`` /
        ``tenant`` follow :meth:`PhotonicSession.submit`;
        ``min_adc_bits`` asks for a read-out precision floor on a
        heterogeneous fleet (graceful fallback to the best available
        cores when none reaches it)."""
        priority = self._admit(priority)
        weights = np.asarray(weights)
        shape = (
            (int(weights.shape[0]), int(weights.shape[1]))
            if weights.ndim == 2
            else None
        )
        index = self._route(
            lambda: b"dense-route:" + weight_key(weights),
            shape=shape,
            min_adc_bits=min_adc_bits,
        )
        future = self._sessions[index].submit(
            weights, x, gain=gain, deadline=deadline, tenant=tenant
        )
        self._note_routed(index, priority)
        return future

    def _conv_route_key(self, kernels: ArrayLike) -> bytes:
        """Routing key of a conv program: the *quantized* differential
        rows, matching what the session caches on — float banks that
        quantize to one program must land on one core."""
        from ..core.quantization import quantize_weights_differential
        from ..ml.convolution import normalize_kernel_bank

        bank = normalize_kernel_bank(kernels)
        q_positive, q_negative, _ = quantize_weights_differential(
            bank.reshape(bank.shape[0], -1),
            self._sessions[0].core.weight_bits,
        )
        return b"conv-route:" + weight_key(
            np.concatenate([q_positive, q_negative])
        )

    def submit_conv(
        self,
        kernels: ArrayLike,
        image: ArrayLike,
        stride: int = 1,
        gain: float | None = None,
        priority: int = 0,
        deadline: float | None = None,
        tenant: str | None = None,
        min_adc_bits: int | None = None,
    ) -> Future:
        """Queue one im2col convolution on the routed core; the routing
        key is the quantized differential program, so one program's
        traffic shares one core's cache under cache-affinity.
        ``min_adc_bits`` follows :meth:`submit`."""
        priority = self._admit(priority)
        bank = np.asarray(kernels)
        shape = (
            (int(bank.shape[0]), int(np.prod(bank.shape[1:])))
            if bank.ndim >= 2
            else None
        )
        index = self._route(
            lambda: self._conv_route_key(kernels),
            shape=shape,
            min_adc_bits=min_adc_bits,
        )
        future = self._sessions[index].submit_conv(
            kernels, image, stride=stride, gain=gain,
            deadline=deadline, tenant=tenant,
        )
        self._note_routed(index, priority)
        return future

    # -- replicated model endpoints ------------------------------------------
    def compile(
        self,
        model: Model,
        calibration: np.ndarray | None = None,
        label: str | None = None,
        replicas: int = 1,
    ) -> ReplicatedModel:
        """Deploy a declarative :class:`Model` onto ``replicas``
        distinct cores (least-populated cores first) and fan submitted
        batches across them; see :class:`ReplicatedModel`."""
        if not isinstance(replicas, (int, np.integer)) or replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas!r}")
        if replicas > self.cores:
            raise ConfigurationError(
                f"cannot place {replicas} replicas on {self.cores} cores; "
                "each replica needs its own core"
            )
        label = label if label is not None else f"model-{len(self._replicated)}"
        placement = sorted(
            range(self.cores),
            key=lambda index: (
                index in self._drained,   # active slots first
                len(self._sessions[index].endpoints),
                self._sessions[index].pending,
                index,
            ),
        )[: int(replicas)]
        endpoints = tuple(
            self._sessions[index].compile(
                model, calibration=calibration, label=f"{label}@core{index}"
            )
            for index in placement
        )
        replicated = ReplicatedModel(self, endpoints, tuple(placement), label)
        self._replicated.append(replicated)
        return replicated

    # -- health: drain / recalibrate / restore -------------------------------
    def _validated_core(self, core: int) -> int:
        if not isinstance(core, (int, np.integer)) or not 0 <= core < self.cores:
            raise ConfigurationError(
                f"core must be an index in [0, {self.cores}), got {core!r}"
            )
        return int(core)

    def drain(self, core: int) -> None:
        """Take one core out of the routing rotation for maintenance.

        Its pending requests flush first so nothing is stranded; new
        traffic then routes to the remaining cores (the replicas absorb
        it) until :meth:`restore`.  The last active core cannot drain —
        the fleet must keep accepting traffic.
        """
        core = self._validated_core(core)
        if core in self._drained:
            return
        active = self.active_cores
        if active == (core,):
            raise ConfigurationError(
                f"cannot drain core {core}: it is the last active core; "
                "restore another core first"
            )
        self._sessions[core].flush()
        self._pending_priority[core] = None
        self._pending_since[core] = None
        self._drained.add(core)
        self._drains += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter("drains").inc()
            self._fleet_instant(f"drain core {core}", args={"core": core})
        if not self._in_scale_change:
            self._obs_event("drain", {"core": core})

    def restore(self, core: int) -> None:
        """Return a drained (or parked) core to the routing rotation."""
        core = self._validated_core(core)
        if core in self._drained:
            self._fleet_instant(f"restore core {core}", args={"core": core})
            if not self._in_scale_change:
                self._obs_event("restore", {"core": core})
        self._drained.discard(core)
        self._parked.discard(core)

    # -- elastic scaling -----------------------------------------------------
    def add_core(self, spec: CoreSpec | None = None) -> int:
        """Grow the fleet by one slot and return its index.

        The new slot is built from the cluster defaults with ``spec``'s
        overrides, joins the hash ring incrementally (only ~1/(n+1) of
        affinity keys re-home) and — when a
        :class:`~repro.elastic.ProgramStore` is attached — warm-starts
        every program it serves from the store instead of recompiling.
        Bumps :attr:`membership_version` so long-lived consumers
        re-snapshot the session list.
        """
        if spec is not None and not isinstance(spec, CoreSpec):
            raise ConfigurationError(
                f"spec must be a repro.elastic.CoreSpec, "
                f"got {type(spec).__name__}"
            )
        self._accrue_core_seconds()
        index = len(self._sessions)
        session = self._build_session(index, spec)
        if self.health_policy is not None:
            session.ensure_monitor(self.health_policy)
        self._sessions.append(session)
        self._specs.append(spec)
        self._core_caps.append(self._session_caps(session))
        self._heterogeneous = len(set(self._core_caps)) > 1
        self._routed.append(0)
        self._pending_priority.append(None)
        self._pending_since.append(None)
        self._ring.add(index)
        self.membership_version += 1
        if self.telemetry is not None:
            self.telemetry.metrics.gauge("active_cores").set(
                len(self.active_cores)
            )
            self._fleet_instant(
                f"add core {index}",
                args={
                    "core": index,
                    "spec": spec.describe() if spec is not None else "default",
                    "warm": self.program_store is not None,
                    "active": len(self.active_cores),
                },
            )
        if not self._in_scale_change:
            self._obs_event(
                "add_core",
                {"core": index, "active": len(self.active_cores)},
            )
        return index

    def scale_up(self, spec: CoreSpec | None = None) -> int:
        """Bring one more core into rotation and return its index.

        A parked slot rejoins first (warmest possible start — its LRU
        caches survived the park); otherwise a new slot is added via
        :meth:`add_core` (warm-started from the program store when one
        is attached, else cold).  ``spec`` defaults to the autoscaler's
        ``spec`` for grown slots.
        """
        self._accrue_core_seconds()
        self._in_scale_change = True
        try:
            if self._parked:
                core = max(self._parked)          # most recently parked
                warm_start = "unparked"
                self.restore(core)
            else:
                if spec is None and self.autoscaler is not None:
                    spec = self.autoscaler.spec
                warm_start = (
                    "store" if self.program_store is not None else "cold"
                )
                core = self.add_core(spec)
        finally:
            self._in_scale_change = False
        self._scale_ups += 1
        self._last_scale_at = self._elastic_now()
        if self.telemetry is not None:
            self.telemetry.metrics.counter("scale_ups").inc()
            self.telemetry.metrics.gauge("active_cores").set(
                len(self.active_cores)
            )
            self._fleet_instant(
                f"scale up core {core}",
                args={
                    "core": core,
                    "warm_start": warm_start,
                    "active": len(self.active_cores),
                },
            )
        self._obs_event(
            "scale_up",
            {
                "core": core,
                "warm_start": warm_start,
                "active": len(self.active_cores),
            },
        )
        return core

    def scale_down(self, core: int | None = None) -> int | None:
        """Park one core out of rotation; returns its index.

        Reuses the drain machinery — pending requests flush first, then
        the slot leaves the rotation and is *parked*, not deleted:
        indices stay stable and the slot's caches stay warm for the
        next :meth:`scale_up`.  With ``core=None`` the emptiest
        endpoint-free core parks (highest index on ties); returns None
        when no core can leave (only one active core remains, the
        chosen core is already out, or every active core hosts model
        endpoints).
        """
        active = self.active_cores
        if len(active) <= 1:
            return None
        if core is None:
            candidates = [
                index
                for index in active
                if not self._sessions[index].endpoints
            ]
            if not candidates:
                return None
            core = min(
                candidates,
                key=lambda index: (self._sessions[index].pending, -index),
            )
        else:
            core = self._validated_core(core)
            if core not in active:
                return None
        self._accrue_core_seconds()
        self._in_scale_change = True
        try:
            self.drain(core)
        finally:
            self._in_scale_change = False
        self._parked.add(core)
        self._scale_downs += 1
        self._last_scale_at = self._elastic_now()
        if self.telemetry is not None:
            self.telemetry.metrics.counter("scale_downs").inc()
            self.telemetry.metrics.gauge("active_cores").set(
                len(self.active_cores)
            )
            self._fleet_instant(
                f"scale down core {core}",
                args={"core": core, "active": len(self.active_cores)},
            )
        self._obs_event(
            "scale_down",
            {"core": core, "active": len(self.active_cores)},
        )
        return core

    def _maybe_autoscale(self) -> None:
        """Evaluate the autoscaler on its watermark and act on the
        vote.  The watermark counts submits *and* flushes — overload
        (queue depth) is only visible between submits, while a fully
        idle fleet only ticks on flush/poll, so both must advance the
        cadence.  Piggybacks on the same hooks as health maintenance,
        so fleets on auto-flush policies still scale."""
        policy = self.autoscaler
        if policy is None or self._in_scaling or self._in_maintenance:
            return
        total = self._submit_seq + self.flushes
        if (
            total - self._scale_watermark < policy.watch_every
            and len(self.active_cores) >= policy.min_cores
        ):
            return
        self._scale_watermark = total
        shed = self._shed
        shed_delta = shed - self._scale_shed_seen
        self._scale_shed_seen = shed
        misses = self._fleet_deadline_misses()
        miss_delta = misses - self._scale_miss_seen
        self._scale_miss_seen = misses
        snapshot = FleetSnapshot(
            active_cores=len(self.active_cores),
            pending=self.pending,
            shed_delta=shed_delta,
            miss_delta=miss_delta,
            now=self._elastic_now(),
            last_scale_at=self._last_scale_at,
        )
        step = policy.decide(snapshot)
        if step == 0:
            return
        self._in_scaling = True
        try:
            if step > 0:
                self.scale_up()
            else:
                self.scale_down()
        finally:
            self._in_scaling = False

    def check_health(self) -> tuple[HealthReport, ...]:
        """Probe every core (drained ones included) and return the
        per-core reports, in core order."""
        return tuple(session.check_health() for session in self._sessions)

    def recalibrate_core(self, core: int) -> HealthReport | None:
        """Drain → recalibrate → restore one core.

        The core leaves the rotation (unless it is the last active
        core, which recalibrates in place — a one-core fleet cannot
        stop serving), its session re-trims and invalidates its stale
        programs, and it rejoins the rotation.  Returns the session's
        post-trim verification report.
        """
        core = self._validated_core(core)
        was_drained = core in self._drained
        solo = self.active_cores == (core,)
        if not was_drained and not solo:
            self.drain(core)
        try:
            return self._sessions[core].recalibrate()
        finally:
            if not was_drained and not solo:
                self.restore(core)

    def _maybe_run_health(self) -> None:
        """Fleet maintenance on the policy cadence: probe every active
        core, and drain/recalibrate/restore the ones past threshold
        while the rest keep serving.

        The cadence counts *core* flushes (wherever they came from —
        an explicit :meth:`flush`, a blocking ``result()`` or a
        session's own flush policy tripping mid-submit), so fleets
        running entirely on auto-flush policies still get probed.
        """
        policy = self.health_policy
        if policy is None or self._in_maintenance:
            return
        total = self.flushes
        if total - self._health_watermark < policy.probe_every:
            return
        self._health_watermark = total
        self._in_maintenance = True
        try:
            for index in self.active_cores:
                report = self._sessions[index].check_health()
                if (
                    policy.recalibrate_threshold is not None
                    and report.code_error_rate > policy.recalibrate_threshold
                ):
                    self.recalibrate_core(index)
        finally:
            self._in_maintenance = False

    # -- flush / poll --------------------------------------------------------
    def _flush_order(self) -> list[int]:
        """Cores ordered for flushing: highest admitted priority first;
        equal priorities break by submit order (the core whose oldest
        pending request arrived first flushes first), then core index —
        a fully deterministic key, so traced runs replay identically
        across platforms (best-effort-only cores still flush last)."""
        return sorted(
            range(self.cores),
            key=lambda index: (
                -(
                    self._pending_priority[index]
                    if self._pending_priority[index] is not None
                    else float("-inf")
                ),
                (
                    self._pending_since[index]
                    if self._pending_since[index] is not None
                    else float("inf")
                ),
                index,
            ),
        )

    def flush(self) -> int:
        """Flush every core (priority order); returns resolved count."""
        resolved = 0
        for index in self._flush_order():
            resolved += self._sessions[index].flush()
            self._pending_priority[index] = None
            self._pending_since[index] = None
        self._maybe_run_health()
        self._maybe_autoscale()
        return resolved

    def age(self, seconds: float) -> None:
        """Model idle wall-clock passing on every core (the fleet sits
        in one machine room; see :meth:`PhotonicSession.age`)."""
        for session in self._sessions:
            session.age(seconds)

    def poll(self) -> int:
        """Re-check every core's flush-policy deadline (the cluster
        twin of :meth:`PhotonicSession.poll`); returns resolved count."""
        resolved = 0
        for index in self._flush_order():
            resolved += self._sessions[index].poll()
            if self._sessions[index].pending == 0:
                self._pending_priority[index] = None
                self._pending_since[index] = None
        self._maybe_run_health()
        self._maybe_autoscale()
        return resolved

    # -- reporting -----------------------------------------------------------
    def _merged_latency_quantiles(self) -> dict | None:
        """Fleet latency distributions: per-core telemetry histograms
        merged bin-for-bin (quantiles are not additive, so the merge
        happens at the histogram level).  None without telemetry or
        before any request resolved — :meth:`Histogram.merged` of an
        empty sequence is None, so a telemetry-less fleet never fakes a
        distribution."""
        bindings = [
            session.telemetry
            for session in self._sessions
            if session.telemetry is not None
        ]
        e2e = Histogram.merged(
            [b.metrics.histogram(END_TO_END_HISTOGRAM) for b in bindings],
            name=END_TO_END_HISTOGRAM,
        )
        if e2e is None:
            return None
        summary = e2e.summary()
        if summary is None:
            return None
        wait = Histogram.merged(
            [b.metrics.histogram(QUEUE_WAIT_HISTOGRAM) for b in bindings],
            name=QUEUE_WAIT_HISTOGRAM,
        )
        return {"queue_wait": wait.summary(), "end_to_end": summary}

    def _merged_tenant_quantiles(self) -> dict | None:
        """Fleet per-tenant latency split, merged bin-for-bin across
        the per-core telemetry histograms (see
        :func:`repro.telemetry.merged_tenant_quantiles`)."""
        return merged_tenant_quantiles(
            [
                session.telemetry
                for session in self._sessions
                if session.telemetry is not None
            ]
        )

    def report(self) -> ClusterReport:
        """Cumulative fleet accounting: per-core RunReports plus their
        rolled-up totals, routing spread, shed count and (with
        telemetry) the merged fleet latency distributions."""
        self._accrue_core_seconds()
        per_core = tuple(session.report() for session in self._sessions)
        return ClusterReport(
            cores=self.cores,
            routing=self.routing.describe(),
            total=RunReport.combined(per_core),
            per_core=per_core,
            routed=tuple(self._routed),
            shed=self._shed,
            draining=self.draining,
            drains=self._drains,
            scale_ups=self._scale_ups,
            scale_downs=self._scale_downs,
            core_seconds=self._core_seconds,
            pending=tuple(session.pending for session in self._sessions),
            deadline_shed=tuple(
                report.deadline_misses for report in per_core
            ),
            latency_quantiles=self._merged_latency_quantiles(),
            tenant_quantiles=self._merged_tenant_quantiles(),
        )

    def __repr__(self) -> str:
        return (
            f"<PhotonicCluster {self.cores} x {self.rows}x{self.columns} "
            f"cores, routing {self.routing.describe()}, "
            f"{self.pending} pending>"
        )
