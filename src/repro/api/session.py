"""The one front door: :class:`PhotonicSession` and deployed models.

A session owns everything the serving stack used to scatter across
three surfaces: the physical tensor core and its batching scheduler,
the shared LRU weight-program cache, the cross-engine ADC ladder memo,
the gain policy, and the flush policy.  Every request route hangs off
it and returns a :class:`~repro.api.futures.Future`:

* ``session.submit(weights, x)`` — raw dense W @ x (any shape; padded
  onto one tile or sharded onto a tiled grid automatically);
* ``session.submit_conv(kernels, image)`` — im2col convolution against
  a cached differential conv program;
* ``session.compile(model)`` — turn a declarative
  :class:`~repro.api.graph.Model` into a :class:`DeployedModel`
  endpoint whose ``submit(batch)`` serves whole network forwards.

A pluggable :class:`~repro.api.policy.FlushPolicy` replaces hand-called
``flush()``: requests queue until the policy trips (max_batch /
max_delay) or a blocking ``Future.result()`` forces the evaluation.
Each flush produces one unified :class:`~repro.api.futures.RunReport`
carried by every future it resolves.

The legacy :class:`repro.runtime.serving.InferenceServer` is a thin
deprecation shim over this class — the engine room moved here.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..config import Technology, default_technology
from ..core.quantization import quantize_weights_differential
from ..elastic import ProgramStore, core_fingerprint
from ..errors import ConfigurationError, DeadlineExceededError
from ..health.drift import DriftModel, DriftState
from ..health.monitor import HealthMonitor, HealthPolicy, HealthReport
from ..ml.convolution import (
    PhotonicConv2d,
    avg_pool2d,
    encode_patch_batch,
    im2col_channels,
    normalize_image,
    normalize_kernel_bank,
    output_shape,
)
from ..ml.layers import PhotonicDense, compile_differential_engines, relu
from ..runtime.engine import weight_key
from ..runtime.scheduler import BatchScheduler, WeightProgramCache
from ..runtime.tiling import DifferentialProgram, TiledMatmul, auto_range_gain
from ..telemetry import MetricsRegistry, ModelClock, Telemetry, TraceRecorder
from ..telemetry.profiling import wall_clock
from .futures import Future, RunReport
from .graph import AvgPool, Conv2d, Dense, Flatten, Model, ReLU
from .policy import FlushPolicy

if TYPE_CHECKING:
    from numpy.typing import ArrayLike

    from ..core.performance import PerformanceModel
    from ..core.tensor_core import PhotonicTensorCore
    from ..obs import Observer
    from ..runtime.serving import ServerStats

#: Everything the ``drift`` knob accepts: a ready state, one model, an
#: iterable of models (wrapped into a fresh state), or None.
DriftLike = DriftState | DriftModel | Iterable[DriftModel] | None

#: Everything the ``clock`` knob accepts: a shared
#: :class:`~repro.telemetry.ModelClock`, any zero-argument callable
#: returning seconds, or None (host wall clock, the default).
ClockSource = ModelClock | Callable[[], float] | None


@dataclass
class CompiledStage:
    """One model layer bound to the session core: the declarative
    ``spec`` plus, for compute layers, the photonic ``layer`` executing
    it (None for digital ReLU/AvgPool/Flatten glue)."""

    spec: object
    layer: PhotonicDense | PhotonicConv2d | None = None


class DeployedModel:
    """A compiled model graph serving as a session endpoint.

    ``submit(batch)`` queues a whole-network forward and returns a
    :class:`~repro.api.futures.Future`; pending batches coalesce at the
    next flush into one dense evaluation per input shape.  ``predict``
    (also ``__call__``) is the blocking convenience: submit + result.
    """

    def __init__(
        self,
        session: "PhotonicSession",
        model: Model,
        stages: list[CompiledStage],
        label: str,
    ) -> None:
        self._session = session
        self.model = model
        self.stages = stages
        self.label = label
        self._queue: list[tuple[np.ndarray, Future]] = []
        self._submitted = 0
        #: Set by a session recalibration: the compute layers must be
        #: re-attached to fresh cached programs before the next drain.
        self._needs_rebind = False

    @property
    def session(self) -> "PhotonicSession":
        return self._session

    @property
    def layers(self) -> list:
        """The compiled photonic layers (Dense/Conv2d stages), in order."""
        return [stage.layer for stage in self.stages if stage.layer is not None]

    # -- request path --------------------------------------------------------
    def _validated_batch(self, batch: ArrayLike) -> np.ndarray:
        batch = np.asarray(batch, dtype=float)
        if self.model.input_domain == "vector":
            if batch.ndim != 2 or len(batch) == 0:
                raise ConfigurationError(
                    f"model '{self.label}' expects a non-empty "
                    f"(samples, features) batch, got shape {batch.shape}"
                )
        elif batch.ndim not in (3, 4) or len(batch) == 0:
            raise ConfigurationError(
                f"model '{self.label}' expects a non-empty image batch "
                f"(batch, H, W) or (batch, channels, H, W), got shape {batch.shape}"
            )
        return batch

    def submit(
        self,
        batch: ArrayLike,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> Future:
        """Queue one forward pass over ``batch``; resolved at the next
        flush (or immediately if the session flush policy trips).
        ``deadline`` / ``tenant`` follow the
        :meth:`PhotonicSession.submit` semantics — an endpoint batch
        whose deadline expires before its drain begins is shed."""
        batch = self._validated_batch(batch)
        deadline_at = self._session._resolve_deadline(deadline)
        self._submitted += 1
        future = Future(
            self._session,
            f"model '{self.label}' batch #{self._submitted}",
            self._session.flushes + 1,
        )
        if deadline is not None and deadline <= 0.0:
            future._deadline = deadline_at
            future._tenant = tenant
            self._session._shed_future(future)
            return future
        self._queue.append((batch, future))
        self._session._model_requests += 1
        self._session._note_submit(future, "model", tenant)
        self._session._note_deadline(future, deadline_at)
        self._session._after_submit()
        return future

    def predict(self, batch: ArrayLike) -> np.ndarray:
        """Blocking forward: submit + :meth:`Future.result`."""
        return self.submit(batch).result()

    __call__ = predict

    # -- evaluation (session flush internals) --------------------------------
    def _drain(
        self, resolved_futures: list[Future], now: float | None = None
    ) -> int:
        if not self._queue:
            return 0
        queue, self._queue = self._queue, []
        if now is not None:
            # Endpoint batches shed on the simple rule: a deadline
            # already past when the drain begins cannot be met (whole-
            # network forwards have no cheap completion estimate).
            live = []
            for batch, future in queue:
                if future._deadline is not None and future._deadline < now:
                    self._session._shed_future(future)
                else:
                    live.append((batch, future))
            queue = live
            if not queue:
                return 0
        groups: dict[tuple, list[tuple[np.ndarray, Future]]] = {}
        for batch, future in queue:
            groups.setdefault(batch.shape[1:], []).append((batch, future))
        resolved = 0
        for entries in groups.values():
            stack = np.concatenate([batch for batch, _ in entries], axis=0)
            outputs = self._forward(stack)
            self._session._model_batches += 1
            offset = 0
            for batch, future in entries:
                future._resolve(outputs[offset : offset + len(batch)])
                resolved_futures.append(future)
                offset += len(batch)
                resolved += 1
        return resolved

    def _forward(self, batch: np.ndarray) -> np.ndarray:
        """Run the stage chain, accounting analog time/energy into the
        session ledger as the compiled engines evaluate."""
        session = self._session
        current = batch
        for stage in self.stages:
            spec, layer = stage.spec, stage.layer
            if isinstance(spec, Dense):
                samples = len(current)
                current = layer.forward(current)
                session._account_model_stage(layer, samples)
            elif isinstance(spec, Conv2d):
                current = layer.forward_batch(current)
                patches = len(current) * current.shape[2] * current.shape[3]
                session._account_model_stage(layer, patches)
            elif isinstance(spec, ReLU):
                current = relu(current)
            elif isinstance(spec, AvgPool):
                current = avg_pool2d(current, spec.size)
            elif isinstance(spec, Flatten):
                current = current.reshape(len(current), -1)
            else:  # a spec added to graph.py but not wired up here
                raise ConfigurationError(
                    f"no forward rule for layer spec {type(spec).__name__}"
                )
        return current

    def __repr__(self) -> str:
        return (
            f"<DeployedModel '{self.label}': "
            f"{len(self.model.compute_layers)} compute layers, "
            f"{len(self._queue)} pending>"
        )


class PhotonicSession:
    """A serving session owning one tile-sized core and all its state.

    ``grid=(rows, columns)`` sets the physical tile; any (out, in)
    unsigned weight matrix is served — smaller shapes are zero-padded
    onto the tile and share the scheduler's batching/caching, larger
    shapes compile onto cached :class:`~repro.runtime.tiling.TiledMatmul`
    grids.  Declarative models deploy through :meth:`compile`.

    ``drift=[...DriftModel...]`` attaches a live
    :class:`~repro.health.DriftState` — the analog stack then ages
    with modelled serving time and conversions (and :meth:`age`) — and
    ``health_policy=HealthPolicy(...)`` closes the loop: probe checks
    on a flush cadence, automatic :meth:`recalibrate` past the
    code-error threshold (see :mod:`repro.health`).
    """

    def __init__(
        self,
        technology: Technology | None = None,
        grid: tuple[int, int] | None = None,
        rows: int | None = None,
        columns: int | None = None,
        weight_bits: int | None = None,
        adc_bits: int | None = None,
        cache_capacity: int = 8,
        tiled_cache_capacity: int = 4,
        max_batch: int = 256,
        flush_policy: FlushPolicy | None = None,
        drift: DriftLike = None,
        health_policy: HealthPolicy | None = None,
        trace: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
        telemetry: Telemetry | None = None,
        clock: ClockSource = None,
        program_store: ProgramStore | None = None,
        obs: Observer | None = None,
        label: str = "session",
    ) -> None:
        if grid is not None:
            if rows is not None or columns is not None:
                raise ConfigurationError(
                    "pass either grid=(rows, columns) or rows=/columns=, not both"
                )
            try:
                rows, columns = (int(dim) for dim in grid)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"grid must be a (rows, columns) pair, got {grid!r}"
                ) from None
        self.technology = technology if technology is not None else default_technology()
        self.flush_policy = (
            flush_policy if flush_policy is not None else FlushPolicy.explicit()
        )
        self.label = str(label)
        if clock is not None and not (
            isinstance(clock, ModelClock) or callable(clock)
        ):
            raise ConfigurationError(
                f"clock must be a repro.telemetry.ModelClock, a callable "
                f"returning seconds, or None (host wall clock), "
                f"got {type(clock).__name__}"
            )
        #: Injectable time source the flush policy and ``deadline=``
        #: stamps read (:data:`ClockSource`).  None = host wall clock
        #: via :func:`~repro.telemetry.profiling.wall_clock` (the
        #: pre-existing behaviour); the open-loop traffic engine
        #: injects a :class:`~repro.telemetry.ModelClock` it advances
        #: to each arrival so simulation results never depend on host
        #: timing (see :mod:`repro.traffic`).
        self.clock = clock
        # -- telemetry (repro.telemetry) --------------------------------
        #: Optional :class:`~repro.telemetry.Telemetry` binding: the
        #: modelled clock, trace recorder and metrics registry of this
        #: core's timeline.  None (the default) = the serving path
        #: makes zero telemetry calls.
        self.telemetry: Telemetry | None
        if telemetry is not None:
            if not isinstance(telemetry, Telemetry):
                raise ConfigurationError(
                    f"telemetry must be a repro.telemetry.Telemetry, "
                    f"got {type(telemetry).__name__}"
                )
            self.telemetry = telemetry
        elif trace is not None or metrics is not None:
            if trace is not None and not isinstance(trace, TraceRecorder):
                raise ConfigurationError(
                    f"trace must be a repro.telemetry.TraceRecorder, "
                    f"got {type(trace).__name__}"
                )
            self.telemetry = Telemetry(
                trace=trace, metrics=metrics, process=self.label
            )
        else:
            self.telemetry = None
        # -- active observability (repro.obs) ---------------------------
        #: Optional :class:`~repro.obs.Observer`: the alerting monitor
        #: this session feeds its flush/health/event stream.  None (the
        #: default) = the serving path makes zero obs calls.  An
        #: attached observer needs the modelled clock and per-flush
        #: latency windows, so it implies a metrics-only telemetry
        #: binding when none was passed.
        if obs is not None:
            from ..obs import Observer as _Observer

            if not isinstance(obs, _Observer):
                raise ConfigurationError(
                    f"obs must be a repro.obs.Observer, "
                    f"got {type(obs).__name__}"
                )
            if self.telemetry is None:
                self.telemetry = Telemetry(process=self.label)
        self.obs = obs
        self.scheduler = BatchScheduler(
            rows=rows,
            columns=columns,
            weight_bits=weight_bits,
            adc_bits=adc_bits,
            technology=self.technology,
            cache_capacity=cache_capacity,
            max_batch=max_batch,
            label="session",
        )
        self.scheduler.telemetry = self.telemetry
        #: Shared LRU of tiled/conv/model weight programs.
        self.tiled_cache = WeightProgramCache(tiled_cache_capacity)
        self._native_pending: list[tuple[Future, object, int]] = []
        self._tiled_pending: dict[tuple[bytes, float | str], dict] = {}
        self._conv_pending: dict[tuple[bytes, float], dict] = {}
        self._endpoints: list[DeployedModel] = []
        self._oldest_pending: float | None = None
        #: Most urgent absolute deadline among pending requests (None =
        #: no pending request carries one); feeds the SLO-aware policy.
        self._earliest_deadline: float | None = None
        #: Deadline misses the session shed itself (submit-time expiry
        #: plus tiled/conv/model flush sheds); the scheduler counts its
        #: own in :class:`~repro.runtime.scheduler.SchedulerStats`.
        self._deadline_misses = 0
        self._flushes = 0
        #: Modelled-clock timestamp the current flush started at
        #: (telemetry only; queue-wait = flush start - submit time).
        self._flush_started = 0.0
        self._submit_count = 0
        self._tiled_requests = 0
        self._tiled_batches = 0
        self._tiled_samples = 0
        self._tiled_analog_time = 0.0
        self._tiled_analog_energy = 0.0
        self._tiled_energy_spent = 0.0
        self._tiled_energy_saved = 0.0
        self._tiled_weight_time = 0.0
        self._conv_requests = 0
        self._conv_patches = 0
        self._model_requests = 0
        self._model_batches = 0
        self._model_samples = 0
        self._model_analog_time = 0.0
        self._model_analog_energy = 0.0

        # -- health loop (repro.health) ----------------------------------
        #: Live degradation state of the core (None = ageless hardware).
        self.drift = self._coerce_drift(drift)
        if self.drift is not None:
            self.core.drift_state = self.drift
        if health_policy is not None and not isinstance(health_policy, HealthPolicy):
            raise ConfigurationError(
                f"health_policy must be a repro.health.HealthPolicy, "
                f"got {type(health_policy).__name__}"
            )
        self.health_policy = health_policy
        #: Probe monitor (built at construction when a policy is set,
        #: lazily by :meth:`check_health` otherwise).
        self.health: HealthMonitor | None = None
        self._health_history: list[HealthReport] = []
        self._probe_runs = 0
        self._probe_vectors = 0
        self._recalibrations = 0
        self._calibration_time = 0.0
        self._calibration_energy = 0.0
        self._in_maintenance = False
        if self.health_policy is not None:
            self.ensure_monitor(self.health_policy)

        # -- persisted warm starts (repro.elastic) -----------------------
        #: Optional :class:`~repro.elastic.ProgramStore` both program
        #: caches write through to and read back from: compiled
        #: programs persist across sessions (and processes), so a fresh
        #: core warm-starts bit-for-bit instead of recompiling.
        if program_store is not None and not isinstance(program_store, ProgramStore):
            raise ConfigurationError(
                f"program_store must be a repro.elastic.ProgramStore, "
                f"got {type(program_store).__name__}"
            )
        self.program_store = program_store
        if program_store is not None:
            fingerprint = core_fingerprint(
                self.technology,
                self.rows,
                self.columns,
                self.core.weight_bits,
                self.core.row_adcs[0].bits,
            )

            def _current_epoch() -> int:
                drift_state = self.core.drift_state
                if drift_state is not None and drift_state.active:
                    return drift_state.epoch
                return 0

            def _current_drift():
                return self.core.drift_state

            for cache in (self.scheduler.cache, self.tiled_cache):
                cache.attach_store(
                    program_store,
                    fingerprint=fingerprint,
                    technology=self.technology,
                    epoch_source=_current_epoch,
                    drift_source=_current_drift,
                )
        self._last_totals = self._totals()

    # -- geometry ------------------------------------------------------------
    @property
    def core(self) -> PhotonicTensorCore:
        """The physical tensor core backing every route."""
        return self.scheduler.core

    @property
    def performance(self) -> PerformanceModel:
        return self.scheduler.performance

    @property
    def rows(self) -> int:
        return self.scheduler.rows

    @property
    def columns(self) -> int:
        return self.scheduler.columns

    @property
    def flushes(self) -> int:
        """Completed flush count (futures name flush ``flushes + 1``)."""
        return self._flushes

    @property
    def pending(self) -> int:
        """Requests submitted but not yet flushed, across all routes."""
        return (
            self.scheduler.pending
            + sum(len(group["futures"]) for group in self._tiled_pending.values())
            + sum(len(group["futures"]) for group in self._conv_pending.values())
            + sum(len(endpoint._queue) for endpoint in self._endpoints)
        )

    @property
    def endpoints(self) -> tuple:
        """Deployed model endpoints, in compile order."""
        return tuple(self._endpoints)

    # -- gain policy ---------------------------------------------------------
    @staticmethod
    def _validated_gain(gain: float | str | None) -> float | str | None:
        """Normalize the shared gain semantics of every request path:
        None = native TIA gain 1.0, "auto" = calibrate the range from
        the weights, a positive float = explicit setting."""
        if gain is None or gain == "auto":
            return gain
        if not isinstance(gain, (int, float)):
            raise ConfigurationError(f"gain must be a number, 'auto' or None, got {gain!r}")
        if gain <= 0.0:
            raise ConfigurationError(f"TIA gain must be positive, got {gain}")
        return float(gain)

    def _auto_gain(self, weights: np.ndarray) -> float:
        """The shared range-calibration rule applied to one padded tile."""
        return auto_range_gain(weights, self.columns * self.core.max_weight)

    # -- raw dense route -----------------------------------------------------
    def submit(
        self,
        weights: ArrayLike,
        x: ArrayLike,
        gain: float | str | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> Future:
        """Queue one W @ x request; returns its :class:`Future`.

        ``gain`` sets the row-TIA range on every tile the request
        touches: None runs at the native gain 1.0, ``"auto"``
        calibrates the range from the weights (the same rule on both
        the single-tile and the tiled path), and a positive float is
        applied as-is.

        ``deadline`` (seconds from now on the session's clock, None =
        best effort) sheds the request with a
        :class:`~repro.errors.DeadlineExceededError` instead of serving
        it late: a non-positive deadline sheds at submit, and a flush
        whose batch cannot complete in time sheds at evaluation —
        either way the returned future's ``expired`` flag is set and
        the miss counts on :attr:`RunReport.deadline_misses`.
        ``tenant`` labels the request for per-tenant telemetry.
        """
        weights = np.asarray(weights, dtype=int)
        if weights.ndim != 2:
            raise ConfigurationError(
                f"weight matrix must be 2-D, got shape {weights.shape}"
            )
        x = np.asarray(x, dtype=float)
        out_features, in_features = weights.shape
        if x.shape != (in_features,):
            raise ConfigurationError(
                f"input must have shape ({in_features},), got {x.shape}"
            )
        gain = self._validated_gain(gain)
        deadline_at = self._resolve_deadline(deadline)
        self._submit_count += 1
        label = f"dense {out_features}x{in_features} request #{self._submit_count}"
        if deadline is not None and deadline <= 0.0:
            # Already expired at submit: never enters a queue.
            future = Future(self, label, self._flushes + 1)
            future._deadline = deadline_at
            future._tenant = tenant
            self._shed_future(future)
            return future
        if out_features <= self.rows and in_features <= self.columns:
            padded_w = np.zeros((self.rows, self.columns), dtype=int)
            padded_w[:out_features, :in_features] = weights
            padded_x = np.zeros(self.columns)
            padded_x[:in_features] = x
            if gain is None:
                gain = 1.0
            elif gain == "auto":
                gain = self._auto_gain(padded_w)
            ticket = self.scheduler.submit(
                padded_w, padded_x, gain=gain, deadline=deadline_at
            )
            future = Future(self, label, self._flushes + 1)
            self._native_pending.append((future, ticket, out_features))
            self._note_submit(future, "native", tenant)
        else:
            future = self._submit_tiled(weights, x, gain, label, tenant)
        self._note_deadline(future, deadline_at)
        self._after_submit()
        return future

    def _submit_tiled(
        self,
        weights: np.ndarray,
        x: np.ndarray,
        gain: float | str,
        label: str,
        tenant: str | None = None,
    ) -> Future:
        max_weight = self.core.max_weight
        if np.any(weights < 0) or np.any(weights > max_weight):
            raise ConfigurationError(
                f"weights must lie in [0, {max_weight}], got range "
                f"[{weights.min()}, {weights.max()}]"
            )
        if x.size and (x.min() < 0.0 or x.max() > 1.0):
            raise ConfigurationError(
                f"analog inputs must lie in [0, 1], got range "
                f"[{x.min():.6g}, {x.max():.6g}]"
            )
        # Requests batch per (program, gain): mixed gains against the
        # same weights must not share an evaluation.  None means native
        # gain 1.0 (matching the single-tile path); "auto" defers to
        # the grid's per-tile calibrated gains.
        gain = 1.0 if gain is None else gain
        key = (weight_key(weights), gain)
        group = self._tiled_pending.get(key)
        if group is None:
            group = {"weights": weights.copy(), "inputs": [], "futures": [], "gain": gain}
            self._tiled_pending[key] = group
        future = Future(self, label, self._flushes + 1)
        group["inputs"].append(x.copy())
        group["futures"].append(future)
        self._tiled_requests += 1
        self._note_submit(future, "tiled", tenant)
        return future

    # -- conv route ----------------------------------------------------------
    def submit_conv(
        self,
        kernels: ArrayLike,
        image: ArrayLike,
        stride: int = 1,
        gain: float | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> Future:
        """Queue one im2col convolution; returns its :class:`Future`.

        ``kernels`` is a float bank of shape (n, k, k) — or
        (n, channels, k, k) — quantized here into a differential conv
        program keyed on the quantized integers, so repeated banks hit
        the shared program cache; ``image`` is a non-negative (H, W) or
        (channels, H, W) intensity map.  ``gain`` is the row-TIA range
        setting applied to every tile (None = native 1.0); the per-tile
        ``"auto"`` calibration is not offered here because differential
        halves must digitize at one common gain to subtract exactly.
        ``deadline`` / ``tenant`` follow the :meth:`submit` semantics.
        """
        kernels = normalize_kernel_bank(kernels)
        gain = self._validated_gain(gain)
        deadline_at = self._resolve_deadline(deadline)
        if gain == "auto":
            raise ConfigurationError(
                "the conv route takes a numeric gain (or None for native 1.0)"
            )
        gain = 1.0 if gain is None else float(gain)
        kernel_size = kernels.shape[2]
        image = normalize_image(image, kernels.shape[1])

        flattened = kernels.reshape(kernels.shape[0], -1)
        q_positive, q_negative, weight_scale = quantize_weights_differential(
            flattened, self.core.weight_bits
        )
        patches = im2col_channels(image, kernel_size, stride)
        out_rows, out_cols = output_shape(image.shape[1:], kernel_size, stride)
        encoded, scales = encode_patch_batch(patches)

        # Conv programs share the tiled LRU; the prefix keeps a kernel
        # bank from colliding with a plain weight matrix of equal bytes.
        key = b"conv:" + weight_key(np.concatenate([q_positive, q_negative]))
        group = self._conv_pending.get((key, gain))
        if group is None:
            group = {
                "q_positive": q_positive,
                "q_negative": q_negative,
                "segments": [],
                "futures": [],
            }
            self._conv_pending[(key, gain)] = group
        self._submit_count += 1
        future = Future(
            self,
            f"conv {kernels.shape[0]}-kernel request #{self._submit_count}",
            self._flushes + 1,
            shape=(kernels.shape[0], out_rows, out_cols),
        )
        if deadline is not None and deadline <= 0.0:
            future._deadline = deadline_at
            future._tenant = tenant
            self._shed_future(future)
            return future
        group["segments"].append((encoded, scales, weight_scale))
        group["futures"].append(future)
        self._conv_requests += 1
        self._note_submit(future, "conv", tenant)
        self._note_deadline(future, deadline_at)
        self._after_submit()
        return future

    def _differential_program(
        self, key: bytes, q_positive: np.ndarray, q_negative: np.ndarray
    ) -> DifferentialProgram:
        """Fetch-or-compile a differential program in the shared cache,
        charging the pSRAM streaming ledger on misses and crediting the
        avoided reload on hits."""
        tel = self.telemetry
        program = self.tiled_cache.get(key)
        if program is None:
            # Warm start: restore a persisted compile of this program
            # before paying the cold differential build.  The modelled
            # streaming ledger is charged identically either way; only
            # the host-side compile is skipped.
            restored = self.tiled_cache.read_back(key)
            if restored is not None:
                self._tiled_energy_spent += restored.weight_update_energy
                self._tiled_weight_time += restored.weight_update_time
                self.tiled_cache.put(key, restored)
                if tel is not None:
                    restore_start = tel.clock.now
                    tel.clock.advance(restored.weight_update_time)
                    tel.metrics.counter("warm_starts").inc()
                    tel.span(
                        "warm start differential",
                        "fleet",
                        restore_start,
                        restored.weight_update_time,
                        args={
                            "program": key[:12].hex(),
                            "tiles": restored.tile_count,
                        },
                    )
                return restored
            positive, negative = compile_differential_engines(
                q_positive, q_negative, self.core
            )
            program = DifferentialProgram(positive=positive, negative=negative)
            self._tiled_energy_spent += program.weight_update_energy
            self._tiled_weight_time += program.weight_update_time
            self.tiled_cache.put(key, program)
            if tel is not None:
                compile_start = tel.clock.now
                tel.clock.advance(program.weight_update_time)
                tel.metrics.counter("cache_misses").inc()
                tel.span(
                    "compile differential",
                    "compile",
                    compile_start,
                    program.weight_update_time,
                    args={"program": key[:12].hex(), "tiles": program.tile_count},
                )
        else:
            self._tiled_energy_saved += program.weight_update_energy
            if tel is not None:
                tel.metrics.counter("cache_hits").inc()
                tel.instant(
                    "cache_hit", "cache", args={"program": key[:12].hex()}
                )
        return program

    # -- model endpoints -----------------------------------------------------
    def compile(
        self,
        model: Model,
        calibration: np.ndarray | None = None,
        label: str | None = None,
    ) -> DeployedModel:
        """Deploy a declarative :class:`Model` onto this session's core.

        Compute layers quantize onto the core's pSRAM format and bind
        to compiled tile engines from the shared program cache (a model
        recompiled with the same quantized weights hits the cache and
        skips the pSRAM re-streaming).  ``calibration`` — a float batch
        of model inputs — range-calibrates every Dense layer whose spec
        leaves ``gain=None``, exactly as
        :class:`~repro.ml.network.PhotonicMLP` does per layer.
        """
        if not isinstance(model, Model):
            raise ConfigurationError(
                f"compile() takes a repro.api.Model, got {type(model).__name__}"
            )
        label = label if label is not None else f"model-{len(self._endpoints)}"
        stages: list[CompiledStage] = []
        for spec in model.layers:
            if isinstance(spec, Dense):
                layer = PhotonicDense(
                    spec.weights,
                    self.core,
                    bias=spec.bias,
                    signed=spec.signed,
                    runtime=True,
                )
                if spec.gain is not None:
                    layer.gain = float(spec.gain)
                self._bind_program(layer, prefix=b"dense:")
                stages.append(CompiledStage(spec=spec, layer=layer))
            elif isinstance(spec, Conv2d):
                layer = PhotonicConv2d(
                    spec.kernels,
                    self.core,
                    stride=spec.stride,
                    gain=spec.gain,
                    runtime=True,
                )
                self._bind_program(layer, prefix=b"conv:")
                stages.append(CompiledStage(spec=spec, layer=layer))
            else:
                stages.append(CompiledStage(spec=spec))
        if calibration is not None:
            self._calibrate(stages, calibration)
        endpoint = DeployedModel(self, model, stages, label)
        self._endpoints.append(endpoint)
        return endpoint

    def _bind_program(
        self, layer: PhotonicDense | PhotonicConv2d, prefix: bytes
    ) -> None:
        """Bind a quantized layer to cached compiled engines (the same
        key scheme as the conv route, so a served kernel bank and a
        compiled model layer share one program)."""
        key = prefix + weight_key(
            np.concatenate([layer.q_positive, layer.q_negative])
        )
        program = self._differential_program(key, layer.q_positive, layer.q_negative)
        layer.attach_engines(program.positive, program.negative)

    def _calibrate(self, stages: list[CompiledStage], batch: ArrayLike) -> None:
        """Propagate a float calibration batch through the stage chain,
        range-calibrating each uncommitted Dense layer on the float
        activations reaching it (the per-layer ADC range calibration
        standard in analog IMC deployments)."""
        current = np.asarray(batch, dtype=float)
        for stage in stages:
            spec, layer = stage.spec, stage.layer
            if isinstance(spec, Dense):
                if current.ndim != 2 or current.shape[1] != layer.in_features:
                    raise ConfigurationError(
                        f"dense layer expects {layer.in_features} features, "
                        f"but the calibration batch reaches it with shape "
                        f"{current.shape}"
                    )
                if spec.gain is None:
                    layer.calibrate_gain(current)
                current = layer.forward_float(current)
            elif isinstance(spec, Conv2d):
                current = np.stack([layer.forward_float(image) for image in current])
            elif isinstance(spec, ReLU):
                current = relu(current)
            elif isinstance(spec, AvgPool):
                current = avg_pool2d(current, spec.size)
            elif isinstance(spec, Flatten):
                current = current.reshape(len(current), -1)
            else:  # a spec added to graph.py but not wired up here
                raise ConfigurationError(
                    f"no calibration rule for layer spec {type(spec).__name__}"
                )

    def _account_model_stage(
        self, layer: PhotonicDense | PhotonicConv2d, samples: int
    ) -> None:
        """Charge one compute stage's analog passes to the ledger: one
        ADC sample period per analog pass per input column, the active
        grid burning tile_count times one tile's power (the same model
        as the conv serving route)."""
        positive, negative = layer.runtime_engines()
        passes = 2 if negative is not None else 1
        tiles = positive.tile_count + (negative.tile_count if negative else 0)
        period = 1.0 / self.performance.sample_rate
        self._model_samples += samples * passes
        self._model_analog_time += samples * period * passes
        self._model_analog_energy += samples * period * self.performance.total_power * tiles
        if self.telemetry is not None:
            self.telemetry.clock.advance(samples * period * passes)

    # -- health: drift, probes, recalibration --------------------------------
    @staticmethod
    def _coerce_drift(drift: DriftLike) -> DriftState | None:
        """Accept None, a ready DriftState, one DriftModel or an
        iterable of models (wrapped into a fresh state)."""
        if drift is None:
            return None
        if isinstance(drift, DriftState):
            return drift
        if isinstance(drift, DriftModel):
            return DriftState((drift,), label="session")
        try:
            models = tuple(drift)
        except TypeError:
            raise ConfigurationError(
                f"drift must be a DriftState, DriftModel(s) or None, "
                f"got {type(drift).__name__}"
            ) from None
        # An empty suite models nothing: same as no drift at all (and
        # keeps recalibration from ever chasing an inactive state).
        if not models:
            return None
        return DriftState(models, label="session")

    #: Bisection probes per ADC code boundary during a ladder re-trim
    #: (full-scale range down to ~uV resolution).
    _LADDER_BISECTION_STEPS = 40

    @property
    def health_history(self) -> tuple[HealthReport, ...]:
        """Every probe check this session ran, in order."""
        return tuple(self._health_history)

    def ensure_monitor(self, policy: HealthPolicy | None = None) -> HealthMonitor:
        """The session's probe monitor, built on first use (golden
        codes freeze at that point; they are pristine regardless of the
        core's age, so a late monitor still measures true drift)."""
        if self.health is None:
            policy = policy if policy is not None else (self.health_policy or HealthPolicy())
            self.health = HealthMonitor(
                self, probes=policy.probes, seed=policy.probe_seed
            )
        return self.health

    def check_health(self, recalibrated: bool = False) -> HealthReport:
        """Replay the probe vectors through the live core and report
        the code walk against the compile-time golden codes."""
        report = self.ensure_monitor().check(recalibrated=recalibrated)
        self._health_history.append(report)
        obs = self.obs
        tel = self.telemetry
        if obs is not None and tel is not None:
            obs.observe_health(tel.clock.now, self.label, report)
        return report

    def age(self, seconds: float) -> None:
        """Model idle wall-clock passing (traffic gaps age the analog
        stack too); a no-op on a session without drift."""
        if seconds < 0.0:
            raise ConfigurationError(f"age must be non-negative, got {seconds}")
        if self.drift is not None:
            self.drift.advance(seconds=seconds)
        if self.telemetry is not None:
            self.telemetry.clock.advance(seconds)

    def recalibrate(self) -> HealthReport | None:
        """Re-trim the core online and invalidate exactly the stale
        programs.

        The re-trim re-bisects every row ADC's code ladder
        (:meth:`~repro.core.eoadc.EoAdc.code_boundaries` probes charged
        to the calibration ledger, the shared
        ``runtime_ladder_cache`` dropped via
        :meth:`~repro.core.tensor_core.PhotonicTensorCore.
        invalidate_ladders`) and programs the measured drift into the
        TIA gain trims — :meth:`DriftState.recalibrate` bumps the
        calibration epoch.  Cached weight programs compiled under an
        older epoch are evicted so hot programs recompile lazily on
        their next request; deployed model endpoints rebind at their
        next flush.  Returns the post-trim verification probe check
        (bit-for-bit against golden on a healthy trim) when a monitor
        exists.
        """
        if self.drift is None or not self.drift.active:
            raise ConfigurationError(
                "this session models no drift; construct it with "
                "drift=[...DriftModel...] to enable recalibration"
            )
        if self.pending:
            self.flush()
        # Modelled re-trim cost: one bisection ladder per row ADC, each
        # boundary probed down the full-scale range, at the converter's
        # own sample rate and energy per conversion.
        adc = self.core.row_adcs[0]
        conversions = (
            self.core.rows * (adc.levels - 1) * self._LADDER_BISECTION_STEPS
        )
        retrim_time = conversions / adc.sample_rate
        self._calibration_time += retrim_time
        self._calibration_energy += conversions * adc.energy_per_conversion
        tel = self.telemetry
        if tel is not None:
            retrim_start = tel.clock.now
            tel.clock.advance(retrim_time)
            tel.metrics.counter("recalibrations").inc()
            tel.span(
                "recalibrate",
                "health",
                retrim_start,
                retrim_time,
                args={
                    "epoch": self.drift.epoch + 1,
                    "ladder_conversions": conversions,
                },
            )
            obs = self.obs
            if obs is not None:
                obs.note_event(
                    tel.clock.now,
                    "recalibrate",
                    {"source": self.label, "epoch": self.drift.epoch + 1},
                )
        self.drift.recalibrate()
        self.core.invalidate_ladders()
        epoch = self.drift.epoch
        self.scheduler.cache.evict_where(
            lambda program: program.engine.calibration_epoch != epoch
        )
        self.tiled_cache.evict_where(
            lambda program: program.calibration_epoch != epoch
        )
        for endpoint in self._endpoints:
            endpoint._needs_rebind = True
        self._recalibrations += 1
        if self.health is not None:
            self.health.recompile()
            return self.check_health(recalibrated=True)
        return None

    def _maybe_run_health(self) -> None:
        """The flush-time health hook: probe on the policy cadence and
        recalibrate past its threshold."""
        policy = self.health_policy
        if policy is None or self._in_maintenance:
            return
        if self._flushes % policy.probe_every:
            return
        self._in_maintenance = True
        try:
            report = self.check_health()
            if (
                policy.recalibrate_threshold is not None
                and report.code_error_rate > policy.recalibrate_threshold
            ):
                self.recalibrate()
        finally:
            self._in_maintenance = False

    def _rebind_endpoint(self, endpoint: DeployedModel) -> None:
        """Re-attach a recalibrated endpoint's compute layers to fresh
        cached programs (misses recompile and are charged as usual)."""
        for stage in endpoint.stages:
            if stage.layer is None:
                continue
            prefix = b"dense:" if isinstance(stage.spec, Dense) else b"conv:"
            self._bind_program(stage.layer, prefix=prefix)
        endpoint._needs_rebind = False

    # -- clocks & deadlines --------------------------------------------------
    def _now(self) -> float:
        """The flush policy's 'now' [s]: the injected clock source when
        one is set, the host wall clock otherwise."""
        clock = self.clock
        if clock is None:
            return wall_clock()
        if isinstance(clock, ModelClock):
            return clock.now
        return float(clock())

    def _stamp_now(self) -> float:
        """The timestamp base ``deadline=`` offsets add onto: the
        injected clock first, else the telemetry clock (so deadlines
        and latency stamps share one timeline), else wall clock."""
        if self.clock is not None:
            return self._now()
        tel = self.telemetry
        if tel is not None:
            return tel.clock.now
        return wall_clock()

    def _resolve_deadline(self, deadline: float | None) -> float | None:
        """Turn a relative ``deadline=`` [s] into an absolute timestamp
        on the session's clock; validates the type here so every submit
        route shares one error message."""
        if deadline is None:
            return None
        if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
            raise ConfigurationError(
                f"deadline must be seconds from now (a number) or None, "
                f"got {deadline!r}"
            )
        return self._stamp_now() + float(deadline)

    def _note_deadline(self, future: Future, deadline_at: float | None) -> None:
        """Track the most urgent pending deadline for the SLO-aware
        flush policy."""
        future._deadline = deadline_at
        if deadline_at is not None and (
            self._earliest_deadline is None
            or deadline_at < self._earliest_deadline
        ):
            self._earliest_deadline = deadline_at

    def _shed_future(self, future: Future) -> None:
        """Fail one request past its deadline: reads raise the typed
        error, the miss counts on this session's ledger."""
        future._fail(
            DeadlineExceededError(
                f"{future.label} shed: its deadline expired before its "
                f"batch could complete (deadline t={future._deadline:.3g} s "
                "on the session clock); re-submit with a later deadline "
                "or a deadline-aware flush policy"
            )
        )
        self._deadline_misses += 1
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("deadline_misses").inc()

    def _fail_expired_ticket(self, future: Future) -> None:
        """Mirror a scheduler-shed ticket onto its future (the
        scheduler already counted the miss in its own stats)."""
        future._fail(
            DeadlineExceededError(
                f"{future.label} shed: its deadline expired before its "
                f"batch could complete (deadline t={future._deadline:.3g} s "
                "on the session clock); re-submit with a later deadline "
                "or a deadline-aware flush policy"
            )
        )

    # -- telemetry -----------------------------------------------------------
    def _note_submit(
        self, future: Future, route: str, tenant: str | None = None
    ) -> None:
        """Stamp one queued request's modelled submit time (telemetry
        only; the uninstrumented path never calls into telemetry)."""
        future._tenant = tenant
        tel = self.telemetry
        if tel is not None:
            if self.clock is not None:
                future._submitted_at = self._now()
            else:
                future._submitted_at = tel.clock.now
            future._route = route
            tel.metrics.counter("requests").inc()

    def _note_resolved(self, future: Future, resolved_at: float | None) -> None:
        """Stamp one resolved request and add its modelled queue-wait
        and end-to-end latency to the open flush window."""
        tel = self.telemetry
        if tel is None:
            return
        future._resolved_at = (
            resolved_at if resolved_at is not None else tel.clock.now
        )
        if future._submitted_at is not None:
            tel.record_request(
                self._flush_started - future._submitted_at,
                future._resolved_at - future._submitted_at,
                label=future._tenant,
            )

    # -- flush ---------------------------------------------------------------
    def _deadline_slack(self, now: float) -> float | None:
        """Seconds until the most urgent pending deadline expires
        (None = no pending deadline, or the policy ignores them —
        skipping the arithmetic keeps the common path free)."""
        if (
            self.flush_policy.deadline_headroom is None
            or self._earliest_deadline is None
        ):
            return None
        return self._earliest_deadline - now

    def _after_submit(self) -> None:
        now = self._now()
        if self._oldest_pending is None:
            self._oldest_pending = now
        if self.flush_policy.should_flush(
            self.pending, now - self._oldest_pending, self._deadline_slack(now)
        ):
            self.flush()

    def poll(self) -> int:
        """Re-check the flush policy's deadline without submitting.

        ``max_delay`` / SLO deadlines are otherwise only evaluated
        inside submit/result calls, so a lone queued request could sit
        past its deadline until the next API call arrives.  Event loops
        call this periodically; it flushes if the policy has tripped
        and returns the resolved count (0 when nothing was due).  Ages
        are measured on the session's clock source — the host wall
        clock by default, the injected ``clock=`` in simulation.
        """
        if self._oldest_pending is None:
            return 0
        now = self._now()
        if self.flush_policy.should_flush(
            self.pending, now - self._oldest_pending, self._deadline_slack(now)
        ):
            return self.flush()
        return 0

    @property
    def next_deadline(self) -> float | None:
        """The most urgent pending absolute deadline (None = no pending
        request carries one); event loops read this to schedule their
        next :meth:`poll`."""
        return self._earliest_deadline

    @property
    def oldest_pending_at(self) -> float | None:
        """Session-clock timestamp the oldest pending request was
        submitted at (None = nothing pending); with ``delay_limit`` the
        flush policy trips at ``oldest_pending_at + delay_limit``, the
        other timestamp event loops schedule :meth:`poll` around."""
        return self._oldest_pending

    def flush(self) -> int:
        """Evaluate every pending request; returns resolved count.

        Requests carrying a ``deadline=`` are shed instead of evaluated
        when their batch's modelled completion time falls past the
        deadline (the estimate uses the *pre-shed* batch size, so a
        shed never resurrects a later request).  The service timeline
        is the telemetry clock when a binding is attached; otherwise it
        starts at the session clock's 'now' and accumulates modelled
        batch/compile times per route.
        """
        resolved_futures: list[Future] = []
        resolved = 0
        period = 1.0 / self.performance.sample_rate
        tel = self.telemetry
        if tel is not None:
            self._flush_started = tel.clock.now
            flush_now = self._flush_started
        else:
            flush_now = self._now()
        service_now = flush_now
        try:
            if tel is None:
                sched = self.scheduler._stats
                sched_before = sched.analog_time + sched.weight_time_spent
            resolved += self.scheduler.flush(now=flush_now)
            if tel is None:
                service_now += (
                    sched.analog_time + sched.weight_time_spent - sched_before
                )
            for future, ticket, out_features in self._native_pending:
                if ticket.result is not None:
                    future._resolve(
                        ticket.result.estimates[:out_features],
                        codes=ticket.result.codes[:out_features],
                    )
                    resolved_futures.append(future)
                    if tel is not None:
                        self._note_resolved(future, ticket.resolved_at)
                elif ticket.expired:
                    self._fail_expired_ticket(future)
            for (key, _), group in self._tiled_pending.items():
                weight_before = self._tiled_weight_time
                engine = self.tiled_cache.get(key)
                if engine is None:
                    # Warm start before cold compile: a persisted grid
                    # restores in one read, still charging the modelled
                    # streaming ledger.
                    restored = self.tiled_cache.read_back(key)
                    if restored is not None:
                        engine = restored
                    else:
                        engine = TiledMatmul(
                            group["weights"],
                            tile_rows=self.rows,
                            tile_columns=self.columns,
                            weight_bits=self.core.weight_bits,
                            adc_bits=self.core.row_adcs[0].bits,
                            technology=self.technology,
                            ladder_cache=self.core.runtime_ladder_cache,
                            drift_state=self.core.drift_state,
                        )
                    self._tiled_energy_spent += engine.weight_update_energy
                    self._tiled_weight_time += engine.weight_update_time
                    self.tiled_cache.put(key, engine)
                    if tel is not None:
                        compile_start = tel.clock.now
                        tel.clock.advance(engine.weight_update_time)
                        tel.metrics.counter("cache_misses").inc()
                        if restored is not None:
                            tel.metrics.counter("warm_starts").inc()
                        tel.span(
                            "warm start tiled" if restored is not None
                            else "compile tiled",
                            "fleet" if restored is not None else "compile",
                            compile_start,
                            engine.weight_update_time,
                            args={"tiles": engine.tile_count},
                        )
                else:
                    self._tiled_energy_saved += engine.weight_update_energy
                    if tel is not None:
                        tel.metrics.counter("cache_hits").inc()
                        tel.instant("cache_hit", "cache")
                if tel is not None:
                    service_now = tel.clock.now
                else:
                    service_now += self._tiled_weight_time - weight_before
                futures = group["futures"]
                if any(f._deadline is not None for f in futures):
                    # Completion estimated from the pre-shed batch size.
                    completion = service_now + len(group["inputs"]) * period
                    live = [
                        index
                        for index, future in enumerate(futures)
                        if future._deadline is None
                        or future._deadline >= completion
                    ]
                    if len(live) < len(futures):
                        survivors = set(live)
                        for index, future in enumerate(futures):
                            if index not in survivors:
                                self._shed_future(future)
                        group["inputs"] = [group["inputs"][i] for i in live]
                        group["futures"] = [futures[i] for i in live]
                        if not group["futures"]:
                            continue
                batch = np.stack(group["inputs"], axis=1)
                gain = None if group["gain"] == "auto" else group["gain"]
                if tel is not None:
                    batch_start = tel.clock.now
                estimates = engine.matmul(batch, gain=gain)
                for index, future in enumerate(group["futures"]):
                    future._resolve(estimates[:, index])
                    resolved_futures.append(future)
                resolved += len(group["futures"])
                # Tiles digitize concurrently: one ADC sample period per
                # input column, at tile_count times one tile's power.
                samples = batch.shape[1]
                power = self.performance.total_power * engine.tile_count
                self._tiled_batches += 1
                self._tiled_samples += samples
                self._tiled_analog_time += samples * period
                self._tiled_analog_energy += samples * period * power
                if tel is not None:
                    tel.clock.advance(samples * period)
                    for future in group["futures"]:
                        self._note_resolved(future, tel.clock.now)
                    tel.metrics.counter("batches").inc()
                    tel.span(
                        f"tiled batch x{samples}",
                        "batch",
                        batch_start,
                        tel.clock.now - batch_start,
                        args={"tiles": engine.tile_count, "columns": samples},
                    )
                else:
                    service_now += samples * period
            for (key, gain), group in self._conv_pending.items():
                if not group["segments"]:
                    # Every request of this bank was shed at submit.
                    continue
                weight_before = self._tiled_weight_time
                program = self._differential_program(
                    key, group["q_positive"], group["q_negative"]
                )
                if tel is not None:
                    service_now = tel.clock.now
                else:
                    service_now += self._tiled_weight_time - weight_before
                futures = group["futures"]
                if any(f._deadline is not None for f in futures):
                    patches_est = sum(
                        encoded.shape[1]
                        for encoded, _, _ in group["segments"]
                    )
                    completion = (
                        service_now + patches_est * period * program.passes
                    )
                    live = [
                        index
                        for index, future in enumerate(futures)
                        if future._deadline is None
                        or future._deadline >= completion
                    ]
                    if len(live) < len(futures):
                        survivors = set(live)
                        for index, future in enumerate(futures):
                            if index not in survivors:
                                self._shed_future(future)
                        group["segments"] = [
                            group["segments"][i] for i in live
                        ]
                        group["futures"] = [futures[i] for i in live]
                        if not group["futures"]:
                            continue
                batch = np.concatenate(
                    [encoded for encoded, _, _ in group["segments"]], axis=1
                )
                if tel is not None:
                    batch_start = tel.clock.now
                raw = program.matmul(batch, gain=gain)
                offset = 0
                for (encoded, scales, weight_scale), future in zip(
                    group["segments"], group["futures"]
                ):
                    count = encoded.shape[1]
                    maps = raw[:, offset : offset + count] * weight_scale * scales
                    future._resolve(maps)
                    resolved_futures.append(future)
                    offset += count
                resolved += len(group["futures"])
                # Each patch column costs one ADC sample period per
                # analog pass (two passes for differential banks); the
                # active grid burns tile_count times one tile's power.
                patches = batch.shape[1]
                power = self.performance.total_power
                self._conv_patches += patches
                self._tiled_batches += 1
                self._tiled_samples += patches * program.passes
                self._tiled_analog_time += patches * period * program.passes
                self._tiled_analog_energy += (
                    patches * period * power * program.tile_count
                )
                if tel is not None:
                    tel.clock.advance(patches * period * program.passes)
                    for future in group["futures"]:
                        self._note_resolved(future, tel.clock.now)
                    tel.metrics.counter("batches").inc()
                    tel.span(
                        f"conv batch x{patches}",
                        "batch",
                        batch_start,
                        tel.clock.now - batch_start,
                        args={"patches": patches, "passes": program.passes},
                    )
                else:
                    service_now += patches * period * program.passes
            for endpoint in self._endpoints:
                if endpoint._queue and endpoint._needs_rebind:
                    self._rebind_endpoint(endpoint)
                if tel is not None:
                    service_now = tel.clock.now
                    drained_from = len(resolved_futures)
                    resolved += endpoint._drain(
                        resolved_futures, now=service_now
                    )
                    for future in resolved_futures[drained_from:]:
                        self._note_resolved(future, tel.clock.now)
                else:
                    resolved += endpoint._drain(
                        resolved_futures, now=service_now
                    )
        finally:
            # Never leave a stale group behind: a failed evaluation must
            # not wedge every subsequent flush.  Futures the failure
            # left unresolved are marked abandoned so their reads say
            # "re-submit" instead of suggesting a futile re-flush.
            for future, _, _ in self._native_pending:
                if not future.done:
                    future._abandon()
            for pending in (self._tiled_pending, self._conv_pending):
                for group in pending.values():
                    for future in group["futures"]:
                        if not future.done:
                            future._abandon()
            for endpoint in self._endpoints:
                for _, future in endpoint._queue:
                    if not future.done:
                        future._abandon()
            self._native_pending.clear()
            self._tiled_pending.clear()
            self._conv_pending.clear()
            for endpoint in self._endpoints:
                endpoint._queue.clear()
            self._oldest_pending = None
            self._earliest_deadline = None
            self._flushes += 1
            report = self._delta_report()
            for future in resolved_futures:
                future._attach_report(report)
        if tel is not None:
            self._emit_flush_telemetry(report, resolved_futures)
        # The flush's modelled serving time and conversions age the
        # core; the policy then probes (and maybe recalibrates) on its
        # cadence.  Skipped when the evaluation raised — a failed flush
        # serves nothing, so it ages nothing.
        if self.drift is not None and self.drift.active:
            self.drift.advance(
                seconds=report.total_latency, inferences=report.samples
            )
        self._maybe_run_health()
        obs = self.obs
        if obs is not None and tel is not None:
            obs.observe_flush(
                tel.clock.now, self.label, report, pending=self.pending
            )
        return resolved

    def _emit_flush_telemetry(
        self, report: RunReport, resolved_futures: list[Future]
    ) -> None:
        """Close the flush on the telemetry side: counters, the flush
        span on the core track, and one lifecycle span per resolved
        request on the requests track."""
        tel = self.telemetry
        if tel is None:
            return
        tel.metrics.counter("flushes").inc()
        tel.metrics.gauge("pending").set(self.pending)
        if tel.trace is None:
            return
        tel.span(
            f"flush #{self._flushes}",
            "flush",
            self._flush_started,
            tel.clock.now - self._flush_started,
            args={
                "requests": report.requests,
                "batches": report.batches,
                "cache_hits": report.cache_hits,
                "cache_misses": report.cache_misses,
                "latency_us": report.total_latency * 1e6,
                "pending": self.pending,
            },
        )
        for future in resolved_futures:
            if future._submitted_at is None or future._resolved_at is None:
                continue
            tel.request_span(
                future.label,
                future._submitted_at,
                future._resolved_at - future._submitted_at,
                args={"route": future._route, "flush": self._flushes},
            )

    # -- reporting -----------------------------------------------------------
    def _totals(self) -> dict:
        stats = self.scheduler.stats()
        return {
            "requests": stats.requests
            + self._tiled_requests
            + self._conv_requests
            + self._model_requests,
            "batches": stats.batches + self._tiled_batches + self._model_batches,
            "samples": stats.samples + self._tiled_samples + self._model_samples,
            "cache_hits": stats.cache_hits + self.tiled_cache.hits,
            "cache_misses": stats.cache_misses + self.tiled_cache.misses,
            "cache_evictions": stats.cache_evictions + self.tiled_cache.evictions,
            "weight_energy_spent": stats.weight_energy_spent + self._tiled_energy_spent,
            "weight_energy_saved": stats.weight_energy_saved + self._tiled_energy_saved,
            "weight_time_spent": stats.weight_time_spent + self._tiled_weight_time,
            "analog_time": stats.analog_time
            + self._tiled_analog_time
            + self._model_analog_time,
            "analog_energy": stats.analog_energy
            + self._tiled_analog_energy
            + self._model_analog_energy,
            "probe_runs": self._probe_runs,
            "probe_vectors": self._probe_vectors,
            "recalibrations": self._recalibrations,
            "calibration_time": self._calibration_time,
            "calibration_energy": self._calibration_energy,
            "deadline_misses": stats.deadline_misses + self._deadline_misses,
        }

    def _delta_report(self) -> RunReport:
        totals = self._totals()
        delta = {
            key: totals[key] - self._last_totals[key] for key in totals
        }
        self._last_totals = totals
        quantiles = (
            self.telemetry.drain_window() if self.telemetry is not None else None
        )
        return RunReport(
            flush_index=self._flushes, latency_quantiles=quantiles, **delta
        )

    def report(self) -> RunReport:
        """Cumulative session accounting as one unified RunReport.

        With a telemetry binding attached, ``latency_quantiles``
        carries the cumulative per-request queue-wait and end-to-end
        modelled latency distributions (histogram-derived quantiles)
        and ``tenant_quantiles`` the same split per request label;
        without one both are None and every other field is bit-for-bit
        what the uninstrumented session reports.
        """
        tel = self.telemetry
        quantiles = tel.latency_quantiles() if tel is not None else None
        tenants = tel.tenant_quantiles() if tel is not None else None
        return RunReport(
            flush_index=self._flushes,
            latency_quantiles=quantiles,
            tenant_quantiles=tenants,
            **self._totals(),
        )

    def server_stats(self) -> ServerStats:
        """The legacy :class:`~repro.runtime.serving.ServerStats` view
        (scheduler + tiled/conv route counters; model endpoint traffic
        is reported only by :meth:`report`)."""
        from ..runtime.serving import ServerStats

        return ServerStats(
            scheduler=self.scheduler.stats(),
            tiled_requests=self._tiled_requests,
            tiled_builds=self.tiled_cache.misses,
            tiled_hits=self.tiled_cache.hits,
            tiled_batches=self._tiled_batches,
            tiled_samples=self._tiled_samples,
            tiled_analog_time=self._tiled_analog_time,
            tiled_analog_energy=self._tiled_analog_energy,
            tiled_weight_energy_spent=self._tiled_energy_spent,
            tiled_weight_energy_saved=self._tiled_energy_saved,
            conv_requests=self._conv_requests,
            conv_patches=self._conv_patches,
        )
