"""Pluggable routing policies: which core slot serves a request?

A :class:`~repro.api.cluster.PhotonicCluster` owns N core slots, each a
full :class:`~repro.api.PhotonicSession` (its own scheduler, program
caches and ladder memo).  A :class:`RoutingPolicy` decides which slot a
routed request lands on — the cluster-level twin of
:class:`~repro.api.policy.FlushPolicy`:

* :meth:`RoutingPolicy.round_robin` — cycle through the cores in
  submit order; perfectly even request spread, blind to weight reuse.
* :meth:`RoutingPolicy.least_loaded` — send each request to the core
  with the fewest pending requests (ties break to the lowest index),
  reading the same load signal
  :class:`~repro.runtime.scheduler.SchedulerStats` snapshots as
  ``pending``.
* :meth:`RoutingPolicy.cache_affinity` — consistent-hash the request's
  weight-program key onto the fleet, so every request for one weight
  program lands on one core: hot programs stay resident in that core's
  LRU caches and the pSRAM streaming energy is paid once per program
  instead of once per (program, core).

Policies are pure deciders: :meth:`select` maps (routing key, per-core
loads, round-robin cursor) to a core index and keeps no state — the
cluster owns the cursor, so one policy object can be shared.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError

#: The recognised policy kinds, in documentation order.
ROUTING_KINDS = ("round_robin", "least_loaded", "cache_affinity")


@dataclass(frozen=True)
class RoutingPolicy:
    """How a cluster spreads requests over its cores; see the module
    docstring.  Build with the named constructors."""

    kind: str = "round_robin"

    def __post_init__(self) -> None:
        if self.kind not in ROUTING_KINDS:
            raise ConfigurationError(
                f"unknown routing policy {self.kind!r}; "
                f"choose from {list(ROUTING_KINDS)}"
            )

    # -- constructors --------------------------------------------------------
    @classmethod
    def round_robin(cls) -> "RoutingPolicy":
        """Cycle through the cores in submit order."""
        return cls(kind="round_robin")

    @classmethod
    def least_loaded(cls) -> "RoutingPolicy":
        """Route to the core with the fewest pending requests."""
        return cls(kind="least_loaded")

    @classmethod
    def cache_affinity(cls) -> "RoutingPolicy":
        """Consistent-hash weight-program keys onto cores so hot
        programs stay cache-resident on one core."""
        return cls(kind="cache_affinity")

    # -- decision ------------------------------------------------------------
    @property
    def needs_key(self) -> bool:
        """Whether :meth:`select` reads the routing key — lets callers
        skip serializing a weight program the policy would ignore."""
        return self.kind == "cache_affinity"

    @property
    def needs_loads(self) -> bool:
        """Whether :meth:`select` reads the load values (every policy
        still needs the list's *length* for the fleet size)."""
        return self.kind == "least_loaded"

    @staticmethod
    def _hash_slot(key: bytes, cores: int) -> int:
        """Stable hash of a program key onto ``cores`` slots.  blake2b
        rather than ``hash()``: Python string hashing is salted per
        process, and affinity must survive restarts so a replayed trace
        lands on the same cores."""
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % cores

    def select(self, key: bytes | None, loads: Sequence[int], cursor: int) -> int:
        """The core index for one request.

        ``key`` is the request's weight-program routing key (None for
        traffic with no program identity, which falls back to the
        round-robin cursor under every policy), ``loads`` the per-core
        pending request counts, ``cursor`` the cluster's monotonically
        increasing submit counter.
        """
        cores = len(loads)
        if cores < 1:
            raise ConfigurationError("routing needs at least one core")
        if cores == 1:
            return 0
        if self.kind == "least_loaded":
            return min(range(cores), key=lambda index: (loads[index], index))
        if self.kind == "cache_affinity" and key is not None:
            return self._hash_slot(key, cores)
        return cursor % cores

    def describe(self) -> str:
        return self.kind
