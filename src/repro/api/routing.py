"""Pluggable routing policies: which core slot serves a request?

A :class:`~repro.api.cluster.PhotonicCluster` owns N core slots, each a
full :class:`~repro.api.PhotonicSession` (its own scheduler, program
caches and ladder memo).  A :class:`RoutingPolicy` decides which slot a
routed request lands on — the cluster-level twin of
:class:`~repro.api.policy.FlushPolicy`:

* :meth:`RoutingPolicy.round_robin` — cycle through the cores in
  submit order; perfectly even request spread, blind to weight reuse.
* :meth:`RoutingPolicy.least_loaded` — send each request to the core
  with the fewest pending requests (ties break to the lowest index),
  reading the same load signal
  :class:`~repro.runtime.scheduler.SchedulerStats` snapshots as
  ``pending``.
* :meth:`RoutingPolicy.cache_affinity` — consistent-hash the request's
  weight-program key onto the fleet, so every request for one weight
  program lands on one core: hot programs stay resident in that core's
  LRU caches and the pSRAM streaming energy is paid once per program
  instead of once per (program, core).

Policies are pure deciders: :meth:`select` maps (routing key, per-core
loads, round-robin cursor) to a core index and keeps no state — the
cluster owns the cursor, so one policy object can be shared.

:class:`HashRing` is the stateful companion for *elastic* fleets: a
consistent-hash ring over the current member set that the cluster
rebuilds **incrementally** on membership change.  Plain
``hash(key) % cores`` re-homes almost every key when ``cores``
changes; the ring moves only ~``1/(m+1)`` of the keys when a fleet
grows from ``m`` to ``m+1`` cores, so hot programs keep their
cache-resident homes across a scale-up.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Collection, Iterable, Sequence

from ..errors import ConfigurationError

#: The recognised policy kinds, in documentation order.
ROUTING_KINDS = ("round_robin", "least_loaded", "cache_affinity")


@dataclass(frozen=True)
class RoutingPolicy:
    """How a cluster spreads requests over its cores; see the module
    docstring.  Build with the named constructors."""

    kind: str = "round_robin"

    def __post_init__(self) -> None:
        if self.kind not in ROUTING_KINDS:
            raise ConfigurationError(
                f"unknown routing policy {self.kind!r}; "
                f"choose from {list(ROUTING_KINDS)}"
            )

    # -- constructors --------------------------------------------------------
    @classmethod
    def round_robin(cls) -> "RoutingPolicy":
        """Cycle through the cores in submit order."""
        return cls(kind="round_robin")

    @classmethod
    def least_loaded(cls) -> "RoutingPolicy":
        """Route to the core with the fewest pending requests."""
        return cls(kind="least_loaded")

    @classmethod
    def cache_affinity(cls) -> "RoutingPolicy":
        """Consistent-hash weight-program keys onto cores so hot
        programs stay cache-resident on one core."""
        return cls(kind="cache_affinity")

    # -- decision ------------------------------------------------------------
    @property
    def needs_key(self) -> bool:
        """Whether :meth:`select` reads the routing key — lets callers
        skip serializing a weight program the policy would ignore."""
        return self.kind == "cache_affinity"

    @property
    def needs_loads(self) -> bool:
        """Whether :meth:`select` reads the load values (every policy
        still needs the list's *length* for the fleet size)."""
        return self.kind == "least_loaded"

    @staticmethod
    def _hash_slot(key: bytes, cores: int) -> int:
        """Stable hash of a program key onto ``cores`` slots.  blake2b
        rather than ``hash()``: Python string hashing is salted per
        process, and affinity must survive restarts so a replayed trace
        lands on the same cores."""
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % cores

    def select(self, key: bytes | None, loads: Sequence[int], cursor: int) -> int:
        """The core index for one request.

        ``key`` is the request's weight-program routing key (None for
        traffic with no program identity, which falls back to the
        round-robin cursor under every policy), ``loads`` the per-core
        pending request counts, ``cursor`` the cluster's monotonically
        increasing submit counter.
        """
        cores = len(loads)
        if cores < 1:
            raise ConfigurationError("routing needs at least one core")
        if cores == 1:
            return 0
        if self.kind == "least_loaded":
            return min(range(cores), key=lambda index: (loads[index], index))
        if self.kind == "cache_affinity" and key is not None:
            return self._hash_slot(key, cores)
        return cursor % cores

    def describe(self) -> str:
        return self.kind


class HashRing:
    """Consistent-hash ring over an elastic member set.

    Each member owns ``replicas`` pseudo-random points on a 64-bit
    ring (blake2b of ``"member:replica"`` — salted ``hash()`` would
    re-home every key on restart); a key routes to the first member
    point clockwise from the key's own hash.  :meth:`add` and
    :meth:`remove` insert/delete only *that member's* points, so
    membership changes are ``O(replicas · log n)`` — the ring is never
    rebuilt from scratch, and keys whose nearest point is unchanged
    keep their placement.

    ``replicas`` trades placement evenness against ring size: 64
    points per member keeps the per-member load spread within a few
    percent for fleets of tens of cores while membership updates stay
    microsecond-cheap.
    """

    def __init__(self, members: Iterable[int] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ConfigurationError(
                f"hash ring needs >= 1 replica point per member, got {replicas}"
            )
        self.replicas = int(replicas)
        #: Sorted ``(point, member)`` pairs — the ring itself.
        self._points: list[tuple[int, int]] = []
        self._members: set[int] = set()
        for member in members:
            self.add(member)

    @staticmethod
    def _hash(data: bytes) -> int:
        digest = hashlib.blake2b(data, digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _member_points(self, member: int) -> list[tuple[int, int]]:
        return [
            (self._hash(f"{member}:{replica}".encode()), member)
            for replica in range(self.replicas)
        ]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: int) -> bool:
        return member in self._members

    @property
    def members(self) -> tuple[int, ...]:
        """The current member set, sorted."""
        return tuple(sorted(self._members))

    def add(self, member: int) -> None:
        """Join ``member``: inserts only its own points (incremental)."""
        if member in self._members:
            return
        self._members.add(member)
        for point in self._member_points(member):
            bisect.insort(self._points, point)

    def remove(self, member: int) -> None:
        """Leave ``member``: deletes only its own points (incremental)."""
        if member not in self._members:
            return
        self._members.discard(member)
        for point in self._member_points(member):
            index = bisect.bisect_left(self._points, point)
            if index < len(self._points) and self._points[index] == point:
                del self._points[index]

    def lookup(self, key: bytes, allowed: Collection[int] | None = None) -> int:
        """The member owning ``key``: first point clockwise from the
        key's hash, wrapping at the top of the ring.

        ``allowed`` restricts the answer to a subset of members (e.g.
        the active, capable cores) *without* mutating the ring — the
        walk skips disallowed points, so a key whose home core is
        temporarily drained falls to the next point clockwise and
        returns home when the core comes back.
        """
        if not self._points:
            raise ConfigurationError("hash ring has no members")
        eligible = self._members if allowed is None else self._members.intersection(allowed)
        if not eligible:
            raise ConfigurationError(
                f"hash ring: no allowed member among {sorted(self._members)}"
            )
        start = bisect.bisect_right(self._points, (self._hash(key), 2**64))
        total = len(self._points)
        for step in range(total):
            _, member = self._points[(start + step) % total]
            if member in eligible:
                return member
        raise ConfigurationError("hash ring walk found no member")  # pragma: no cover
