"""Futures and the unified per-flush report.

Every ``submit`` on the session (raw dense, conv, or a deployed model
endpoint) returns a :class:`Future` — a handle that resolves at the
flush evaluating its request.  ``result()`` is the blocking read: if
the request is still pending it triggers the session flush itself, so
callers never hand-place ``flush()`` calls.  The non-blocking
accessors (``value``, ``codes``, ``report``) raise
:class:`~repro.errors.PendingFlushError` naming the pending flush
instead of returning ``None``.

Each flush also produces one :class:`RunReport` — the unified
accounting record (requests, batches, cache behaviour, modelled analog
energy/latency) every future of that flush carries, replacing the
scattered per-path stats objects of the legacy server.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import PendingFlushError
from ..telemetry.export import ReportExport

if TYPE_CHECKING:
    from numpy.typing import ArrayLike

    from .session import PhotonicSession


@dataclass(frozen=True)
class RunReport(ReportExport):
    """Unified accounting of one flush (or of a whole session).

    Counters are deltas over the covered window: the per-flush report a
    :class:`Future` carries covers exactly the requests resolved by
    that flush; :meth:`repro.api.PhotonicSession.report` returns the
    cumulative session totals in the same shape.  ``to_dict()`` /
    ``to_json()`` (shared by every report type, see
    :class:`repro.telemetry.ReportExport`) export it JSON-ready.
    """

    #: 1-based index of the flush this report covers (or the flush
    #: count so far, for a cumulative session report).
    flush_index: int
    requests: int
    batches: int
    #: Sequential ADC sample slots consumed (per-pass, all paths).
    samples: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    #: pSRAM weight-streaming energy [J] spent on compiles / avoided by hits.
    weight_energy_spent: float
    weight_energy_saved: float
    #: Weight streaming time actually spent [s].
    weight_time_spent: float
    #: Modelled analog compute time [s] and wall-plug energy [J].
    analog_time: float
    analog_energy: float
    #: Health-loop traffic: probe checks run / probe vectors replayed
    #: (see :class:`repro.health.HealthMonitor`).
    probe_runs: int = 0
    probe_vectors: int = 0
    #: Online recalibrations performed (ladder re-bisection + re-trim).
    recalibrations: int = 0
    #: Modelled time [s] and wall-plug energy [J] spent keeping the
    #: core calibrated (probe replays, ladder re-bisection, probe
    #: program streaming) — kept apart from the serving ledger so the
    #: calibration overhead stays attributable.
    calibration_time: float = 0.0
    calibration_energy: float = 0.0
    #: Requests shed because their ``deadline=`` expired — at submit
    #: (already past) or at flush (the coalesced batch's modelled
    #: completion fell past the deadline); see
    #: :class:`~repro.errors.DeadlineExceededError`.
    deadline_misses: int = 0
    #: Modelled per-request latency distributions of the covered
    #: window — ``{"queue_wait": {...}, "end_to_end": {...}}``, each a
    #: ``{"count", "mean", "max", "p50", "p95", "p99", "p999"}``
    #: summary in seconds — populated only when the session carries a
    #: :class:`repro.telemetry.Telemetry` binding (None otherwise, so
    #: uninstrumented reports stay bit-for-bit identical).
    latency_quantiles: dict | None = None
    #: The same latency split per request label —
    #: ``{tenant: {"queue_wait": {...}, "service": {...}}}`` — again
    #: only with a telemetry binding attached (None otherwise).  Like
    #: ``latency_quantiles``, quantile summaries are not additive, so
    #: :meth:`combined` leaves it None; the fleet view merges at the
    #: histogram level (:attr:`repro.api.ClusterReport.tenant_quantiles`).
    tenant_quantiles: dict | None = None

    @classmethod
    def combined(cls, reports: Iterable[RunReport]) -> "RunReport":
        """Sum a sequence of reports into one fleet-level record.

        Every counter and ledger is additive across independent cores;
        ``flush_index`` sums too, becoming the total flush count of the
        covered fleet (one core in → that core's report back out; an
        empty sequence combines to an all-zero report).  Quantile
        summaries are *not* additive, so ``latency_quantiles`` stays
        None here — fleet quantiles merge at the histogram level in
        :attr:`repro.api.ClusterReport.latency_quantiles`.
        """
        reports = list(reports)
        return cls(
            flush_index=sum(report.flush_index for report in reports),
            requests=sum(report.requests for report in reports),
            batches=sum(report.batches for report in reports),
            samples=sum(report.samples for report in reports),
            cache_hits=sum(report.cache_hits for report in reports),
            cache_misses=sum(report.cache_misses for report in reports),
            cache_evictions=sum(report.cache_evictions for report in reports),
            weight_energy_spent=sum(r.weight_energy_spent for r in reports),
            weight_energy_saved=sum(r.weight_energy_saved for r in reports),
            weight_time_spent=sum(r.weight_time_spent for r in reports),
            analog_time=sum(report.analog_time for report in reports),
            analog_energy=sum(report.analog_energy for report in reports),
            probe_runs=sum(report.probe_runs for report in reports),
            probe_vectors=sum(report.probe_vectors for report in reports),
            recalibrations=sum(report.recalibrations for report in reports),
            calibration_time=sum(r.calibration_time for r in reports),
            calibration_energy=sum(r.calibration_energy for r in reports),
            deadline_misses=sum(report.deadline_misses for report in reports),
        )

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_latency(self) -> float:
        """Modelled serving time [s]: weight streaming + analog compute."""
        return self.weight_time_spent + self.analog_time

    @property
    def total_energy(self) -> float:
        """Modelled serving energy [J]: weight streaming + analog compute."""
        return self.weight_energy_spent + self.analog_energy

    def lines(self) -> list[str]:
        lines = [
            f"flush #{self.flush_index}: {self.requests} requests "
            f"in {self.batches} batches ({self.samples} ADC sample slots)",
            f"program cache     : {self.cache_hits} hits / "
            f"{self.cache_misses} misses ({self.cache_hit_rate:.0%} hit rate, "
            f"{self.cache_evictions} evictions)",
            f"weight energy     : {self.weight_energy_spent * 1e12:.1f} pJ spent, "
            f"{self.weight_energy_saved * 1e12:.1f} pJ saved by caching",
            f"analog latency    : {self.analog_time * 1e6:.3f} us modelled "
            f"({self.analog_energy * 1e9:.2f} nJ)",
        ]
        if self.probe_runs or self.recalibrations:
            lines.append(
                f"health            : {self.probe_runs} probe runs "
                f"({self.probe_vectors} vectors), "
                f"{self.recalibrations} recalibrations, "
                f"{self.calibration_time * 1e6:.3f} us / "
                f"{self.calibration_energy * 1e9:.2f} nJ calibration overhead"
            )
        if self.deadline_misses:
            lines.append(
                f"deadlines         : {self.deadline_misses} requests shed "
                f"past their deadline"
            )
        if self.latency_quantiles is not None:
            e2e = self.latency_quantiles["end_to_end"]
            lines.append(
                f"end-to-end        : p50 {e2e['p50'] * 1e6:.3f} us, "
                f"p99 {e2e['p99'] * 1e6:.3f} us, "
                f"p999 {e2e['p999'] * 1e6:.3f} us modelled "
                f"({e2e['count']} requests)"
            )
        return lines

    def __str__(self) -> str:
        return "\n".join(self.lines())


class Future:
    """Handle for one submitted request; resolved by a session flush.

    ``result()`` blocks (flushing the session if needed) and returns
    the payload: dequantized W @ x estimates for dense requests,
    (num_kernels, out_rows, out_cols) feature maps for conv requests,
    model outputs for endpoint submits.  ``codes`` additionally carries
    the raw ADC codes where the path produces a single tile's worth
    (the native dense route); tiled and conv paths accumulate partial
    sums digitally, so only dequantized estimates exist there.
    """

    __slots__ = (
        "_session",
        "label",
        "flush_index",
        "shape",
        "_value",
        "_codes",
        "_report",
        "_done",
        "_abandoned",
        "_submitted_at",
        "_resolved_at",
        "_route",
        "_error",
        "_deadline",
        "_tenant",
    )

    def __init__(
        self,
        session: PhotonicSession,
        label: str,
        flush_index: int,
        shape: tuple | None = None,
    ) -> None:
        self._session = session
        #: Human-readable request label, used in pending-read errors.
        self.label = label
        #: The 1-based flush that will resolve this future.
        self.flush_index = flush_index
        #: Expected payload shape where known ahead of time (conv route).
        self.shape = shape
        self._value: np.ndarray | None = None
        self._codes: np.ndarray | None = None
        self._report: RunReport | None = None
        self._done = False
        self._abandoned = False
        #: Modelled-clock submit/resolve timestamps [s] and the request
        #: route — stamped only when the session carries a telemetry
        #: binding, read back for request lifecycle spans.
        self._submitted_at: float | None = None
        self._resolved_at: float | None = None
        self._route: str | None = None
        #: The typed error a shed request raises on every read
        #: (:class:`~repro.errors.DeadlineExceededError`); None while
        #: pending or when resolved with a value.
        self._error: Exception | None = None
        #: Absolute deadline [s] on the session's clock (None = best
        #: effort) and the submitting tenant's label (traffic engine).
        self._deadline: float | None = None
        self._tenant: str | None = None

    # -- resolution (session-internal) ---------------------------------------
    def _resolve(self, value: ArrayLike, codes: ArrayLike | None = None) -> None:
        self._value = np.asarray(value, dtype=float)
        if self.shape is not None:
            self._value = self._value.reshape(self.shape)
        if codes is not None:
            self._codes = np.asarray(codes, dtype=int)
        self._done = True

    def _attach_report(self, report: RunReport) -> None:
        self._report = report

    def _fail(self, error: Exception) -> None:
        """Finalize this future as shed: ``done`` turns True (the flush
        is over for it) but every payload read raises ``error``."""
        self._error = error
        self._done = True

    def _abandon(self) -> None:
        """Mark this future dropped by a failed flush, so later reads
        say 're-submit' instead of suggesting a retry that cannot
        succeed (the queues were cleared)."""
        self._abandoned = True

    # -- the caller surface --------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def abandoned(self) -> bool:
        """True when a failed flush dropped this request unresolved."""
        return self._abandoned

    @property
    def expired(self) -> bool:
        """True when this request was shed past its ``deadline=`` —
        payload reads then raise
        :class:`~repro.errors.DeadlineExceededError`."""
        return self._error is not None

    def _pending_error(self, what: str) -> PendingFlushError:
        if self._abandoned:
            return PendingFlushError(
                f"{what} of {self.label} was dropped: flush "
                f"#{self.flush_index} failed before resolving it and its "
                "queue was cleared; re-submit the request"
            )
        return PendingFlushError(
            f"{what} of {self.label} is not flushed yet — it is queued for "
            f"flush #{self.flush_index}; call result() or "
            "PhotonicSession.flush() to resolve it"
        )

    def result(self, flush: bool = True) -> np.ndarray:
        """The resolved payload, flushing the session first if needed.

        ``flush=False`` turns off the auto-flush and raises
        :class:`~repro.errors.PendingFlushError` when still pending.
        """
        if not self._done and flush and not self._abandoned:
            self._session.flush()
        if self._error is not None:
            raise self._error
        if not self._done:
            raise self._pending_error("result")
        return self._value

    @property
    def value(self) -> np.ndarray:
        """Non-blocking payload read; raises
        :class:`~repro.errors.PendingFlushError` while pending."""
        if self._error is not None:
            raise self._error
        if not self._done:
            raise self._pending_error("value")
        return self._value

    @property
    def codes(self) -> np.ndarray | None:
        """Raw ADC codes (native dense route only; None elsewhere)."""
        if self._error is not None:
            raise self._error
        if not self._done:
            raise self._pending_error("codes")
        return self._codes

    @property
    def report(self) -> RunReport:
        """The :class:`RunReport` of the flush that resolved this future."""
        if self._report is None:
            if self._error is not None:
                raise self._error
            raise self._pending_error("report")
        return self._report

    def __repr__(self) -> str:
        if self._error is not None:
            state = "expired"
        elif self._done:
            state = "done"
        else:
            state = f"pending flush #{self.flush_index}"
        return f"<Future {self.label}: {state}>"
