"""Optical signal containers.

The architecture reproduced here never recombines light interferometrically
(no MZIs), so signals between components are represented *incoherently* as
per-wavelength powers.  Phase is handled analytically inside each ring's
transfer function.  This matches the paper's own assumption that WDM
channel results combine by linear photocurrent summation.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from ..errors import PhotonicsError


class WDMSignal:
    """A set of optical carriers, each with a wavelength [m] and power [W].

    Instances behave like immutable value objects: arithmetic helpers
    return new signals.  Wavelengths are kept sorted and unique; merging
    signals adds powers of coincident carriers.
    """

    #: Wavelengths closer than this [m] are treated as the same carrier.
    WAVELENGTH_TOLERANCE = 1e-15

    def __init__(self, wavelengths: Iterable[float], powers: Iterable[float]) -> None:
        wl = np.atleast_1d(np.asarray(wavelengths, dtype=float))
        pw = np.atleast_1d(np.asarray(powers, dtype=float))
        if wl.shape != pw.shape:
            raise PhotonicsError(
                f"wavelengths and powers must match in shape, got {wl.shape} vs {pw.shape}"
            )
        if np.any(pw < 0.0):
            raise PhotonicsError("optical powers must be non-negative")
        if np.any(wl <= 0.0):
            raise PhotonicsError("wavelengths must be positive")
        order = np.argsort(wl)
        self._wavelengths = wl[order]
        self._powers = pw[order]

    @classmethod
    def single(cls, wavelength: float, power: float) -> "WDMSignal":
        """A single-carrier signal."""
        return cls([wavelength], [power])

    @classmethod
    def dark(cls, wavelengths: Iterable[float]) -> "WDMSignal":
        """A signal with the given carriers all at zero power."""
        wl = np.asarray(list(wavelengths), dtype=float)
        return cls(wl, np.zeros_like(wl))

    @classmethod
    def from_mapping(cls, channels: Mapping[float, float]) -> "WDMSignal":
        """Build from a {wavelength: power} mapping."""
        return cls(list(channels.keys()), list(channels.values()))

    @property
    def wavelengths(self) -> np.ndarray:
        return self._wavelengths.copy()

    @property
    def powers(self) -> np.ndarray:
        return self._powers.copy()

    @property
    def num_channels(self) -> int:
        return int(self._wavelengths.size)

    @property
    def total_power(self) -> float:
        """Sum of carrier powers [W]."""
        return float(self._powers.sum())

    def power_at(self, wavelength: float) -> float:
        """Power [W] of the carrier at ``wavelength`` (0 if absent)."""
        mask = np.abs(self._wavelengths - wavelength) <= self.WAVELENGTH_TOLERANCE
        return float(self._powers[mask].sum())

    def scaled(self, factor) -> "WDMSignal":
        """Return a copy with powers multiplied by ``factor``.

        ``factor`` may be a scalar or an array matching the channel count
        (a per-wavelength transmission vector).
        """
        factor = np.asarray(factor, dtype=float)
        new_powers = self._powers * factor
        if np.any(new_powers < 0.0):
            raise PhotonicsError("transmission factors must be non-negative")
        return WDMSignal(self._wavelengths, new_powers)

    def attenuated_db(self, loss_db: float) -> "WDMSignal":
        """Return a copy attenuated by ``loss_db`` (positive = loss)."""
        return self.scaled(10.0 ** (-loss_db / 10.0))

    def merged_with(self, other: "WDMSignal") -> "WDMSignal":
        """Combine two signals, adding powers on coincident carriers."""
        return merge_signals([self, other])

    def as_mapping(self) -> dict[float, float]:
        """Return {wavelength: power}."""
        return {float(w): float(p) for w, p in zip(self._wavelengths, self._powers)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        channels = ", ".join(
            f"{w * 1e9:.3f}nm:{p * 1e6:.3f}uW" for w, p in zip(self._wavelengths, self._powers)
        )
        return f"WDMSignal({channels})"


def merge_signals(signals: Iterable[WDMSignal]) -> WDMSignal:
    """Sum an iterable of signals into one, merging coincident carriers.

    Carriers within :attr:`WDMSignal.WAVELENGTH_TOLERANCE` of each other
    are treated as one wavelength and their powers add (incoherent
    summation, the paper's photodiode-summation assumption).
    """
    signals = list(signals)
    if not signals:
        raise PhotonicsError("cannot merge an empty collection of signals")
    wavelengths = np.concatenate([s._wavelengths for s in signals])
    powers = np.concatenate([s._powers for s in signals])
    order = np.argsort(wavelengths)
    wavelengths = wavelengths[order]
    powers = powers[order]

    merged_wl: list[float] = []
    merged_pw: list[float] = []
    for wl, pw in zip(wavelengths, powers):
        if merged_wl and abs(wl - merged_wl[-1]) <= WDMSignal.WAVELENGTH_TOLERANCE:
            merged_pw[-1] += pw
        else:
            merged_wl.append(float(wl))
            merged_pw.append(float(pw))
    return WDMSignal(merged_wl, merged_pw)
