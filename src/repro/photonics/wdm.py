"""WDM channel planning and inter-channel crosstalk analysis.

Section III of the paper sizes the channel count from the ring FSR and
channel spacing (9.36 nm FSR / 2.33 nm spacing -> 4 usable channels).
:func:`crosstalk_matrix` quantifies how much each weight ring perturbs
its neighbours' wavelengths — the effect the paper folds in by keeping
all rings in the testbench while simulating one channel at a time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ChannelPlan:
    """An equally spaced WDM channel grid."""

    base_wavelength: float
    spacing: float
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"channel plan needs >= 1 channel, got {self.count}")
        if self.spacing <= 0.0:
            raise ConfigurationError(f"channel spacing must be positive, got {self.spacing}")

    @property
    def wavelengths(self) -> np.ndarray:
        """Channel wavelengths [m], ascending."""
        return self.base_wavelength + self.spacing * np.arange(self.count)

    def wavelength(self, index: int) -> float:
        """Wavelength [m] of channel ``index``."""
        if not 0 <= index < self.count:
            raise ConfigurationError(f"channel index {index} outside 0..{self.count - 1}")
        return self.base_wavelength + self.spacing * index

    def span(self) -> float:
        """Spectral width from first to last channel [m]."""
        return self.spacing * (self.count - 1)

    def fits_in_fsr(self, fsr: float) -> bool:
        """True when all channels (plus one guard spacing) fit in one FSR,
        so the periodic ring response cannot alias channels."""
        return self.spacing * self.count <= fsr


def usable_channels(fsr: float, spacing: float) -> int:
    """Number of channels usable within one FSR at a given spacing.

    The paper's example: a 9 nm FSR with 2 nm spacing supports 4.
    """
    if fsr <= 0.0 or spacing <= 0.0:
        raise ConfigurationError("FSR and spacing must be positive")
    return int(math.floor(fsr / spacing))


def crosstalk_matrix(rings, plan: ChannelPlan) -> np.ndarray:
    """Thru transmission of every ring at every channel wavelength.

    ``rings`` is a sequence of ring models (one per channel, in channel
    order) with their drives already set.  Entry [i, j] is ring j's
    thru-port transmission at channel i's wavelength: diagonal entries
    are the intended modulation, off-diagonal entries the parasitic
    attenuation of neighbouring channels (inter-channel crosstalk).
    """
    rings = list(rings)
    if len(rings) != plan.count:
        raise ConfigurationError(
            f"need one ring per channel: {len(rings)} rings vs {plan.count} channels"
        )
    wavelengths = plan.wavelengths
    matrix = np.empty((plan.count, plan.count), dtype=float)
    for j, ring in enumerate(rings):
        matrix[:, j] = np.asarray(ring.thru_transmission(wavelengths), dtype=float)
    return matrix


def worst_case_crosstalk_db(matrix: np.ndarray) -> float:
    """Largest off-diagonal attenuation [dB] in a crosstalk matrix.

    0 dB means a neighbour ring is fully transparent at this channel;
    more negative numbers mean stronger parasitic attenuation.
    """
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError("crosstalk matrix must be square")
    off_diagonal = matrix[~np.eye(matrix.shape[0], dtype=bool)]
    if off_diagonal.size == 0:
        return 0.0
    return float(10.0 * np.log10(off_diagonal.min()))
