"""Silicon-photonics device substrate.

Analytic models of the fabrication-friendly components the paper builds
on: waveguides, directional couplers and power splitters, microring
resonators with pn-junction and thermal tuning, photodiodes, absorbers,
lasers and frequency combs, WDM channel planning, and a feed-forward
photonic-circuit evaluator.
"""

from .absorber import Absorber
from .coupler import BinaryScaledSplitterTree, DirectionalCoupler, PowerSplitter
from .laser import CWLaser, FrequencyComb, OpticalPulse
from .modulator import PredistortedEncoder, RingModulator
from .mrr import AddDropMRR, AllPassMRR
from .photodiode import BalancedPhotodiodePair, Photodiode
from .pn_junction import (
    DepletionTuner,
    InjectionTuner,
    soref_bennett_delta_alpha,
    soref_bennett_delta_n,
)
from .signal import WDMSignal, merge_signals
from .thermal import Heater, ThermalTuner, WavelengthLocker
from .waveguide import Waveguide
from .wdm import ChannelPlan, crosstalk_matrix, usable_channels
from .network import PhotonicCircuit

__all__ = [
    "Absorber",
    "AddDropMRR",
    "AllPassMRR",
    "BalancedPhotodiodePair",
    "BinaryScaledSplitterTree",
    "ChannelPlan",
    "CWLaser",
    "DepletionTuner",
    "DirectionalCoupler",
    "FrequencyComb",
    "Heater",
    "InjectionTuner",
    "merge_signals",
    "OpticalPulse",
    "Photodiode",
    "PhotonicCircuit",
    "PowerSplitter",
    "PredistortedEncoder",
    "RingModulator",
    "soref_bennett_delta_alpha",
    "soref_bennett_delta_n",
    "ThermalTuner",
    "usable_channels",
    "Waveguide",
    "WavelengthLocker",
    "WDMSignal",
    "crosstalk_matrix",
]
