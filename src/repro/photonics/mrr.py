"""Microring resonator transfer models (all-pass and add-drop).

These are the exact single-ring transfer functions (Bogaerts et al.,
"Silicon microring resonators", Laser Photonics Rev. 2012) driven by a
linearized round-trip phase anchored at the designed resonance:

    phi(lambda) = 2*pi*m - 2*pi*n_g*L*(lambda - lambda_res)/lambda_ref^2

which reproduces resonances repeating exactly at the FSR.  The designed
resonance itself moves with the junction tuner (depletion or injection),
thermal drift, heater power, the PDK ring-length adjustment (Fig. 6) and
a per-device trim residual.

Power quantities only are exposed: the architecture never recombines
ring outputs coherently (see ``photonics.signal``).
"""

from __future__ import annotations

import math

import numpy as np

from ..config import (
    CouplerSpec,
    RingSpec,
    ThermalSpec,
    WaveguideSpec,
    photon_lifetime,
    ring_fsr,
)
from ..errors import ConfigurationError
from .pn_junction import DepletionTuner, InjectionTuner
from .signal import WDMSignal
from .thermal import ThermalTuner


class _RingBase:
    """Shared geometry, tuning and phase machinery for ring models."""

    def __init__(
        self,
        spec: RingSpec,
        design_wavelength: float,
        design_voltage: float = 0.0,
        waveguide: WaveguideSpec | None = None,
        coupler: CouplerSpec | None = None,
        tuner: DepletionTuner | InjectionTuner | None = None,
        thermal: ThermalSpec | None = None,
        length_adjust: float = 0.0,
        trim_error: float = 0.0,
        label: str = "",
    ) -> None:
        if design_wavelength <= 0.0:
            raise ConfigurationError("design wavelength must be positive")
        if length_adjust < 0.0:
            raise ConfigurationError("ring length adjustment must be non-negative")
        self.spec = spec
        self.waveguide = waveguide if waveguide is not None else WaveguideSpec()
        self.coupler = coupler if coupler is not None else CouplerSpec()
        self.tuner = tuner
        self.thermal = ThermalTuner(thermal)
        self.design_wavelength = design_wavelength
        self.design_voltage = design_voltage
        self.length_adjust = length_adjust
        self.trim_error = trim_error
        self.label = label

        self._voltage = design_voltage
        self.delta_temperature = 0.0
        self.heater_shift = 0.0

    # -- geometry ----------------------------------------------------------
    @property
    def circumference(self) -> float:
        """Physical round-trip length [m], including the adjust section."""
        return self.spec.circumference + self.length_adjust

    @property
    def resonance_order(self) -> int:
        """Longitudinal mode number m at the design wavelength."""
        return round(self.waveguide.effective_index * self.circumference / self.design_wavelength)

    @property
    def fsr(self) -> float:
        """Free spectral range [m] near the design wavelength."""
        return ring_fsr(self.design_wavelength, self.waveguide.group_index, self.circumference)

    @property
    def single_pass_amplitude(self) -> float:
        """Field amplitude surviving one round trip."""
        loss_db = self.spec.loss_db_per_cm * self.circumference * 100.0
        return 10.0 ** (-loss_db / 20.0)

    def _power_coupling(self, gap: float | None, override: float | None) -> float:
        if override is not None:
            return override
        if gap is None:
            raise ConfigurationError("ring coupler needs a gap or an explicit power coupling")
        return self.coupler.power_coupling(gap)

    # -- tuning ------------------------------------------------------------
    @property
    def voltage(self) -> float:
        """Current junction drive voltage [V]."""
        return self._voltage

    @voltage.setter
    def voltage(self, value: float) -> None:
        self._voltage = value

    def _tuner_shift(self, voltage: float) -> float:
        if self.tuner is None:
            return 0.0
        return self.tuner.wavelength_shift(voltage)

    def length_adjust_shift(self) -> float:
        """Resonance shift from the PDK ring-length adjustment [m].

        Delta_lambda = n_adj * dL / m (paper Fig. 6: 68 nm -> 2.33 nm).
        """
        if self.length_adjust == 0.0:
            return 0.0
        base_order = round(
            self.waveguide.effective_index * self.spec.circumference / self.design_wavelength
        )
        return self.waveguide.adjust_index * self.length_adjust / base_order

    def resonance_wavelength(
        self, voltage: float | None = None, delta_temperature: float | None = None
    ) -> float:
        """Resonance wavelength [m] under the current (or given) drive."""
        voltage = self._voltage if voltage is None else voltage
        delta_t = self.delta_temperature if delta_temperature is None else delta_temperature
        return (
            self.design_wavelength
            + self.length_adjust_shift()
            + self._tuner_shift(voltage)
            - self._tuner_shift(self.design_voltage)
            + self.thermal.wavelength_shift(delta_t)
            + self.heater_shift
            + self.trim_error
        )

    def round_trip_phase(self, wavelength, voltage: float | None = None):
        """Round-trip phase offset from resonance [rad] (vectorized)."""
        lam = np.asarray(wavelength, dtype=float)
        lam_res = self.resonance_wavelength(voltage=voltage)
        scale = 2.0 * math.pi * self.waveguide.group_index * self.circumference
        return scale * (lam - lam_res) / self.design_wavelength**2

    # -- figures of merit ----------------------------------------------------
    @property
    def fwhm(self) -> float:
        raise NotImplementedError

    @property
    def q_factor(self) -> float:
        """Loaded quality factor."""
        return self.design_wavelength / self.fwhm

    @property
    def finesse(self) -> float:
        return self.fsr / self.fwhm

    @property
    def photon_lifetime(self) -> float:
        """Cavity field lifetime [s]; the transient engine's lag constant."""
        return photon_lifetime(self.q_factor, self.design_wavelength)


class AllPassMRR(_RingBase):
    """Two-port (bus + ring) resonator: the eoADC thresholding ring."""

    input_ports = ("in",)
    output_ports = ("thru",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        kappa_sq = self._power_coupling(self.spec.gap_thru, self.spec.power_coupling_thru)
        if not 0.0 < kappa_sq < 1.0:
            raise ConfigurationError(f"power coupling must be in (0, 1), got {kappa_sq}")
        self.power_coupling_thru = kappa_sq
        self._t = math.sqrt(1.0 - kappa_sq)

    def thru_transmission(self, wavelength, voltage: float | None = None):
        """Thru-port power transmission (vectorized over wavelength)."""
        t = self._t
        a = self.single_pass_amplitude
        cos_phi = np.cos(self.round_trip_phase(wavelength, voltage))
        numerator = t**2 - 2.0 * t * a * cos_phi + a**2
        denominator = 1.0 - 2.0 * t * a * cos_phi + (t * a) ** 2
        return numerator / denominator

    @property
    def fwhm(self) -> float:
        """Loaded linewidth [m]."""
        t_a = self._t * self.single_pass_amplitude
        return (
            (1.0 - t_a)
            * self.design_wavelength**2
            / (math.pi * self.waveguide.group_index * self.circumference * math.sqrt(t_a))
        )

    @property
    def extinction_ratio_db(self) -> float:
        """On-resonance extinction [dB] (inf at exact critical coupling)."""
        t, a = self._t, self.single_pass_amplitude
        t_min = ((t - a) / (1.0 - t * a)) ** 2
        if t_min == 0.0:
            return math.inf
        return -10.0 * math.log10(t_min)

    def propagate_ports(self, inputs: dict[str, WDMSignal]) -> dict[str, WDMSignal]:
        signal = inputs["in"]
        transmission = self.thru_transmission(signal.wavelengths)
        return {"thru": signal.scaled(transmission)}


class AddDropMRR(_RingBase):
    """Four-port resonator: weight rings and the pSRAM latch rings."""

    input_ports = ("in",)
    output_ports = ("thru", "drop")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        kappa_sq_1 = self._power_coupling(self.spec.gap_thru, self.spec.power_coupling_thru)
        gap_drop = self.spec.gap_drop if self.spec.gap_drop is not None else self.spec.gap_thru
        kappa_sq_2 = self._power_coupling(gap_drop, self.spec.power_coupling_drop)
        for kappa_sq in (kappa_sq_1, kappa_sq_2):
            if not 0.0 < kappa_sq < 1.0:
                raise ConfigurationError(f"power coupling must be in (0, 1), got {kappa_sq}")
        self.power_coupling_thru = kappa_sq_1
        self.power_coupling_drop = kappa_sq_2
        self._t1 = math.sqrt(1.0 - kappa_sq_1)
        self._t2 = math.sqrt(1.0 - kappa_sq_2)

    def _denominator(self, cos_phi):
        t1_t2_a = self._t1 * self._t2 * self.single_pass_amplitude
        return 1.0 - 2.0 * t1_t2_a * cos_phi + t1_t2_a**2

    def thru_transmission(self, wavelength, voltage: float | None = None):
        """Thru-port power transmission (vectorized over wavelength)."""
        t1, t2 = self._t1, self._t2
        a = self.single_pass_amplitude
        cos_phi = np.cos(self.round_trip_phase(wavelength, voltage))
        numerator = (t2 * a) ** 2 - 2.0 * t1 * t2 * a * cos_phi + t1**2
        return numerator / self._denominator(cos_phi)

    def drop_transmission(self, wavelength, voltage: float | None = None):
        """Drop-port power transmission (vectorized over wavelength)."""
        kappa_sq_1 = 1.0 - self._t1**2
        kappa_sq_2 = 1.0 - self._t2**2
        a = self.single_pass_amplitude
        cos_phi = np.cos(self.round_trip_phase(wavelength, voltage))
        return kappa_sq_1 * kappa_sq_2 * a / self._denominator(cos_phi)

    def thru_drop(self, wavelength, voltage: float | None = None):
        """Both port transmissions in one call."""
        return (
            self.thru_transmission(wavelength, voltage),
            self.drop_transmission(wavelength, voltage),
        )

    @property
    def fwhm(self) -> float:
        """Loaded linewidth [m]."""
        t1_t2_a = self._t1 * self._t2 * self.single_pass_amplitude
        return (
            (1.0 - t1_t2_a)
            * self.design_wavelength**2
            / (
                math.pi
                * self.waveguide.group_index
                * self.circumference
                * math.sqrt(t1_t2_a)
            )
        )

    @property
    def extinction_ratio_db(self) -> float:
        """On-resonance thru-port extinction [dB]."""
        t1, t2, a = self._t1, self._t2, self.single_pass_amplitude
        t_min = ((t1 - t2 * a) / (1.0 - t1 * t2 * a)) ** 2
        if t_min == 0.0:
            return math.inf
        return -10.0 * math.log10(t_min)

    @property
    def drop_efficiency(self) -> float:
        """On-resonance drop-port transmission."""
        kappa_sq_1 = 1.0 - self._t1**2
        kappa_sq_2 = 1.0 - self._t2**2
        a = self.single_pass_amplitude
        return kappa_sq_1 * kappa_sq_2 * a / (1.0 - self._t1 * self._t2 * a) ** 2

    def propagate_ports(self, inputs: dict[str, WDMSignal]) -> dict[str, WDMSignal]:
        signal = inputs["in"]
        thru, drop = self.thru_drop(signal.wavelengths)
        return {"thru": signal.scaled(thru), "drop": signal.scaled(drop)}
