"""Input intensity modulators for the analog vector encoding.

The compute core's analog inputs are 'intensity-encoded optical
pulses' riding the frequency comb.  A practical encoder is a microring
modulator operated on its transmission flank; its drive-to-intensity
curve is a Lorentzian flank, *not* a straight line, so a naive encoder
compresses large inputs.  :class:`RingModulator` models that curve and
:class:`PredistortedEncoder` inverts it (the lookup predistortion any
deployed transmitter applies), restoring end-to-end linearity.
"""

from __future__ import annotations

import numpy as np

from ..config import Technology, default_technology
from ..errors import ConfigurationError
from .mrr import AllPassMRR
from .pn_junction import DepletionTuner


class RingModulator:
    """An all-pass ring biased on its flank as an intensity modulator.

    ``bias_detuning`` places the carrier on the transmission flank at
    zero drive; the depletion junction then swings the resonance so the
    carrier transmission moves between a low and a high value across
    the drive range.
    """

    def __init__(
        self,
        technology: Technology | None = None,
        drive_range: float = 1.8,
        bias_detuning: float | None = None,
        label: str = "mod",
    ) -> None:
        self.technology = technology if technology is not None else default_technology()
        tech = self.technology
        if drive_range <= 0.0:
            raise ConfigurationError("drive range must be positive")
        self.drive_range = drive_range
        self.ring = AllPassMRR(
            tech.adc_ring_spec(),
            design_wavelength=tech.wavelength,
            design_voltage=0.0,
            waveguide=tech.waveguide,
            coupler=tech.coupler,
            tuner=DepletionTuner(tech.depletion),
            label=f"{label}.ring",
        )
        if bias_detuning is None:
            # Half the drive-induced swing keeps the carrier on one
            # flank across the whole drive range.
            efficiency = tech.depletion.efficiency
            bias_detuning = 0.75 * efficiency * drive_range
        self.bias_detuning = bias_detuning

    def transmission(self, drive_voltage) -> np.ndarray:
        """Carrier transmission for a drive voltage in [0, range]."""
        drive = np.asarray(drive_voltage, dtype=float)
        if np.any(drive < 0.0) or np.any(drive > self.drive_range):
            raise ConfigurationError(
                f"drive must lie in [0, {self.drive_range}] V"
            )
        wavelength = self.technology.wavelength + self.bias_detuning
        flat = drive.ravel()
        values = np.array(
            [
                float(self.ring.thru_transmission(wavelength, voltage=float(v)))
                for v in flat
            ]
        )
        return values.reshape(drive.shape) if drive.shape else values[0]

    @property
    def extinction(self) -> tuple[float, float]:
        """(minimum, maximum) transmission across the drive range."""
        drives = np.linspace(0.0, self.drive_range, 201)
        transmissions = self.transmission(drives)
        return float(transmissions.min()), float(transmissions.max())

    def nonlinearity(self) -> float:
        """Worst deviation of the raw drive->intensity curve from the
        straight line between its endpoints (fraction of the swing)."""
        drives = np.linspace(0.0, self.drive_range, 201)
        transmissions = self.transmission(drives)
        line = np.linspace(transmissions[0], transmissions[-1], drives.size)
        swing = abs(transmissions[-1] - transmissions[0])
        if swing == 0.0:
            raise ConfigurationError("modulator has no swing at this bias")
        return float(np.max(np.abs(transmissions - line)) / swing)


class PredistortedEncoder:
    """Lookup predistortion linearizing a ring modulator.

    Builds an inverse table mapping desired normalized intensity in
    [0, 1] to the drive voltage producing it, so ``encode`` followed by
    the physical modulator yields the requested intensity.
    """

    def __init__(self, modulator: RingModulator, table_points: int = 512) -> None:
        if table_points < 16:
            raise ConfigurationError("need at least 16 predistortion points")
        self.modulator = modulator
        drives = np.linspace(0.0, modulator.drive_range, table_points)
        transmissions = modulator.transmission(drives)
        low, high = transmissions.min(), transmissions.max()
        if high - low <= 0.0:
            raise ConfigurationError("modulator has no usable swing")
        normalized = (transmissions - low) / (high - low)
        # The flank is monotone across the drive range; sort defensively.
        order = np.argsort(normalized)
        self._intensity_table = normalized[order]
        self._drive_table = drives[order]
        self.floor = float(low)
        self.swing = float(high - low)

    def encode(self, intensities) -> np.ndarray:
        """Drive voltages producing the requested intensities in [0, 1]."""
        intensities = np.asarray(intensities, dtype=float)
        if np.any(intensities < 0.0) or np.any(intensities > 1.0):
            raise ConfigurationError("intensities must lie in [0, 1]")
        return np.interp(intensities, self._intensity_table, self._drive_table)

    def realized_intensity(self, intensities) -> np.ndarray:
        """Round trip: intensity -> predistorted drive -> modulator."""
        drives = self.encode(intensities)
        transmissions = self.modulator.transmission(np.atleast_1d(drives))
        normalized = (np.asarray(transmissions) - self.floor) / self.swing
        return normalized if np.ndim(intensities) else float(normalized[0])

    def residual_nonlinearity(self, points: int = 101) -> float:
        """Worst |realized - requested| after predistortion."""
        targets = np.linspace(0.0, 1.0, points)
        realized = self.realized_intensity(targets)
        return float(np.max(np.abs(realized - targets)))
