"""Directional couplers, power splitters and the binary-scaled tree.

The compute core of the paper distributes each analog input through a
cascade of splitters producing binary-weighted copies (IN/2, IN/4, ...,
IN/2^n) that feed the bit-significance-ordered MRR/pSRAM planes; that
cascade is :class:`BinaryScaledSplitterTree`.
"""

from __future__ import annotations

import math

from ..config import CouplerSpec
from ..errors import ConfigurationError
from .signal import WDMSignal


class DirectionalCoupler:
    """Evanescent coupler between two parallel waveguides.

    The power cross-coupling ratio follows the calibrated exponential
    gap map of :class:`repro.config.CouplerSpec`; wavelength dependence
    over the narrow bands used here is neglected.
    """

    input_ports = ("in1", "in2")
    output_ports = ("out1", "out2")

    def __init__(
        self,
        gap: float | None = None,
        power_coupling: float | None = None,
        spec: CouplerSpec | None = None,
        excess_loss_db: float = 0.0,
        label: str = "",
    ) -> None:
        spec = spec if spec is not None else CouplerSpec()
        if power_coupling is None:
            if gap is None:
                raise ConfigurationError("provide either a gap or an explicit power_coupling")
            power_coupling = spec.power_coupling(gap)
        if not 0.0 <= power_coupling <= 1.0:
            raise ConfigurationError(f"power coupling must be in [0, 1], got {power_coupling}")
        if excess_loss_db < 0.0:
            raise ConfigurationError(f"excess loss must be non-negative, got {excess_loss_db}")
        self.gap = gap
        self.power_coupling = power_coupling
        self.excess_loss_db = excess_loss_db
        self.label = label

    @property
    def power_through(self) -> float:
        """Fraction of power staying in the same waveguide."""
        return 1.0 - self.power_coupling

    @property
    def field_self_coupling(self) -> float:
        """Field self-coupling coefficient t = sqrt(1 - kappa^2)."""
        return math.sqrt(self.power_through)

    @property
    def field_cross_coupling(self) -> float:
        """Field cross-coupling coefficient kappa."""
        return math.sqrt(self.power_coupling)

    def propagate_ports(self, inputs: dict[str, WDMSignal]) -> dict[str, WDMSignal]:
        """Incoherent 2x2 power routing with excess loss."""
        survive = 10.0 ** (-self.excess_loss_db / 10.0)
        in1 = inputs.get("in1")
        in2 = inputs.get("in2")
        outputs: dict[str, WDMSignal] = {}
        contributions1 = []
        contributions2 = []
        if in1 is not None:
            contributions1.append(in1.scaled(self.power_through * survive))
            contributions2.append(in1.scaled(self.power_coupling * survive))
        if in2 is not None:
            contributions2.append(in2.scaled(self.power_through * survive))
            contributions1.append(in2.scaled(self.power_coupling * survive))
        if contributions1:
            result = contributions1[0]
            for extra in contributions1[1:]:
                result = result.merged_with(extra)
            outputs["out1"] = result
        if contributions2:
            result = contributions2[0]
            for extra in contributions2[1:]:
                result = result.merged_with(extra)
            outputs["out2"] = result
        return outputs


class PowerSplitter:
    """1x2 optical power splitter (PS1-PS3 of the pSRAM bitcell).

    ``ratio`` is the fraction of input power sent to ``out1``; the rest
    (minus excess loss) goes to ``out2``.
    """

    input_ports = ("in",)
    output_ports = ("out1", "out2")

    def __init__(self, ratio: float = 0.5, excess_loss_db: float = 0.0, label: str = "") -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ConfigurationError(f"split ratio must be in [0, 1], got {ratio}")
        if excess_loss_db < 0.0:
            raise ConfigurationError(f"excess loss must be non-negative, got {excess_loss_db}")
        self.ratio = ratio
        self.excess_loss_db = excess_loss_db
        self.label = label

    def split(self, signal: WDMSignal) -> tuple[WDMSignal, WDMSignal]:
        """Split ``signal`` into (out1, out2)."""
        survive = 10.0 ** (-self.excess_loss_db / 10.0)
        return (
            signal.scaled(self.ratio * survive),
            signal.scaled((1.0 - self.ratio) * survive),
        )

    def propagate_ports(self, inputs: dict[str, WDMSignal]) -> dict[str, WDMSignal]:
        out1, out2 = self.split(inputs["in"])
        return {"out1": out1, "out2": out2}


class BinaryScaledSplitterTree:
    """Cascade of 50/50 splitters producing binary-weighted copies.

    For ``bits`` = n, the input signal is divided into n branches with
    powers IN/2, IN/4, ..., IN/2^n ordered MSB first, plus a residual
    IN/2^n that is sent to an absorber.  Branch k then multiplies the
    analog input by the weight bit of significance 2^(n-1-k), so the
    photodiode-summed output of equal-gain bit planes reconstructs
    IN * w / 2^n exactly (see DESIGN.md).
    """

    def __init__(self, bits: int, excess_loss_db_per_stage: float = 0.0) -> None:
        if bits < 1:
            raise ConfigurationError(f"splitter tree needs at least 1 bit, got {bits}")
        self.bits = bits
        self.excess_loss_db_per_stage = excess_loss_db_per_stage
        self._stage = PowerSplitter(ratio=0.5, excess_loss_db=excess_loss_db_per_stage)

    def branch_fractions(self) -> list[float]:
        """Ideal branch power fractions, MSB first (loss excluded)."""
        return [2.0 ** (-(k + 1)) for k in range(self.bits)]

    @property
    def residual_fraction(self) -> float:
        """Fraction of input power absorbed after the last stage."""
        return 2.0 ** (-self.bits)

    def split(self, signal: WDMSignal) -> tuple[list[WDMSignal], WDMSignal]:
        """Return ([branch_msb, ..., branch_lsb], residual)."""
        branches: list[WDMSignal] = []
        remaining = signal
        for _ in range(self.bits):
            tap, remaining = self._stage.split(remaining)
            branches.append(tap)
        return branches, remaining
