"""Strip waveguide propagation model.

Waveguides confine light through the high-index silicon core; here they
contribute propagation loss, phase delay and group delay.  The modal
indices come from :class:`repro.config.WaveguideSpec`, calibrated to the
paper's ring measurements (DESIGN.md section 2).
"""

from __future__ import annotations

import math

from ..config import WaveguideSpec
from ..errors import ConfigurationError
from .signal import WDMSignal


class Waveguide:
    """A length of routing waveguide between two ports."""

    def __init__(self, length: float, spec: WaveguideSpec | None = None, label: str = "") -> None:
        if length < 0.0:
            raise ConfigurationError(f"waveguide length must be non-negative, got {length}")
        self.length = length
        self.spec = spec if spec is not None else WaveguideSpec()
        self.label = label

    @property
    def power_transmission(self) -> float:
        """Fraction of optical power surviving propagation."""
        return math.exp(-self.spec.alpha * self.length)

    @property
    def loss_db(self) -> float:
        """Insertion loss [dB] of this waveguide."""
        return self.spec.loss_db_per_cm * self.length * 100.0

    def phase(self, wavelength: float) -> float:
        """Accumulated optical phase [rad] at ``wavelength`` [m]."""
        return 2.0 * math.pi * self.spec.effective_index * self.length / wavelength

    def group_delay(self) -> float:
        """Group delay [s] through the waveguide."""
        return self.spec.group_index * self.length / 299_792_458.0

    def propagate(self, signal: WDMSignal) -> WDMSignal:
        """Apply propagation loss to every carrier of ``signal``."""
        return signal.scaled(self.power_transmission)

    # Port protocol used by repro.photonics.network ------------------------
    input_ports = ("in",)
    output_ports = ("out",)

    def propagate_ports(self, inputs: dict[str, WDMSignal]) -> dict[str, WDMSignal]:
        """Network-protocol adapter: ``in`` -> ``out`` with loss."""
        return {"out": self.propagate(inputs["in"])}
