"""Feed-forward photonic circuit evaluation.

Components are registered by name and wired port-to-port; evaluation
pushes per-wavelength powers through the directed graph in topological
order.  The architecture reproduced here contains no optical feedback
(the pSRAM's loop closes through the *electrical* storage nodes), so a
cycle in the optical graph is a construction error.

A component only needs three attributes to participate:

* ``input_ports``  — tuple of input port names,
* ``output_ports`` — tuple of output port names,
* ``propagate_ports(inputs: dict[str, WDMSignal]) -> dict[str, WDMSignal]``.

Every photonic device in :mod:`repro.photonics` implements this.
"""

from __future__ import annotations

from typing import Any

import networkx as nx

from ..errors import PortConnectionError
from .signal import WDMSignal, merge_signals

PortRef = tuple[str, str]


class PhotonicCircuit:
    """A named netlist of photonic components with port wiring."""

    def __init__(self) -> None:
        self._components: dict[str, Any] = {}
        #: (dst_comp, dst_port) -> (src_comp, src_port)
        self._wires_to: dict[PortRef, PortRef] = {}
        #: (src_comp, src_port) -> (dst_comp, dst_port)
        self._wires_from: dict[PortRef, PortRef] = {}

    # -- construction --------------------------------------------------------
    def add(self, name: str, component: Any) -> Any:
        """Register ``component`` under ``name``; returns the component."""
        if name in self._components:
            raise PortConnectionError(f"component name {name!r} already used")
        for attr in ("input_ports", "output_ports", "propagate_ports"):
            if not hasattr(component, attr):
                raise PortConnectionError(
                    f"component {name!r} lacks the port protocol attribute {attr!r}"
                )
        self._components[name] = component
        return component

    def component(self, name: str) -> Any:
        """Look up a registered component."""
        if name not in self._components:
            raise PortConnectionError(f"unknown component {name!r}")
        return self._components[name]

    def connect(self, src: str, src_port: str, dst: str, dst_port: str) -> None:
        """Wire ``src.src_port`` into ``dst.dst_port`` (one-to-one)."""
        source = self.component(src)
        destination = self.component(dst)
        if src_port not in source.output_ports:
            raise PortConnectionError(f"{src!r} has no output port {src_port!r}")
        if dst_port not in destination.input_ports:
            raise PortConnectionError(f"{dst!r} has no input port {dst_port!r}")
        if (dst, dst_port) in self._wires_to:
            raise PortConnectionError(f"input port {dst}.{dst_port} already driven")
        if (src, src_port) in self._wires_from:
            raise PortConnectionError(
                f"output port {src}.{src_port} already connected; use a splitter to fan out"
            )
        self._wires_to[(dst, dst_port)] = (src, src_port)
        self._wires_from[(src, src_port)] = (dst, dst_port)

    # -- evaluation ------------------------------------------------------------
    def _ordered_names(self) -> list[str]:
        graph = nx.DiGraph()
        graph.add_nodes_from(self._components)
        for (dst, _), (src, _) in self._wires_to.items():
            graph.add_edge(src, dst)
        try:
            return list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible as exc:
            raise PortConnectionError(
                "optical feedback loop detected; this evaluator only supports "
                "feed-forward networks (the pSRAM loop closes electrically)"
            ) from exc

    def evaluate(
        self, sources: dict[PortRef, WDMSignal] | None = None
    ) -> dict[PortRef, WDMSignal]:
        """Propagate light through the circuit.

        ``sources`` injects external signals into input ports, keyed by
        ``(component, port)``.  Internal sources (lasers/combs) need no
        entry.  Returns the signal at every driven port, keyed the same
        way — output ports hold what the component emitted, input ports
        what arrived.
        """
        sources = dict(sources) if sources else {}
        for (name, port), signal in sources.items():
            component = self.component(name)
            if port not in component.input_ports:
                raise PortConnectionError(f"{name!r} has no input port {port!r} to drive")
            if not isinstance(signal, WDMSignal):
                raise PortConnectionError("sources must be WDMSignal instances")

        port_signals: dict[PortRef, WDMSignal] = {}
        for name in self._ordered_names():
            component = self._components[name]
            inputs: dict[str, WDMSignal] = {}
            for port in component.input_ports:
                arriving = []
                if (name, port) in self._wires_to:
                    upstream = self._wires_to[(name, port)]
                    if upstream in port_signals:
                        arriving.append(port_signals[upstream])
                if (name, port) in sources:
                    arriving.append(sources[(name, port)])
                if arriving:
                    signal = merge_signals(arriving)
                    inputs[port] = signal
                    port_signals[(name, port)] = signal
            if not inputs and component.input_ports:
                # A pure sink/pass-through with nothing arriving emits nothing.
                continue
            outputs = component.propagate_ports(inputs)
            for port, signal in outputs.items():
                port_signals[(name, port)] = signal
        return port_signals

    # -- introspection -----------------------------------------------------------
    @property
    def component_names(self) -> list[str]:
        return list(self._components)

    def unconnected_outputs(self) -> list[PortRef]:
        """Output ports not wired anywhere (should end in absorbers/PDs)."""
        dangling = []
        for name, component in self._components.items():
            for port in component.output_ports:
                if (name, port) not in self._wires_from:
                    dangling.append((name, port))
        return dangling
