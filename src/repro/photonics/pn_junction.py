"""pn-junction electro-optic tuning via the plasma dispersion effect.

Two tuner flavours are used by the paper's architecture:

* :class:`DepletionTuner` — small-signal reverse/forward modulation of
  the eoADC rings.  The p-terminal sits at a reference voltage, the
  n-terminal at the analog input; increasing reverse bias widens the
  depletion region, removes free carriers and *red-shifts* the
  resonance (paper Fig. 3a).
* :class:`InjectionTuner` — forward-bias carrier injection used as the
  digital on/off tuner of the weight and pSRAM rings, providing the
  multi-linewidth shift a 1.8 V drive needs.

The Soref-Bennett relations are provided for physical grounding and are
exercised by the tests to confirm the calibrated efficiencies sit in a
plausible carrier-density range.
"""

from __future__ import annotations

import math

from ..config import DepletionJunctionSpec, InjectionTunerSpec
from ..constants import SILICON_RELATIVE_PERMITTIVITY, VACUUM_PERMITTIVITY, ELEMENTARY_CHARGE
from ..errors import ConfigurationError

# Soref-Bennett empirical coefficients (per cm^3 carrier densities).
_COEFFS = {
    # wavelength band: (electron dn, hole dn coeff, hole dn exponent,
    #                   electron dalpha, hole dalpha) -- alpha in 1/cm
    1.31e-6: (-6.2e-22, -6.0e-18, 0.8, 6.0e-18, 4.0e-18),
    1.55e-6: (-8.8e-22, -8.5e-18, 0.8, 8.5e-18, 6.0e-18),
}


def _band(wavelength: float) -> tuple[float, float, float, float, float]:
    """Pick the closest Soref-Bennett coefficient band."""
    return _COEFFS[min(_COEFFS, key=lambda band: abs(band - wavelength))]


def soref_bennett_delta_n(
    delta_electrons_cm3: float, delta_holes_cm3: float, wavelength: float = 1.31e-6
) -> float:
    """Refractive-index change for carrier-density changes [cm^-3].

    Positive carrier densities *decrease* the index (free-carrier plasma
    dispersion), so depleting carriers increases it.
    """
    electron_coeff, hole_coeff, hole_exp, _, _ = _band(wavelength)
    hole_term = hole_coeff * (abs(delta_holes_cm3) ** hole_exp) * math.copysign(
        1.0, delta_holes_cm3
    )
    return electron_coeff * delta_electrons_cm3 + hole_term


def soref_bennett_delta_alpha(
    delta_electrons_cm3: float, delta_holes_cm3: float, wavelength: float = 1.31e-6
) -> float:
    """Absorption-coefficient change [1/cm] for carrier-density changes."""
    _, _, _, electron_coeff, hole_coeff = _band(wavelength)
    return electron_coeff * delta_electrons_cm3 + hole_coeff * delta_holes_cm3


def depletion_width(
    bias_voltage: float,
    doping_n_cm3: float = 5e17,
    doping_p_cm3: float = 5e17,
    built_in_voltage: float = 0.8,
) -> float:
    """Depletion width [m] of an abrupt junction under reverse bias [V].

    ``bias_voltage`` is the reverse bias (positive = reverse).  Used by
    the tests to sanity-check the calibrated tuning efficiency.
    """
    if bias_voltage < -built_in_voltage:
        raise ConfigurationError("junction forward-biased beyond the built-in voltage")
    n_m3 = doping_n_cm3 * 1e6
    p_m3 = doping_p_cm3 * 1e6
    effective = n_m3 * p_m3 / (n_m3 + p_m3)
    eps = SILICON_RELATIVE_PERMITTIVITY * VACUUM_PERMITTIVITY
    return math.sqrt(2.0 * eps * (built_in_voltage + bias_voltage) / (ELEMENTARY_CHARGE * effective))


class DepletionTuner:
    """Small-signal junction tuner for the eoADC rings.

    The ring red-shifts as V_pn = V_p - V_n decreases (stronger reverse
    bias) and blue-shifts as V_pn increases, matching the paper's
    Fig. 3(a) description.  A mild odd asymmetry models the stronger
    injection response at forward bias.
    """

    def __init__(self, spec: DepletionJunctionSpec | None = None) -> None:
        self.spec = spec if spec is not None else DepletionJunctionSpec()

    def wavelength_shift(self, v_pn: float) -> float:
        """Resonance wavelength shift [m] at junction voltage ``v_pn``."""
        spec = self.spec
        if v_pn > spec.max_forward_voltage or v_pn < -spec.max_reverse_voltage:
            raise ConfigurationError(
                f"junction voltage {v_pn} V outside the modelled "
                f"[-{spec.max_reverse_voltage}, {spec.max_forward_voltage}] V range"
            )
        return spec.wavelength_shift(v_pn)

    def small_signal_efficiency(self) -> float:
        """|dlambda/dV| at V_pn = 0 [m/V]."""
        return self.spec.efficiency

    def capacitance(self) -> float:
        """Junction capacitance [F] (bias dependence neglected)."""
        return self.spec.capacitance


class InjectionTuner:
    """Digital forward-bias tuner for the weight/pSRAM rings.

    Produces zero shift below the diode turn-on voltage and a blue-shift
    saturating at ``shift_at_vdd`` for a full-rail drive.  The carrier
    time constant limits how fast the ring can follow the drive; the
    transient engine uses it as a first-order lag.
    """

    def __init__(self, spec: InjectionTunerSpec | None = None) -> None:
        self.spec = spec if spec is not None else InjectionTunerSpec()

    def wavelength_shift(self, voltage: float) -> float:
        """Resonance wavelength shift [m] for drive ``voltage`` [V]."""
        if voltage < -0.5:
            raise ConfigurationError(f"injection tuner drive must be ~>= 0 V, got {voltage}")
        return self.spec.wavelength_shift(voltage)

    @property
    def time_constant(self) -> float:
        """Carrier response time constant [s]."""
        return self.spec.carrier_time_constant

    @property
    def full_shift(self) -> float:
        """Blue-shift magnitude at VDD [m]."""
        return self.spec.shift_at_vdd
