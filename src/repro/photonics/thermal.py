"""Thermo-optic tuning: drift, heaters and closed-loop locking.

MRRs are sensitive to thermal fluctuations; the paper (and its MRR
references [37], [38]) points to integrated-heater stabilization.  This
module provides the drift model, a heater actuator and a simple
integral-feedback wavelength locker used by the thermal ablation bench.
"""

from __future__ import annotations

from ..config import ThermalSpec
from ..errors import ConfigurationError


class ThermalTuner:
    """Converts a temperature offset into a resonance shift."""

    def __init__(self, spec: ThermalSpec | None = None) -> None:
        self.spec = spec if spec is not None else ThermalSpec()

    def wavelength_shift(self, delta_temperature: float) -> float:
        """Red-shift [m] for a temperature rise ``delta_temperature`` [K]."""
        return self.spec.shift_per_kelvin * delta_temperature


class Heater:
    """Integrated micro-heater actuator above a ring."""

    def __init__(self, spec: ThermalSpec | None = None) -> None:
        self.spec = spec if spec is not None else ThermalSpec()
        self._power = 0.0

    @property
    def power(self) -> float:
        """Electrical heater power [W]."""
        return self._power

    @power.setter
    def power(self, value: float) -> None:
        if value < 0.0:
            raise ConfigurationError(f"heater power must be non-negative, got {value}")
        self._power = min(value, self.spec.max_heater_power)

    def wavelength_shift(self) -> float:
        """Red-shift [m] produced by the current heater power."""
        return self.spec.heater_efficiency * self._power


class WavelengthLocker:
    """Integral feedback loop locking a ring resonance to a target.

    The locker measures the residual detuning (in a real system: via a
    drop-port monitor photodiode) and adjusts heater power to cancel it.
    Because a heater can only red-shift, the ring is biased mid-range so
    the loop can correct drift of either sign.
    """

    def __init__(
        self,
        heater: Heater,
        gain: float = 0.5,
        bias_power: float | None = None,
    ) -> None:
        if not 0.0 < gain <= 1.0:
            raise ConfigurationError(f"locker gain must be in (0, 1], got {gain}")
        self.heater = heater
        self.gain = gain
        if bias_power is None:
            bias_power = heater.spec.max_heater_power / 2.0
        self.bias_power = bias_power
        self.heater.power = bias_power

    def step(self, measured_detuning: float) -> float:
        """One feedback iteration.

        ``measured_detuning`` is (actual - target) resonance wavelength
        [m] *including* the current heater contribution.  Returns the
        updated heater power [W].
        """
        efficiency = self.heater.spec.heater_efficiency
        correction = -self.gain * measured_detuning / efficiency
        self.heater.power = max(0.0, self.heater.power + correction)
        return self.heater.power

    def _residual(self, ambient_detuning: float) -> float:
        """Net detuning [m]: ambient drift plus the heater's deviation
        from its mid-range bias contribution."""
        bias_shift = self.heater.spec.heater_efficiency * self.bias_power
        return ambient_detuning + self.heater.wavelength_shift() - bias_shift

    def lock(self, ambient_detuning: float, iterations: int = 20) -> float:
        """Drive the loop to cancel a static ``ambient_detuning`` [m].

        Returns the residual detuning [m] after ``iterations`` steps.
        """
        for _ in range(iterations):
            self.step(self._residual(ambient_detuning))
        return self._residual(ambient_detuning)
