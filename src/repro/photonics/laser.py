"""Laser sources: CW bias, write pulses and the WDM frequency comb.

All sources carry the paper's wall-plug efficiency of 0.23 (ref. [47])
so the energy ledger can convert optical power to electrical draw.
"""

from __future__ import annotations

import numpy as np

from ..config import WALL_PLUG_EFFICIENCY
from ..errors import ConfigurationError
from .signal import WDMSignal


class CWLaser:
    """Continuous-wave laser at a single wavelength."""

    input_ports = ()
    output_ports = ("out",)

    def __init__(
        self,
        wavelength: float,
        power: float,
        wall_plug_efficiency: float = WALL_PLUG_EFFICIENCY,
        label: str = "",
    ) -> None:
        if power < 0.0:
            raise ConfigurationError(f"laser power must be non-negative, got {power}")
        if not 0.0 < wall_plug_efficiency <= 1.0:
            raise ConfigurationError(
                f"wall-plug efficiency must be in (0, 1], got {wall_plug_efficiency}"
            )
        self.wavelength = wavelength
        self.power = power
        self.wall_plug_efficiency = wall_plug_efficiency
        self.label = label

    def signal(self) -> WDMSignal:
        """The emitted optical signal."""
        return WDMSignal.single(self.wavelength, self.power)

    @property
    def wall_plug_power(self) -> float:
        """Electrical power drawn from the wall [W]."""
        return self.power / self.wall_plug_efficiency

    def energy(self, duration: float) -> float:
        """Wall-plug energy [J] consumed over ``duration`` [s]."""
        if duration < 0.0:
            raise ConfigurationError(f"duration must be non-negative, got {duration}")
        return self.wall_plug_power * duration

    def propagate_ports(self, inputs: dict[str, WDMSignal]) -> dict[str, WDMSignal]:
        return {"out": self.signal()}


class OpticalPulse:
    """A rectangular optical pulse (the pSRAM write stimulus).

    The paper writes the pSRAM with 50 ps, 0 dBm pulses on WBL/WBLB.
    """

    def __init__(
        self,
        wavelength: float,
        peak_power: float,
        start_time: float,
        width: float,
        wall_plug_efficiency: float = WALL_PLUG_EFFICIENCY,
    ) -> None:
        if peak_power < 0.0:
            raise ConfigurationError(f"peak power must be non-negative, got {peak_power}")
        if width <= 0.0:
            raise ConfigurationError(f"pulse width must be positive, got {width}")
        self.wavelength = wavelength
        self.peak_power = peak_power
        self.start_time = start_time
        self.width = width
        self.wall_plug_efficiency = wall_plug_efficiency

    @property
    def end_time(self) -> float:
        return self.start_time + self.width

    def power_at(self, time: float) -> float:
        """Instantaneous optical power [W] at ``time`` [s]."""
        if self.start_time <= time < self.end_time:
            return self.peak_power
        return 0.0

    @property
    def optical_energy(self) -> float:
        """Optical energy in the pulse [J]."""
        return self.peak_power * self.width

    @property
    def wall_plug_energy(self) -> float:
        """Electrical energy the source spends emitting the pulse [J]."""
        return self.optical_energy / self.wall_plug_efficiency


class FrequencyComb:
    """Optical frequency comb: equally spaced WDM carriers.

    The paper generates the intensity-encoded input vector from a comb
    (ref. [30]); :meth:`modulated` encodes an analog vector onto the
    comb lines for WDM transmission through one bus waveguide.
    """

    input_ports = ()
    output_ports = ("out",)

    def __init__(
        self,
        base_wavelength: float,
        spacing: float,
        line_count: int,
        power_per_line: float,
        wall_plug_efficiency: float = WALL_PLUG_EFFICIENCY,
        label: str = "",
    ) -> None:
        if line_count < 1:
            raise ConfigurationError(f"comb needs at least 1 line, got {line_count}")
        if spacing <= 0.0:
            raise ConfigurationError(f"comb spacing must be positive, got {spacing}")
        if power_per_line < 0.0:
            raise ConfigurationError(f"line power must be non-negative, got {power_per_line}")
        self.base_wavelength = base_wavelength
        self.spacing = spacing
        self.line_count = line_count
        self.power_per_line = power_per_line
        self.wall_plug_efficiency = wall_plug_efficiency
        self.label = label

    @property
    def wavelengths(self) -> np.ndarray:
        """Comb line wavelengths [m], ascending."""
        return self.base_wavelength + self.spacing * np.arange(self.line_count)

    def signal(self) -> WDMSignal:
        """Unmodulated comb output (all lines at full power)."""
        return WDMSignal(self.wavelengths, np.full(self.line_count, self.power_per_line))

    def modulated(self, intensities) -> WDMSignal:
        """Comb lines intensity-modulated by ``intensities`` in [0, 1].

        This is the analog input encoding of the compute core: element i
        of the input vector rides on wavelength lambda_i.
        """
        intensities = np.asarray(intensities, dtype=float)
        if intensities.shape != (self.line_count,):
            raise ConfigurationError(
                f"need {self.line_count} intensities, got shape {intensities.shape}"
            )
        if np.any(intensities < 0.0) or np.any(intensities > 1.0):
            raise ConfigurationError("modulation intensities must lie in [0, 1]")
        return WDMSignal(self.wavelengths, intensities * self.power_per_line)

    @property
    def total_power(self) -> float:
        """Total emitted optical power at full modulation [W]."""
        return self.line_count * self.power_per_line

    @property
    def wall_plug_power(self) -> float:
        """Electrical power drawn from the wall [W]."""
        return self.total_power / self.wall_plug_efficiency

    def propagate_ports(self, inputs: dict[str, WDMSignal]) -> dict[str, WDMSignal]:
        return {"out": self.signal()}
