"""Photodiodes and the balanced pair used for opto-electric thresholding.

Photodiodes are the optical-to-electrical boundary everywhere in the
architecture: the pSRAM storage nodes (P1-P4), the compute-core output
accumulators, and the eoADC thresholding blocks.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import PhotodiodeSpec
from ..constants import BOLTZMANN_CONSTANT, ELEMENTARY_CHARGE, ROOM_TEMPERATURE
from ..errors import ConfigurationError
from .signal import WDMSignal


class Photodiode:
    """A broadband Ge photodiode converting optical power to current.

    The broadband response matters for the pSRAM: its photodiodes sum
    the hold-bias wavelength and the (possibly different) write-laser
    wavelength, as the paper notes in Section II-A.
    """

    input_ports = ("in",)
    output_ports = ()

    def __init__(self, spec: PhotodiodeSpec | None = None, label: str = "") -> None:
        self.spec = spec if spec is not None else PhotodiodeSpec()
        if self.spec.responsivity <= 0.0:
            raise ConfigurationError("photodiode responsivity must be positive")
        self.label = label
        #: Last optical power absorbed through the network interface [W].
        self.last_input_power = 0.0

    def current(self, optical_power: float) -> float:
        """Photocurrent [A] for an incident optical power [W]."""
        if optical_power < 0.0:
            raise ConfigurationError(f"optical power must be non-negative, got {optical_power}")
        return self.spec.responsivity * optical_power + self.spec.dark_current

    def current_from_signal(self, signal: WDMSignal) -> float:
        """Photocurrent [A] summing all carriers (broadband response)."""
        return self.current(signal.total_power)

    def shot_noise_sigma(self, optical_power: float, bandwidth: float | None = None) -> float:
        """Shot-noise current std-dev [A] at the given bandwidth."""
        bandwidth = self.spec.bandwidth if bandwidth is None else bandwidth
        mean_current = self.current(optical_power)
        return math.sqrt(2.0 * ELEMENTARY_CHARGE * mean_current * bandwidth)

    def noisy_current(
        self,
        optical_power: float,
        rng: np.random.Generator,
        bandwidth: float | None = None,
        load_resistance: float = 10e3,
    ) -> float:
        """Photocurrent sample including shot and thermal noise [A]."""
        bandwidth = self.spec.bandwidth if bandwidth is None else bandwidth
        shot = self.shot_noise_sigma(optical_power, bandwidth)
        thermal = math.sqrt(
            4.0 * BOLTZMANN_CONSTANT * ROOM_TEMPERATURE * bandwidth / load_resistance
        )
        sigma = math.hypot(shot, thermal)
        return self.current(optical_power) + rng.normal(0.0, sigma)

    def propagate_ports(self, inputs: dict[str, WDMSignal]) -> dict[str, WDMSignal]:
        """Network sink: record absorbed power, emit nothing."""
        self.last_input_power = inputs["in"].total_power
        return {}


class BalancedPhotodiodePair:
    """Two stacked photodiodes producing a signed difference current.

    The eoADC thresholding block connects the upper diode to a ring thru
    port and the lower diode to the reference power; the paper's pSRAM
    uses the same topology with the storage node at the midpoint (the
    upper diode pulls the node toward VDD, the lower toward ground).
    """

    def __init__(
        self,
        upper: Photodiode | None = None,
        lower: Photodiode | None = None,
        label: str = "",
    ) -> None:
        self.upper = upper if upper is not None else Photodiode()
        self.lower = lower if lower is not None else Photodiode()
        self.label = label

    def net_current(self, upper_power: float, lower_power: float) -> float:
        """I_upper - I_lower [A]: positive pulls the midpoint up."""
        return self.upper.current(upper_power) - self.lower.current(lower_power)

    def discharges(self, upper_power: float, lower_power: float) -> bool:
        """True when the midpoint node discharges toward ground,
        i.e. the lower (reference) diode wins — the eoADC's 'active'
        thresholding condition."""
        return self.net_current(upper_power, lower_power) < 0.0
