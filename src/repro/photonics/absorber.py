"""Passive optical absorbers (port terminators).

Absorbers A1/A2 of the pSRAM bitcell and the residual port of the
binary-scaled splitter tree terminate unused light so it cannot reflect
back and corrupt other channels.  The model simply records what it
swallows, which the energy ledger can audit.
"""

from __future__ import annotations

from .signal import WDMSignal


class Absorber:
    """Terminates a waveguide, absorbing all incident light."""

    input_ports = ("in",)
    output_ports = ()

    def __init__(self, label: str = "") -> None:
        self.label = label
        #: Total optical power absorbed during the last evaluation [W].
        self.last_absorbed_power = 0.0

    def absorb(self, signal: WDMSignal) -> float:
        """Absorb ``signal``; returns the power swallowed [W]."""
        self.last_absorbed_power = signal.total_power
        return self.last_absorbed_power

    def propagate_ports(self, inputs: dict[str, WDMSignal]) -> dict[str, WDMSignal]:
        self.absorb(inputs["in"])
        return {}
