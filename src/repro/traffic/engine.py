"""The open-loop traffic engine: a discrete-event driver on the
modelled clock.

:class:`TrafficEngine` replays an arrival tape
(:class:`~repro.traffic.arrivals.ArrivalProcess`) of multi-tenant
requests (:class:`~repro.traffic.workload.WorkloadMix`) through a real
:class:`~repro.api.PhotonicSession` or
:class:`~repro.api.PhotonicCluster` — no mocking, the actual submit /
flush / shed machinery runs — while *all* timing stays on modelled
clocks:

* the target is constructed with ``clock=ModelClock(...)``; the engine
  sets that clock to each arrival's timestamp before submitting, so
  flush-policy ages, ``deadline=`` stamps and queue-wait measurements
  read simulated time, never host time;
* each core's telemetry clock is the *service* timeline (it advances
  by modelled batch/compile durations inside flushes); before every
  event the engine pre-advances idle service clocks to the event time,
  so a backlogged core shows queue-wait and an idle one does not;
* between arrivals the engine fires the target's flush-policy triggers
  (``delay_limit`` ages, ``deadline_headroom`` slack) at their exact
  modelled due-times via :meth:`~repro.api.PhotonicSession.poll` —
  the discrete-event half that makes latency-bounding policies work
  in an open loop.

Admission runs tenant-by-tenant through token buckets
(:class:`~repro.traffic.workload.TokenBucket`), cluster admission
control (:class:`~repro.errors.ClusterSaturatedError`) is counted
rather than raised, and the run summary folds offered load, goodput,
deadline-miss rate, latency quantiles, the per-tenant queue-wait /
service-time split, and the :class:`~repro.traffic.slo.SLO` verdict.

The engine retains no per-request state (futures are dropped once
submitted; latencies live in the telemetry histograms), so
million-request runs are memory-flat.
"""

from __future__ import annotations

import numpy as np

from ..api.cluster import PhotonicCluster
from ..api.session import PhotonicSession
from ..errors import ClusterSaturatedError, ConfigurationError
from ..telemetry import ModelClock, merged_tenant_quantiles
from .arrivals import ArrivalProcess
from .slo import SLO
from .workload import WorkloadMix


class TrafficEngine:
    """Drive one session/cluster with an open-loop modelled workload.

    ``target`` must be constructed with an injected
    :class:`~repro.telemetry.ModelClock` (``clock=``) and metrics
    attached (``metrics=``/``trace=``) — the engine owns the arrival
    clock and reads latencies out of the telemetry histograms.
    ``slo`` (optional) adds a pass/fail verdict to every summary.
    """

    def __init__(
        self,
        target: PhotonicSession | PhotonicCluster,
        workload: WorkloadMix,
        arrivals: ArrivalProcess,
        slo: SLO | None = None,
        seed: int = 2025,
    ) -> None:
        if not isinstance(workload, WorkloadMix):
            raise ConfigurationError(
                f"workload must be a repro.traffic.WorkloadMix, "
                f"got {type(workload).__name__}"
            )
        if not isinstance(arrivals, ArrivalProcess):
            raise ConfigurationError(
                f"arrivals must be a repro.traffic.ArrivalProcess, "
                f"got {type(arrivals).__name__}"
            )
        if slo is not None and not isinstance(slo, SLO):
            raise ConfigurationError(
                f"slo must be a repro.traffic.SLO or None, "
                f"got {type(slo).__name__}"
            )
        if isinstance(target, PhotonicCluster):
            self._sessions: tuple[PhotonicSession, ...] = target.sessions
            self._is_cluster = True
        elif isinstance(target, PhotonicSession):
            self._sessions = (target,)
            self._is_cluster = False
        else:
            raise ConfigurationError(
                f"target must be a PhotonicSession or PhotonicCluster, "
                f"got {type(target).__name__}"
            )
        clock = self._sessions[0].clock
        if not isinstance(clock, ModelClock):
            raise ConfigurationError(
                "the traffic engine needs a target constructed with an "
                "injected modelled clock — pass clock=ModelClock() to "
                "the session/cluster so arrival time never reads the "
                "host clock"
            )
        if any(session.clock is not clock for session in self._sessions):
            raise ConfigurationError(
                "every core must share the engine's arrival clock; "
                "construct the cluster with a single clock= instance"
            )
        self._bindings = []
        for session in self._sessions:
            tel = session.telemetry
            if tel is None:
                raise ConfigurationError(
                    "the traffic engine needs telemetry on every core "
                    "(construct the target with metrics= or trace=) — "
                    "latency quantiles and service clocks live there"
                )
            self._bindings.append(tel)
        self.target = target
        self.workload = workload
        self.arrivals = arrivals
        self.slo = slo
        self.seed = int(seed)
        self.clock = clock
        self._service_clocks = tuple(
            binding.clock for binding in self._bindings
        )
        #: The cluster membership version this engine's session
        #: snapshot was taken at (None for plain sessions, which never
        #: change membership).
        self._membership_seen = (
            target.membership_version if self._is_cluster else None
        )

    def _refresh_membership(self) -> None:
        """Re-snapshot the target's sessions after an elastic
        membership change (``add_core`` / autoscaler grow) so new cores
        get their service clocks driven too.  A cheap integer compare
        per event: the cluster bumps ``membership_version`` only when
        the fleet actually grows."""
        if not self._is_cluster:
            return
        version = self.target.membership_version
        if version == self._membership_seen:
            return
        sessions = self.target.sessions
        for session in sessions[len(self._sessions):]:
            if session.clock is not self.clock:
                raise ConfigurationError(
                    "a core added mid-run must share the engine's "
                    "arrival clock"
                )
            if session.telemetry is None:
                raise ConfigurationError(
                    "a core added mid-run must carry telemetry "
                    "(the cluster builds it when the fleet has any)"
                )
        self._sessions = sessions
        self._bindings = [session.telemetry for session in sessions]
        self._service_clocks = tuple(
            binding.clock for binding in self._bindings
        )
        self._membership_seen = version

    # -- discrete-event machinery --------------------------------------------
    def _advance_to(self, t: float) -> None:
        """Move the arrival clock to ``t`` and pull idle service clocks
        up to it (a core that sat idle starts serving at the arrival,
        not in the past; a backlogged core keeps its later time so the
        gap shows up as queue-wait)."""
        self.clock.now = t
        for service in self._service_clocks:
            if service.now < t:
                service.now = t

    def _next_trigger(self) -> float | None:
        """The earliest modelled time any session's flush policy will
        trip on its own (delay-limit age or deadline-headroom slack);
        None when no pending traffic carries a trigger."""
        trigger: float | None = None
        for session in self._sessions:
            policy = session.flush_policy
            oldest = session.oldest_pending_at
            if policy.delay_limit is not None and oldest is not None:
                due = oldest + policy.delay_limit
                if trigger is None or due < trigger:
                    trigger = due
            deadline = session.next_deadline
            if policy.deadline_headroom is not None and deadline is not None:
                due = deadline - policy.deadline_headroom
                if trigger is None or due < trigger:
                    trigger = due
        return trigger

    def _fire_triggers_until(self, t: float) -> None:
        """Fire every flush-policy trigger due before modelled time
        ``t``, each at its exact due-time (the event-queue pop of a
        classical DES, with the policy as the event source)."""
        while True:
            trigger = self._next_trigger()
            if trigger is None or trigger >= t:
                return
            # Land a hair *past* the due-time (1 ppb): at exactly
            # `deadline - headroom` the slack subtraction can round to
            # just above the headroom and the policy would not trip.
            trigger += 1e-9 * (1.0 + abs(trigger))
            self._advance_to(max(trigger, self.clock.now))
            if self.target.poll() == 0:
                # The policy disagreed with our estimate (e.g. slack
                # recomputed after a shed); nothing resolved, so stop
                # rather than spin on the same trigger.
                return

    # -- accounting helpers --------------------------------------------------
    def _report_totals(self) -> tuple[int, int]:
        """(requests, deadline_misses) cumulative on the target."""
        if self._is_cluster:
            total = self.target.report().total
        else:
            total = self.target.report()
        return total.requests, total.deadline_misses

    def _latency_quantiles(self) -> dict | None:
        return self.target.report().latency_quantiles

    def _tenant_quantiles(self) -> dict | None:
        """Per-tenant queue-wait / service-time split, merged
        bin-for-bin across cores (quantiles are not additive); see
        :func:`repro.telemetry.merged_tenant_quantiles`."""
        return merged_tenant_quantiles(self._bindings)

    # -- the run loop --------------------------------------------------------
    def run(self, requests: int, input_pool: int = 256) -> dict:
        """Replay ``requests`` arrivals through the target and return
        the run summary (see the module docstring for the timeline
        semantics).  Runs are reproducible: all randomness derives from
        ``seed``, and nothing reads the host clock."""
        if not isinstance(requests, (int, np.integer)) or requests < 1:
            raise ConfigurationError(
                f"a traffic run needs requests >= 1, got {requests!r}"
            )
        rng = np.random.default_rng(self.seed)
        times = self.arrivals.times(int(requests), rng)
        tenant_index = self.workload.sample(int(requests), rng)
        weights = self.workload.materialize(rng)
        pool = self.workload.input_pool(rng, input_pool)
        buckets = [tenant.bucket() for tenant in self.workload.tenants]
        tenants = self.workload.tenants
        requests_before, misses_before = self._report_totals()
        obs = self.target.obs
        if obs is not None:
            obs.note_event(
                self.clock.now,
                "traffic_run_started",
                {
                    "offered": int(requests),
                    "arrivals": self.arrivals.describe(),
                    "workload": self.workload.describe(),
                    "seed": self.seed,
                },
            )

        admitted = 0
        rate_limited = 0
        admission_shed = 0
        target = self.target
        is_cluster = self._is_cluster
        for i in range(int(requests)):
            t = float(times[i])
            self._fire_triggers_until(t)
            # Pick up cores the autoscaler added during the previous
            # event *before* advancing clocks, so a fresh core's idle
            # service clock starts at this arrival rather than at 0.
            self._refresh_membership()
            self._advance_to(t)
            k = int(tenant_index[i])
            tenant = tenants[k]
            bucket = buckets[k]
            if bucket is not None and not bucket.admit(t):
                rate_limited += 1
                continue
            x = pool[k][i % len(pool[k])]
            try:
                if is_cluster:
                    target.submit(
                        weights[k],
                        x,
                        priority=tenant.priority,
                        deadline=tenant.deadline_s,
                        tenant=tenant.name,
                    )
                else:
                    target.submit(
                        weights[k],
                        x,
                        deadline=tenant.deadline_s,
                        tenant=tenant.name,
                    )
            except ClusterSaturatedError:
                admission_shed += 1
                continue
            admitted += 1
        # Drain immediately at end-of-tape: waiting out the remaining
        # delay/deadline triggers would bill the trailing partial batch
        # with policy wait the run is no longer offering traffic for,
        # inflating every makespan by up to one delay_limit.
        last_arrival = float(times[-1]) if len(times) else 0.0
        target.flush()
        self._refresh_membership()
        if target.pending != 0:
            raise ConfigurationError(
                f"traffic run left {target.pending} requests pending "
                "after the final flush"
            )

        requests_after, misses_after = self._report_totals()
        deadline_misses = misses_after - misses_before
        resolved = admitted - deadline_misses
        makespan = max(
            (service.now for service in self._service_clocks),
            default=last_arrival,
        )
        makespan = max(makespan, last_arrival)
        offered_rate = requests / last_arrival if last_arrival > 0 else 0.0
        quantiles = self._latency_quantiles()
        p99 = None
        p50 = None
        if quantiles is not None:
            p50 = quantiles["end_to_end"]["p50"]
            p99 = quantiles["end_to_end"]["p99"]
        miss_rate = deadline_misses / requests if requests else 0.0
        summary = {
            "offered": int(requests),
            "offered_rate_per_s": offered_rate,
            "admitted": admitted,
            "rate_limited": rate_limited,
            "admission_shed": admission_shed,
            "resolved": resolved,
            "submitted_delta": requests_after - requests_before,
            "deadline_misses": deadline_misses,
            "miss_rate": miss_rate,
            "makespan_s": makespan,
            "throughput_per_s": resolved / makespan if makespan > 0 else 0.0,
            "p50_e2e_s": p50,
            "p99_e2e_s": p99,
            "latency_quantiles": quantiles,
            "tenants": self._tenant_quantiles(),
            "arrivals": self.arrivals.describe(),
            "workload": self.workload.describe(),
            "flush_policy": self._sessions[0].flush_policy.describe(),
            "seed": self.seed,
        }
        if self.slo is not None:
            summary["slo"] = self.slo.describe()
            summary["slo_met"] = self.slo.met(p99, miss_rate)
        if obs is not None:
            obs.note_event(
                makespan,
                "traffic_run_finished",
                {
                    "admitted": admitted,
                    "rate_limited": rate_limited,
                    "admission_shed": admission_shed,
                    "deadline_misses": deadline_misses,
                    "miss_rate": miss_rate,
                    "slo_met": summary.get("slo_met"),
                },
            )
        return summary

    def __repr__(self) -> str:
        kind = "cluster" if self._is_cluster else "session"
        return (
            f"<TrafficEngine {kind} x{len(self._sessions)} cores, "
            f"{self.arrivals.describe()}, {self.workload.describe()}>"
        )
