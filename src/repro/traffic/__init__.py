"""Modelled-time traffic simulation: deadlines, SLOs and capacity.

``repro.traffic`` closes the serving story's last gap: the replay
benches measure throughput under a canned trace, but a deployment
promise is a *capacity under an SLO* — "this fleet sustains N req/s
at p99 <= X with a miss budget of Y".  This package measures exactly
that, entirely on the modelled clock (a million-request day of
traffic simulates in seconds, bit-for-bit reproducibly):

* :mod:`~repro.traffic.arrivals` — composable arrival processes
  (:class:`Poisson`, :class:`Diurnal`, :class:`Bursty` MMPP-2,
  deterministic :class:`Replay`), all seeded;
* :mod:`~repro.traffic.workload` — multi-tenant mixes
  (:class:`Tenant`, :class:`WorkloadMix`, the serve-bench-compatible
  :meth:`WorkloadMix.zipf`) with per-tenant deadlines, priorities and
  :class:`TokenBucket` rate limits;
* :mod:`~repro.traffic.slo` — the :class:`SLO` contract (p99 bound +
  deadline-miss budget) and its deadline-aware
  :class:`~repro.api.FlushPolicy`;
* :mod:`~repro.traffic.engine` — :class:`TrafficEngine`, the
  discrete-event driver injecting the arrival clock into a real
  :class:`~repro.api.PhotonicSession` / cluster and firing
  flush-policy triggers at their exact modelled due-times;
* :mod:`~repro.traffic.capacity` — :func:`find_capacity`, the binary
  search for the highest sustained offered load meeting the SLO
  (behind ``python -m repro serve-bench traffic``).

Per-request ``deadline=`` semantics (typed
:class:`~repro.errors.DeadlineExceededError` sheds, the
``deadline_misses`` ledger on every report) live in :mod:`repro.api`;
this package is the load generator and the measurement harness.
"""

from .arrivals import ArrivalProcess, Bursty, Diurnal, Poisson, Replay
from .capacity import find_capacity
from .engine import TrafficEngine
from .slo import SLO
from .workload import Tenant, TokenBucket, WorkloadMix

__all__ = [
    "SLO",
    "ArrivalProcess",
    "Bursty",
    "Diurnal",
    "Poisson",
    "Replay",
    "Tenant",
    "TokenBucket",
    "TrafficEngine",
    "WorkloadMix",
    "find_capacity",
]
