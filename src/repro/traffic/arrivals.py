"""Composable arrival processes: when do requests reach the front door?

An :class:`ArrivalProcess` turns a request count into a sorted vector
of absolute arrival times on the modelled clock — the open-loop half
of the traffic engine (the *workload* half decides what each arrival
submits; see :mod:`repro.traffic.workload`).  All randomness flows
through the caller-supplied :class:`numpy.random.Generator`, so a
seeded engine replays the same arrival tape bit for bit:

* :class:`Poisson` — memoryless arrivals at a constant mean rate (the
  M in M/D/c); inter-arrival gaps are i.i.d. exponentials.
* :class:`Diurnal` — a sinusoidally-modulated Poisson process (peak /
  trough over a configurable period), sampled by Lewis-Shedler
  thinning against the peak rate.
* :class:`Bursty` — a 2-state Markov-modulated Poisson process
  (MMPP-2): exponential sojourns alternate between a quiet rate and a
  burst rate, the classic on/off model of flash-crowd traffic.
* :class:`Replay` — deterministic fixed-period arrivals (rate with no
  variance), the control arm for A/B-ing policies against the
  stochastic processes.

``scaled(factor)`` returns the same process with every rate multiplied
by ``factor`` — the knob the capacity search turns (see
:mod:`repro.traffic.capacity`).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


def _validated_rate(rate: float, name: str = "rate") -> float:
    if not isinstance(rate, (int, float)) or isinstance(rate, bool):
        raise ConfigurationError(f"{name} must be a number, got {rate!r}")
    if rate <= 0.0 or not np.isfinite(rate):
        raise ConfigurationError(
            f"{name} must be a positive finite rate [req/s], got {rate}"
        )
    return float(rate)


class ArrivalProcess:
    """Base class: a distribution over sorted absolute arrival times.

    Subclasses implement :meth:`times` (drawing from the supplied
    generator only) and :meth:`scaled`; :attr:`mean_rate` is the
    long-run offered load [req/s] the capacity search reports.
    """

    #: Long-run mean offered rate [req/s].
    mean_rate: float = 0.0

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` sorted absolute arrival times [s], starting after 0."""
        raise NotImplementedError

    def scaled(self, factor: float) -> "ArrivalProcess":
        """The same process with every rate multiplied by ``factor``."""
        raise NotImplementedError

    @staticmethod
    def _validated_count(n: int) -> int:
        if not isinstance(n, (int, np.integer)) or n < 0:
            raise ConfigurationError(
                f"arrival count must be an integer >= 0, got {n!r}"
            )
        return int(n)

    def describe(self) -> str:
        return f"{type(self).__name__.lower()} @ {self.mean_rate:g} req/s"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class Poisson(ArrivalProcess):
    """Memoryless arrivals at a constant mean ``rate`` [req/s]."""

    def __init__(self, rate: float) -> None:
        self.rate = _validated_rate(rate)
        self.mean_rate = self.rate

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._validated_count(n)
        return np.cumsum(rng.exponential(1.0 / self.rate, n))

    def scaled(self, factor: float) -> "Poisson":
        return Poisson(self.rate * _validated_rate(factor, "scale factor"))


class Diurnal(ArrivalProcess):
    """A sinusoidally-modulated Poisson process.

    The instantaneous rate swings between ``trough`` and ``peak`` over
    one ``period`` (default 86400 s — a modelled day, though serving
    benches compress it to milliseconds), starting at the trough:
    ``rate(t) = trough + (peak - trough) * (1 - cos(2 pi t/period))/2``.
    Sampled by thinning a rate-``peak`` Poisson stream, so the output
    is exact (not a piecewise-constant approximation).
    """

    def __init__(
        self, trough: float, peak: float, period: float = 86400.0
    ) -> None:
        self.trough = _validated_rate(trough, "trough rate")
        self.peak = _validated_rate(peak, "peak rate")
        if self.peak < self.trough:
            raise ConfigurationError(
                f"peak rate {peak} must be >= trough rate {trough}"
            )
        self.period = _validated_rate(period, "period")
        self.mean_rate = (self.trough + self.peak) / 2.0

    def _rate_at(self, t: np.ndarray) -> np.ndarray:
        swing = (self.peak - self.trough) / 2.0
        return self.trough + swing * (
            1.0 - np.cos(2.0 * np.pi * t / self.period)
        )

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._validated_count(n)
        accepted: list[np.ndarray] = []
        total = 0
        t = 0.0
        # Lewis-Shedler thinning in vectorized chunks: candidates at
        # the peak rate, kept with probability rate(t)/peak.
        chunk = max(2 * n, 64)
        while total < n:
            gaps = rng.exponential(1.0 / self.peak, chunk)
            candidates = t + np.cumsum(gaps)
            keep = candidates[
                rng.uniform(size=chunk) * self.peak
                <= self._rate_at(candidates)
            ]
            accepted.append(keep)
            total += keep.size
            t = float(candidates[-1])
        return np.concatenate(accepted)[:n]

    def scaled(self, factor: float) -> "Diurnal":
        factor = _validated_rate(factor, "scale factor")
        return Diurnal(
            self.trough * factor, self.peak * factor, period=self.period
        )

    def describe(self) -> str:
        return (
            f"diurnal {self.trough:g}-{self.peak:g} req/s "
            f"over {self.period:g} s"
        )


class Bursty(ArrivalProcess):
    """A 2-state Markov-modulated Poisson process (MMPP-2).

    The source alternates between a ``quiet`` and a ``burst`` Poisson
    rate; sojourn times in each state are exponential with means
    ``quiet_dwell`` / ``burst_dwell`` [s].  The long-run mean rate is
    the dwell-weighted average of the two state rates.
    """

    def __init__(
        self,
        quiet: float,
        burst: float,
        quiet_dwell: float,
        burst_dwell: float,
    ) -> None:
        self.quiet = _validated_rate(quiet, "quiet rate")
        self.burst = _validated_rate(burst, "burst rate")
        self.quiet_dwell = _validated_rate(quiet_dwell, "quiet dwell")
        self.burst_dwell = _validated_rate(burst_dwell, "burst dwell")
        total_dwell = self.quiet_dwell + self.burst_dwell
        self.mean_rate = (
            self.quiet * self.quiet_dwell + self.burst * self.burst_dwell
        ) / total_dwell

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._validated_count(n)
        segments: list[np.ndarray] = []
        total = 0
        t = 0.0
        in_burst = False
        while total < n:
            if in_burst:
                rate, dwell = self.burst, self.burst_dwell
            else:
                rate, dwell = self.quiet, self.quiet_dwell
            sojourn = float(rng.exponential(dwell))
            # Draw enough candidate gaps to cover the sojourn, keep the
            # arrivals that land inside it, advance to the state flip.
            expect = max(int(rate * sojourn * 2) + 8, 8)
            candidates = t + np.cumsum(rng.exponential(1.0 / rate, expect))
            while candidates.size and candidates[-1] < t + sojourn:
                candidates = np.concatenate(
                    [
                        candidates,
                        candidates[-1]
                        + np.cumsum(rng.exponential(1.0 / rate, expect)),
                    ]
                )
            inside = candidates[candidates < t + sojourn]
            segments.append(inside)
            total += inside.size
            t += sojourn
            in_burst = not in_burst
        return np.concatenate(segments)[:n]

    def scaled(self, factor: float) -> "Bursty":
        factor = _validated_rate(factor, "scale factor")
        return Bursty(
            self.quiet * factor,
            self.burst * factor,
            self.quiet_dwell,
            self.burst_dwell,
        )

    def describe(self) -> str:
        return (
            f"bursty {self.quiet:g}/{self.burst:g} req/s "
            f"(dwell {self.quiet_dwell:g}/{self.burst_dwell:g} s)"
        )


class Replay(ArrivalProcess):
    """Deterministic fixed-period arrivals at ``rate`` [req/s].

    Zero-variance control arm: request ``k`` arrives at ``(k+1)/rate``
    exactly, regardless of the generator (the D in M/D/c).  Pair it
    with :meth:`WorkloadMix.zipf <repro.traffic.workload.WorkloadMix.zipf>`
    to replay the serve-bench Zipf trace on a fixed clock grid.
    """

    def __init__(self, rate: float) -> None:
        self.rate = _validated_rate(rate)
        self.mean_rate = self.rate

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._validated_count(n)
        return np.arange(1, n + 1, dtype=float) / self.rate

    def scaled(self, factor: float) -> "Replay":
        return Replay(self.rate * _validated_rate(factor, "scale factor"))
