"""Service-level objectives: the pass/fail contract capacity is measured
against.

An :class:`SLO` declares the two latency promises a serving deployment
makes — a p99 end-to-end latency bound and a deadline-miss budget —
and :meth:`SLO.met` turns one traffic-engine summary into a verdict.
:meth:`SLO.flush_policy` derives the matching deadline-aware
:class:`~repro.api.FlushPolicy` (flush early when the most urgent
pending request's slack drops to the headroom), closing the loop from
declared objective to scheduler behaviour.  The capacity search
(:mod:`repro.traffic.capacity`) binary-searches offered load for the
highest sustained rate whose run still satisfies ``met()``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.policy import FlushPolicy
from ..errors import ConfigurationError


@dataclass(frozen=True)
class SLO:
    """A serving contract: p99 latency bound + deadline-miss budget.

    ``p99_latency`` bounds the modelled end-to-end p99 [s];
    ``deadline_miss_budget`` is the tolerated fraction of offered
    requests shed past their deadline (0.0 = none).
    """

    #: Modelled end-to-end p99 bound [s].
    p99_latency: float
    #: Tolerated deadline-miss fraction of offered requests.
    deadline_miss_budget: float = 0.0

    def __post_init__(self) -> None:
        if self.p99_latency <= 0.0:
            raise ConfigurationError(
                f"SLO p99_latency must be positive seconds, "
                f"got {self.p99_latency}"
            )
        if not 0.0 <= self.deadline_miss_budget < 1.0:
            raise ConfigurationError(
                f"SLO deadline_miss_budget must be a fraction in [0, 1), "
                f"got {self.deadline_miss_budget}"
            )

    def met(self, p99: float | None, miss_rate: float) -> bool:
        """Whether one run satisfies the contract.  ``p99`` is the
        run's modelled end-to-end p99 (None = nothing resolved, which
        only passes when nothing was offered either — callers pass
        ``miss_rate=1.0`` for an all-shed run)."""
        if miss_rate > self.deadline_miss_budget:
            return False
        if p99 is None:
            return miss_rate <= self.deadline_miss_budget
        return p99 <= self.p99_latency

    def flush_policy(
        self,
        headroom: float | None = None,
        batch_limit: int | None = None,
        delay_limit: float | None = None,
    ) -> FlushPolicy:
        """The flush policy enforcing this contract, composing both
        limits: flush once the most urgent pending request is within
        ``headroom`` seconds of its deadline (default: a tenth of the
        p99 bound — the miss-budget half) *or* once the oldest pending
        request has aged ``delay_limit`` seconds (default: half the
        p99 bound — the latency half, keeping batch-fill wait inside
        the p99 promise at low offered load), with an optional batch
        cap."""
        if headroom is None:
            headroom = self.p99_latency / 10.0
        if delay_limit is None:
            delay_limit = self.p99_latency / 2.0
        return FlushPolicy(
            batch_limit=batch_limit,
            delay_limit=delay_limit,
            deadline_headroom=headroom,
        )

    def describe(self) -> str:
        return (
            f"p99 <= {self.p99_latency:g} s, "
            f"miss rate <= {self.deadline_miss_budget:.2%}"
        )

    def __repr__(self) -> str:
        return f"<SLO {self.describe()}>"
