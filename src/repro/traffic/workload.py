"""Multi-tenant workload mixes: what does each arrival submit?

A :class:`WorkloadMix` is the demand side of the traffic engine: a set
of :class:`Tenant` specs (traffic share, weight-matrix shape, QoS
priority, per-request deadline, token-bucket rate limit) plus the
seeded machinery to materialize each tenant's weights and draw the
per-arrival tenant sequence.  :meth:`WorkloadMix.zipf` mirrors the
serve-bench :func:`~repro.runtime.serving.synthetic_trace` — the same
four alternating shapes and 1/k popularity — so traffic-engine runs
are comparable with the replay benches.

:class:`TokenBucket` is the standard leaky-bucket admission gate: a
tenant with ``rate_limit=`` set only admits requests while its bucket
holds tokens (refilled continuously at the limit rate on the modelled
clock); over-limit arrivals are dropped at the front door and counted
as ``rate_limited`` by the engine, never reaching a core queue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


class TokenBucket:
    """Continuous-refill token bucket on the modelled clock.

    Starts full (``burst`` tokens); :meth:`admit` refills at ``rate``
    tokens/s up to ``burst``, then spends one token if available.
    Admission therefore never depends on host timing — only on the
    modelled arrival times fed in.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0.0:
            raise ConfigurationError(
                f"token bucket rate must be positive [req/s], got {rate}"
            )
        if burst < 1.0:
            raise ConfigurationError(
                f"token bucket burst must be >= 1 token, got {burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = self.burst
        self._refilled_at = 0.0

    def admit(self, now: float) -> bool:
        """Refill to ``now`` and take one token; False = over limit."""
        if now > self._refilled_at:
            self._tokens = min(
                self.burst,
                self._tokens + (now - self._refilled_at) * self.rate,
            )
            self._refilled_at = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"<TokenBucket {self.rate:g} req/s, "
            f"{self._tokens:.1f}/{self.burst:g} tokens>"
        )


@dataclass(frozen=True)
class Tenant:
    """One tenant's traffic contract.

    ``share`` is its fraction of the arrival stream (normalized across
    the mix); ``shape`` the (out, in) weight matrix it serves;
    ``priority`` rides the cluster QoS path; ``deadline_s`` stamps
    every request (None = best effort); ``rate_limit`` [req/s] gates
    admission through a :class:`TokenBucket` of ``burst`` tokens
    (None = unlimited).
    """

    name: str
    share: float
    shape: tuple[int, int]
    priority: int = 0
    deadline_s: float | None = None
    rate_limit: float | None = None
    burst: float | None = None

    def __post_init__(self) -> None:
        if self.share <= 0.0:
            raise ConfigurationError(
                f"tenant {self.name!r} needs a positive traffic share, "
                f"got {self.share}"
            )
        if len(self.shape) != 2 or any(int(d) < 1 for d in self.shape):
            raise ConfigurationError(
                f"tenant {self.name!r} shape must be a positive "
                f"(out, in) pair, got {self.shape!r}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ConfigurationError(
                f"tenant {self.name!r} deadline_s must be positive "
                f"(or None for best effort), got {self.deadline_s}"
            )
        if self.rate_limit is not None and self.rate_limit <= 0.0:
            raise ConfigurationError(
                f"tenant {self.name!r} rate_limit must be positive "
                f"[req/s] (or None for unlimited), got {self.rate_limit}"
            )
        if self.burst is not None and self.rate_limit is None:
            raise ConfigurationError(
                f"tenant {self.name!r} sets burst without rate_limit"
            )

    def bucket(self) -> TokenBucket | None:
        """A fresh admission bucket (None when unlimited)."""
        if self.rate_limit is None:
            return None
        burst = self.burst if self.burst is not None else self.rate_limit
        return TokenBucket(self.rate_limit, max(burst, 1.0))


class WorkloadMix:
    """A normalized set of tenants plus seeded sampling machinery."""

    def __init__(self, tenants: tuple[Tenant, ...], max_weight: int = 7) -> None:
        tenants = tuple(tenants)
        if not tenants:
            raise ConfigurationError("a workload mix needs at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"tenant names must be unique, got {names}"
            )
        if max_weight < 1:
            raise ConfigurationError(
                f"max_weight must be >= 1, got {max_weight}"
            )
        self.tenants = tenants
        self.max_weight = int(max_weight)
        total = sum(tenant.share for tenant in tenants)
        self.shares = np.array(
            [tenant.share / total for tenant in tenants]
        )

    @classmethod
    def zipf(
        cls,
        tenants: int = 4,
        rows: int = 8,
        columns: int = 8,
        deadline_s: float | None = None,
        max_weight: int = 7,
    ) -> "WorkloadMix":
        """The serve-bench trace as a mix: tenant ``k`` gets popularity
        1/(k+1) and the same four alternating shapes as
        :func:`~repro.runtime.serving.synthetic_trace` (tile-native,
        smaller-than-tile, tiled, tall), so cache behaviour matches the
        replay benches.  ``deadline_s`` stamps every tenant uniformly
        (None = best effort)."""
        if tenants < 1:
            raise ConfigurationError(
                f"need at least one tenant, got {tenants}"
            )
        shapes = [
            (rows, columns),
            (max(rows // 2, 1), max(columns - 2, 1)),
            (rows + rows // 2, columns + columns // 2),
            (2 * rows + 1, columns),
        ]
        return cls(
            tuple(
                Tenant(
                    name=f"tenant-{index}",
                    share=1.0 / (index + 1),
                    shape=shapes[index % len(shapes)],
                    deadline_s=deadline_s,
                )
                for index in range(int(tenants))
            ),
            max_weight=max_weight,
        )

    def materialize(self, rng: np.random.Generator) -> list[np.ndarray]:
        """Each tenant's served weight matrix, drawn once per run."""
        return [
            rng.integers(0, self.max_weight + 1, tenant.shape)
            for tenant in self.tenants
        ]

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` tenant indices drawn by popularity share."""
        if n < 0:
            raise ConfigurationError(f"sample count must be >= 0, got {n}")
        return rng.choice(len(self.tenants), size=int(n), p=self.shares)

    def input_pool(
        self, rng: np.random.Generator, per_tenant: int = 256
    ) -> list[np.ndarray]:
        """A recycled pool of input vectors per tenant (row ``i % pool``
        serves request ``i``), so a million-request run costs pool-size
        RNG draws instead of one per arrival."""
        if per_tenant < 1:
            raise ConfigurationError(
                f"input pool size must be >= 1, got {per_tenant}"
            )
        return [
            rng.uniform(0.0, 1.0, (int(per_tenant), tenant.shape[1]))
            for tenant in self.tenants
        ]

    def describe(self) -> str:
        limited = sum(
            1 for tenant in self.tenants if tenant.rate_limit is not None
        )
        with_deadline = sum(
            1 for tenant in self.tenants if tenant.deadline_s is not None
        )
        return (
            f"{len(self.tenants)} tenants "
            f"({with_deadline} with deadlines, {limited} rate-limited)"
        )

    def __repr__(self) -> str:
        return f"<WorkloadMix {self.describe()}>"
