"""Capacity search: the highest sustained offered load meeting an SLO.

:func:`find_capacity` binary-searches the offered-load axis of an
arrival process (via :meth:`ArrivalProcess.scaled
<repro.traffic.arrivals.ArrivalProcess.scaled>`): starting from the
base rate it doubles until the :class:`~repro.traffic.slo.SLO` first
fails (or halves until it first passes), then bisects the bracket to
``resolution``.  Every trial replays the *same* seeded workload
through a **fresh** target from ``target_factory`` — capacity at rate
r must not inherit backlog or cache state from the rate-2r trial —
and the returned record keeps the full trial history, so a capacity
curve is auditable point by point.

This is the measurement behind ``serve-bench traffic``'s
``BENCH_traffic.json`` capacity curves (sustained req/s vs core count
and routing policy).
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import ConfigurationError
from .arrivals import ArrivalProcess
from .engine import TrafficEngine
from .slo import SLO
from .workload import WorkloadMix


def find_capacity(
    target_factory: Callable[[], object],
    workload: WorkloadMix,
    arrivals: ArrivalProcess,
    slo: SLO,
    requests: int = 2000,
    seed: int = 2025,
    resolution: float = 0.05,
    max_doublings: int = 16,
) -> dict:
    """The highest sustained offered rate [req/s] meeting ``slo``.

    ``target_factory`` builds one fresh session/cluster per trial
    (constructed with ``clock=ModelClock()`` and metrics — see
    :class:`~repro.traffic.engine.TrafficEngine`).  Returns a dict
    with ``capacity_per_s`` (the highest passing rate; 0.0 when even
    the lowest probed rate fails), ``sustained`` (that rate's full run
    summary, None when nothing passed), and ``trials`` (every probe's
    offered rate, p99, miss rate and verdict, in probe order).
    """
    if not isinstance(slo, SLO):
        raise ConfigurationError(
            f"capacity search needs a repro.traffic.SLO, "
            f"got {type(slo).__name__}"
        )
    if not 0.0 < resolution < 1.0:
        raise ConfigurationError(
            f"resolution must be a fraction in (0, 1), got {resolution}"
        )
    if max_doublings < 1:
        raise ConfigurationError(
            f"max_doublings must be >= 1, got {max_doublings}"
        )

    trials: list[dict] = []

    def trial(factor: float) -> dict:
        engine = TrafficEngine(
            target_factory(),
            workload,
            arrivals.scaled(factor),
            slo=slo,
            seed=seed,
        )
        summary = engine.run(requests)
        trials.append(
            {
                "factor": factor,
                "offered_rate_per_s": summary["offered_rate_per_s"],
                "p99_e2e_s": summary["p99_e2e_s"],
                "miss_rate": summary["miss_rate"],
                "slo_met": summary["slo_met"],
            }
        )
        return summary

    # Phase 1 — bracket the knee: double while passing / halve while
    # failing, bounded by max_doublings in either direction.
    factor = 1.0
    summary = trial(factor)
    best_factor = 0.0
    best_summary: dict | None = None
    if summary["slo_met"]:
        best_factor, best_summary = factor, summary
        for _ in range(max_doublings):
            candidate = factor * 2.0
            summary = trial(candidate)
            if not summary["slo_met"]:
                low, high = factor, candidate
                break
            factor = candidate
            best_factor, best_summary = factor, summary
        else:
            # Never failed: the target absorbs everything we offered.
            return {
                "capacity_per_s": best_factor * arrivals.mean_rate,
                "saturated": False,
                "sustained": best_summary,
                "trials": trials,
            }
    else:
        for _ in range(max_doublings):
            candidate = factor / 2.0
            summary = trial(candidate)
            if summary["slo_met"]:
                low, high = candidate, factor
                best_factor, best_summary = candidate, summary
                break
            factor = candidate
        else:
            # Even the lowest probed rate violates the SLO.
            return {
                "capacity_per_s": 0.0,
                "saturated": True,
                "sustained": None,
                "trials": trials,
            }

    # Phase 2 — bisect [low passes, high fails] down to resolution.
    while (high - low) / high > resolution:
        mid = (low + high) / 2.0
        summary = trial(mid)
        if summary["slo_met"]:
            low = mid
            best_factor, best_summary = mid, summary
        else:
            high = mid

    return {
        "capacity_per_s": best_factor * arrivals.mean_rate,
        "saturated": True,
        "sustained": best_summary,
        "trials": trials,
    }
