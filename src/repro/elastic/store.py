"""Content-addressed persistence of compiled weight programs and
per-core calibration state.

A compiled program is a pure function of (weights, core geometry, ADC
precision, technology, calibration epoch): everything
:class:`~repro.runtime.engine.CompiledCore` snapshots — the dense
response matrix, the exact bisected code ladders, the drift trims — is
already detached from the device.  :class:`ProgramStore` writes those
snapshots to disk as one ``.npz`` (arrays, lossless float64) plus one
JSON manifest (scalars, epoch, integrity metadata) per entry, keyed by
a blake2b digest of the cache key and a :func:`core_fingerprint` of
the compiling core, so a fresh session — or another process — restores
the program bit-for-bit instead of recompiling.

Integrity is checked on every load: a damaged manifest or array
payload raises :class:`~repro.errors.CorruptProgramError`, an entry
compiled under a different calibration epoch raises
:class:`~repro.errors.StaleProgramError` (its compensation snapshot no
longer describes the hardware trims).  Serving paths catch
:class:`~repro.errors.ProgramStoreError` and fall back to a cold
compile; the fresh program then overwrites the stale entry.

Calibration records travel separately (:meth:`ProgramStore.
save_calibration`): a small JSON file per core label holding the
drift epoch, compensation trims, and modelled age, so a replacement
core can adopt the fleet's calibration state before warm-starting
programs compiled under it — the persisted ADC register-map idiom of
deployable in-memory compute.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from ..config import Technology
from ..errors import ConfigurationError, CorruptProgramError, StaleProgramError
from ..health.drift import DriftState
from ..runtime.scheduler import CachedProgram
from ..runtime.tiling import DifferentialProgram, TiledMatmul

#: Manifest schema version; bumped on any layout change so old entries
#: are rejected as corrupt instead of misread.
STORE_FORMAT = 1

_KINDS = ("dense", "tiled", "differential")


def core_fingerprint(
    technology: Technology,
    rows: int,
    columns: int,
    weight_bits: int,
    adc_bits: int,
) -> str:
    """The identity of a compiling core, as a short stable digest.

    Two cores share a fingerprint exactly when a program compiled on
    one is valid on the other: same grid geometry, same weight/ADC
    precision, same technology parameters (the dataclass ``repr`` is a
    deterministic dump of every spec field).
    """
    payload = (
        f"{int(rows)}x{int(columns)}|w{int(weight_bits)}|a{int(adc_bits)}"
        f"|{technology!r}"
    )
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


def _flatten_arrays(state: dict[str, Any], prefix: str = "") -> dict[str, np.ndarray]:
    """Collect ``state["arrays"]`` under dotted ``prefix`` keys."""
    return {f"{prefix}{name}": array for name, array in state["arrays"].items()}


class ProgramStore:
    """A directory of persisted compiled programs + calibration records.

    Every public accessor either returns the requested object or
    raises a typed :class:`~repro.errors.ProgramStoreError` subclass;
    absence is ``None`` (a miss, not an error).  Counters
    (``saves``/``save_skips``/``restores``/``misses``/
    ``stale_rejects``/``corrupt_rejects``) make warm-start behaviour
    observable in tests and benches.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Entries written (excluding skipped already-present saves).
        self.saves = 0
        #: Saves skipped because a same-epoch entry already exists.
        self.save_skips = 0
        #: Programs successfully restored.
        self.restores = 0
        #: Lookups that found no entry.
        self.misses = 0
        #: Loads rejected for a calibration-epoch mismatch.
        self.stale_rejects = 0
        #: Loads rejected for damaged manifests/payloads.
        self.corrupt_rejects = 0

    # -- addressing ----------------------------------------------------------
    def digest(self, key: bytes, fingerprint: str) -> str:
        """Content address of one (cache key, core fingerprint) entry."""
        return hashlib.blake2b(
            fingerprint.encode() + b"|" + key, digest_size=16
        ).hexdigest()

    def _manifest_path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def _arrays_path(self, digest: str) -> Path:
        return self.root / f"{digest}.npz"

    def __len__(self) -> int:
        """Persisted program entries (manifest count)."""
        return sum(
            1
            for path in self.root.glob("*.json")
            if not path.name.startswith("calibration-")
        )

    def contains(self, key: bytes, fingerprint: str) -> bool:
        """Whether an entry exists (without validating it)."""
        return self._manifest_path(self.digest(key, fingerprint)).exists()

    # -- programs ------------------------------------------------------------
    def save(
        self,
        key: bytes,
        program: CachedProgram | TiledMatmul | DifferentialProgram,
        *,
        fingerprint: str,
    ) -> str:
        """Persist one compiled program; returns its digest.

        Content-addressed writes are idempotent: when a valid entry
        with the same calibration epoch already exists the write is
        skipped (``save_skips``), while a stale or damaged entry is
        overwritten atomically.
        """
        kind, epoch, state, extra = self._disassemble(program)
        digest = self.digest(key, fingerprint)
        existing = self._peek_epoch(digest)
        if existing is not None and existing == epoch:
            self.save_skips += 1
            return digest
        arrays = self._state_arrays(kind, state)
        manifest = {
            "format": STORE_FORMAT,
            "kind": kind,
            "digest": digest,
            "fingerprint": fingerprint,
            "calibration_epoch": epoch,
            "meta": self._state_meta(kind, state),
            "arrays": sorted(arrays),
            **extra,
        }
        arrays_path = self._arrays_path(digest)
        tmp_arrays = arrays_path.with_suffix(".npz.tmp")
        with open(tmp_arrays, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp_arrays, arrays_path)
        manifest_path = self._manifest_path(digest)
        tmp_manifest = manifest_path.with_suffix(".json.tmp")
        tmp_manifest.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(tmp_manifest, manifest_path)
        self.saves += 1
        return digest

    def load(
        self,
        key: bytes,
        *,
        fingerprint: str,
        epoch: int,
        technology: Technology,
        drift_state: DriftState | None = None,
    ) -> CachedProgram | TiledMatmul | DifferentialProgram | None:
        """Restore one compiled program, or ``None`` when absent.

        ``epoch`` is the requesting core's *current* calibration epoch;
        an entry persisted under any other epoch raises
        :class:`~repro.errors.StaleProgramError`.  ``drift_state``
        rebinds restored engines to the requesting core's live drift
        trajectory.  Damaged entries raise
        :class:`~repro.errors.CorruptProgramError`.
        """
        digest = self.digest(key, fingerprint)
        manifest_path = self._manifest_path(digest)
        if not manifest_path.exists():
            self.misses += 1
            return None
        manifest = self._read_manifest(manifest_path, digest)
        if int(manifest["calibration_epoch"]) != int(epoch):
            self.stale_rejects += 1
            raise StaleProgramError(
                f"store entry {digest} was compiled under calibration epoch "
                f"{manifest['calibration_epoch']}, core is at epoch {epoch}; "
                f"recompile (the fresh program overwrites this entry)"
            )
        arrays = self._read_arrays(digest, manifest)
        program = self._assemble(manifest, arrays, technology, drift_state)
        self.restores += 1
        return program

    # -- calibration records -------------------------------------------------
    def _calibration_path(self, label: str) -> Path:
        digest = hashlib.blake2b(label.encode(), digest_size=8).hexdigest()
        return self.root / f"calibration-{digest}.json"

    def save_calibration(self, label: str, state: DriftState) -> Path:
        """Persist one core's calibration state (epoch, compensation
        trims, modelled age) under ``label``; returns the record path."""
        compensation = state.compensation
        record = {
            "format": STORE_FORMAT,
            "label": label,
            "epoch": int(state.epoch),
            "elapsed_s": float(state.elapsed_s),
            "inferences": int(state.inferences),
            "compensation": [
                float(compensation.current_scale),
                float(compensation.gain_scale),
                float(compensation.voltage_offset),
            ],
        }
        path = self._calibration_path(label)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(record, indent=2) + "\n")
        os.replace(tmp, path)
        return path

    def load_calibration(self, label: str) -> dict[str, Any] | None:
        """The persisted calibration record for ``label``, or ``None``."""
        path = self._calibration_path(label)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self.corrupt_rejects += 1
            raise CorruptProgramError(
                f"calibration record for {label!r} is unreadable: {error}; "
                f"delete {path} and re-save"
            ) from error
        if (
            not isinstance(record, dict)
            or record.get("format") != STORE_FORMAT
            or not isinstance(record.get("compensation"), list)
            or len(record["compensation"]) != 3
        ):
            self.corrupt_rejects += 1
            raise CorruptProgramError(
                f"calibration record for {label!r} has an unexpected layout; "
                f"delete {path} and re-save"
            )
        return record

    def apply_calibration(self, label: str, state: DriftState) -> bool:
        """Load ``label``'s record into a live
        :class:`~repro.health.DriftState` (:meth:`~repro.health.
        DriftState.restore`); returns whether a record was found."""
        record = self.load_calibration(label)
        if record is None:
            return False
        state.restore(
            epoch=int(record["epoch"]),
            compensation=tuple(float(v) for v in record["compensation"]),
            elapsed_s=float(record["elapsed_s"]),
            inferences=int(record["inferences"]),
        )
        return True

    # -- (dis)assembly -------------------------------------------------------
    def _disassemble(
        self, program: CachedProgram | TiledMatmul | DifferentialProgram
    ) -> tuple[str, int, dict[str, Any], dict[str, Any]]:
        """``(kind, epoch, state, manifest extras)`` of one program."""
        if isinstance(program, CachedProgram):
            return (
                "dense",
                int(program.engine.calibration_epoch),
                program.engine.state_dict(),
                {
                    "load_energy": float(program.load_energy),
                    "load_time": float(program.load_time),
                },
            )
        if isinstance(program, DifferentialProgram):
            return (
                "differential",
                int(program.calibration_epoch),
                program.state_dict(),
                {},
            )
        if isinstance(program, TiledMatmul):
            return "tiled", int(program.calibration_epoch), program.state_dict(), {}
        raise ConfigurationError(
            f"ProgramStore can persist CachedProgram, TiledMatmul, or "
            f"DifferentialProgram, got {type(program).__name__}"
        )

    def _state_arrays(self, kind: str, state: dict[str, Any]) -> dict[str, np.ndarray]:
        if kind == "differential":
            arrays = _flatten_arrays(state["positive"], "positive.")
            if state["negative"] is not None:
                arrays.update(_flatten_arrays(state["negative"], "negative."))
            return arrays
        return _flatten_arrays(state)

    def _state_meta(self, kind: str, state: dict[str, Any]) -> dict[str, Any]:
        if kind == "differential":
            return {
                "positive": state["positive"]["meta"],
                "negative": None
                if state["negative"] is None
                else state["negative"]["meta"],
            }
        return dict(state["meta"])

    def _peek_epoch(self, digest: str) -> int | None:
        """The existing entry's epoch, or None when absent/unreadable."""
        path = self._manifest_path(digest)
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
            if manifest.get("format") != STORE_FORMAT:
                return None
            return int(manifest["calibration_epoch"])
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, ValueError):
            return None

    def _read_manifest(self, path: Path, digest: str) -> dict[str, Any]:
        try:
            manifest = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self.corrupt_rejects += 1
            raise CorruptProgramError(
                f"store manifest {path.name} is unreadable: {error}; "
                f"delete the entry and recompile"
            ) from error
        if not isinstance(manifest, dict) or manifest.get("format") != STORE_FORMAT:
            self.corrupt_rejects += 1
            raise CorruptProgramError(
                f"store manifest {path.name} has format "
                f"{manifest.get('format') if isinstance(manifest, dict) else '?'}, "
                f"expected {STORE_FORMAT}; delete the entry and recompile"
            )
        if manifest.get("kind") not in _KINDS:
            self.corrupt_rejects += 1
            raise CorruptProgramError(
                f"store manifest {path.name} names unknown kind "
                f"{manifest.get('kind')!r}; delete the entry and recompile"
            )
        if manifest.get("digest") != digest or "calibration_epoch" not in manifest:
            self.corrupt_rejects += 1
            raise CorruptProgramError(
                f"store manifest {path.name} does not describe entry {digest} "
                f"(digest/epoch fields missing or mismatched); delete the "
                f"entry and recompile"
            )
        return manifest

    def _read_arrays(self, digest: str, manifest: dict[str, Any]) -> dict[str, np.ndarray]:
        path = self._arrays_path(digest)
        try:
            with np.load(path, allow_pickle=False) as payload:
                arrays = {name: payload[name] for name in manifest["arrays"]}
        except FileNotFoundError as error:
            self.corrupt_rejects += 1
            raise CorruptProgramError(
                f"store entry {digest} has a manifest but no array payload "
                f"({path.name} missing); delete the entry and recompile"
            ) from error
        except (OSError, ValueError, KeyError) as error:
            self.corrupt_rejects += 1
            raise CorruptProgramError(
                f"store arrays {path.name} are unreadable or incomplete: "
                f"{error}; delete the entry and recompile"
            ) from error
        return arrays

    def _assemble(
        self,
        manifest: dict[str, Any],
        arrays: dict[str, np.ndarray],
        technology: Technology,
        drift_state: DriftState | None,
    ) -> CachedProgram | TiledMatmul | DifferentialProgram:
        from ..runtime.engine import CompiledCore

        kind = manifest["kind"]
        meta = manifest["meta"]
        try:
            if kind == "dense":
                engine = CompiledCore.from_state(
                    arrays, meta, technology, drift_state=drift_state
                )
                return CachedProgram(
                    engine=engine,
                    load_energy=float(manifest["load_energy"]),
                    load_time=float(manifest["load_time"]),
                )
            if kind == "tiled":
                return TiledMatmul.from_state(
                    arrays, meta, technology, drift_state=drift_state
                )
            positive = TiledMatmul.from_state(
                {
                    name[len("positive."):]: array
                    for name, array in arrays.items()
                    if name.startswith("positive.")
                },
                meta["positive"],
                technology,
                drift_state=drift_state,
            )
            negative = None
            if meta["negative"] is not None:
                negative = TiledMatmul.from_state(
                    {
                        name[len("negative."):]: array
                        for name, array in arrays.items()
                        if name.startswith("negative.")
                    },
                    meta["negative"],
                    technology,
                    drift_state=drift_state,
                )
            return DifferentialProgram(positive=positive, negative=negative)
        except (KeyError, IndexError, TypeError, ValueError) as error:
            self.corrupt_rejects += 1
            raise CorruptProgramError(
                f"store entry {manifest.get('digest')} ({kind}) could not be "
                f"reassembled: {error}; delete the entry and recompile"
            ) from error

    def describe(self) -> str:
        """One-line summary for logs and benches."""
        return (
            f"ProgramStore({self.root}, entries={len(self)}, "
            f"saves={self.saves}, restores={self.restores}, "
            f"stale={self.stale_rejects}, corrupt={self.corrupt_rejects})"
        )

    def __repr__(self) -> str:
        return f"<{self.describe()}>"
