"""The scaling policy: when a fleet grows, when it shrinks.

:class:`Autoscaler` is a pure decision object — it holds thresholds
and votes ``+1`` (grow), ``0`` (hold), or ``-1`` (shrink) over a
:class:`FleetSnapshot`; the cluster owns the machinery that acts on
the vote (``add_core`` warm-started from the program store, drain for
safe scale-down).  Keeping the policy side-effect free makes every
decision unit-testable and post-hoc explainable from the snapshot
alone.

The policy evaluates on an *event-count watermark* (``watch_every``
submits + flushes), mirroring :class:`~repro.health.HealthPolicy`'s
probe cadence: queue depth is only visible while submits outpace
flushes, while a fully idle fleet only ticks on flush/poll, so both
kinds of event advance the cadence.  Two guards prevent thrash:

* **hysteresis** — the grow threshold (``scale_up_pending`` pending
  requests per active core) sits strictly above the shrink threshold
  (``scale_down_pending``), so a fleet hovering between them holds;
* **cooldown** — after any scale event the policy holds for
  ``cooldown_s`` modelled seconds, long enough for the new capacity
  to drain the backlog before the next look.

:class:`CoreSpec` declares what a fleet slot *is* — grid geometry and
ADC precision — so heterogeneous fleets can mix big high-precision
cores with small cheap ones; the cluster's capability-aware router
places each program shape on the cheapest capable slot.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class CoreSpec:
    """One fleet slot's capabilities; ``None`` inherits the cluster
    default for that dimension."""

    #: Grid rows (output fan-out) of the slot's tensor core.
    rows: int | None = None
    #: Grid columns (input fan-in) of the slot's tensor core.
    columns: int | None = None
    #: eoADC precision [bits] of the slot's read-out.
    adc_bits: int | None = None
    #: pSRAM weight precision [bits] of the slot's cells.
    weight_bits: int | None = None

    def __post_init__(self) -> None:
        for name in ("rows", "columns", "adc_bits", "weight_bits"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(
                    f"CoreSpec.{name} must be >= 1 when given, got {value}"
                )

    def describe(self) -> str:
        """Compact ``16x16/a5`` style label (only explicit fields)."""
        grid = ""
        if self.rows is not None or self.columns is not None:
            grid = f"{self.rows or '*'}x{self.columns or '*'}"
        parts = [part for part in (
            grid,
            f"a{self.adc_bits}" if self.adc_bits is not None else "",
            f"w{self.weight_bits}" if self.weight_bits is not None else "",
        ) if part]
        return "/".join(parts) if parts else "default"


@dataclass(frozen=True)
class FleetSnapshot:
    """What the policy sees at one watermark — enough to reproduce
    (and audit) any decision after the fact."""

    #: Cores currently serving (excludes drained/parked slots).
    active_cores: int
    #: Requests pending across the whole fleet right now.
    pending: int
    #: Admission sheds since the previous decision.
    shed_delta: int
    #: Deadline misses since the previous decision.
    miss_delta: int
    #: Modelled time of this decision [s].
    now: float
    #: Modelled time of the last scale event, ``None`` before the first.
    last_scale_at: float | None = None


@dataclass(frozen=True)
class Autoscaler:
    """Grow/hold/shrink votes between ``min_cores`` and ``max_cores``.

    ============================  =============================================
    knob                          meaning
    ============================  =============================================
    ``min_cores``/``max_cores``   fleet size bounds (inclusive)
    ``watch_every``               fleet events (submits+flushes) per decision
    ``scale_up_pending``          grow at >= this many pending per active core
    ``scale_down_pending``        shrink at <= this many pending per active core
    ``shed_tolerance``            admission sheds per window that force growth
    ``miss_tolerance``            deadline misses per window that force growth
    ``cooldown_s``                modelled seconds to hold after a scale event
    ``spec``                      :class:`CoreSpec` grown slots are built with
    ============================  =============================================
    """

    min_cores: int = 1
    max_cores: int = 4
    watch_every: int = 4
    scale_up_pending: float = 8.0
    scale_down_pending: float = 1.0
    shed_tolerance: int = 0
    miss_tolerance: int = 0
    cooldown_s: float = 0.0
    spec: CoreSpec | None = None

    def __post_init__(self) -> None:
        if self.min_cores < 1:
            raise ConfigurationError(
                f"autoscaler min_cores must be >= 1, got {self.min_cores}"
            )
        if self.max_cores < self.min_cores:
            raise ConfigurationError(
                f"autoscaler max_cores ({self.max_cores}) must be >= "
                f"min_cores ({self.min_cores})"
            )
        if self.watch_every < 1:
            raise ConfigurationError(
                f"autoscaler watch_every must be >= 1 event, got {self.watch_every}"
            )
        if self.scale_up_pending <= self.scale_down_pending:
            raise ConfigurationError(
                f"autoscaler needs a hysteresis band: scale_up_pending "
                f"({self.scale_up_pending}) must exceed scale_down_pending "
                f"({self.scale_down_pending})"
            )
        if self.scale_down_pending < 0.0:
            raise ConfigurationError(
                f"autoscaler scale_down_pending must be >= 0, "
                f"got {self.scale_down_pending}"
            )
        if self.shed_tolerance < 0 or self.miss_tolerance < 0:
            raise ConfigurationError(
                f"autoscaler tolerances must be >= 0, got "
                f"shed={self.shed_tolerance}, miss={self.miss_tolerance}"
            )
        if self.cooldown_s < 0.0:
            raise ConfigurationError(
                f"autoscaler cooldown_s must be >= 0 s, got {self.cooldown_s}"
            )

    def decide(self, snapshot: FleetSnapshot) -> int:
        """``+1`` grow, ``-1`` shrink, ``0`` hold.

        Precedence: the ``min_cores`` floor is enforced even inside the
        cooldown window (a fleet below floor is misconfigured, not
        thrashing); otherwise the cooldown holds, then overload signals
        (pending per core at/over the grow threshold, or shed/miss
        deltas past tolerance) vote grow up to ``max_cores``, then a
        fully quiet window (pending at/under the shrink threshold, no
        sheds, no misses) votes shrink down to ``min_cores``.
        """
        active = snapshot.active_cores
        if active < self.min_cores:
            return 1
        last = snapshot.last_scale_at
        if last is not None and (snapshot.now - last) < self.cooldown_s:
            return 0
        per_core = snapshot.pending / active if active > 0 else float("inf")
        overloaded = (
            per_core >= self.scale_up_pending
            or snapshot.shed_delta > self.shed_tolerance
            or snapshot.miss_delta > self.miss_tolerance
        )
        if overloaded:
            return 1 if active < self.max_cores else 0
        quiet = (
            per_core <= self.scale_down_pending
            and snapshot.shed_delta == 0
            and snapshot.miss_delta == 0
        )
        if quiet and active > self.min_cores:
            return -1
        return 0

    def describe(self) -> str:
        """One-line policy summary for reports and benches."""
        spec = f", spec={self.spec.describe()}" if self.spec is not None else ""
        return (
            f"autoscale[{self.min_cores}..{self.max_cores}] "
            f"every {self.watch_every} flushes, "
            f"up@{self.scale_up_pending:g}/core "
            f"down@{self.scale_down_pending:g}/core, "
            f"cooldown {self.cooldown_s:g}s{spec}"
        )
