"""Elastic fleets: autoscaling, heterogeneous cores, and persisted
compiled-program state.

Compile is the dominant cold-start cost of this serving stack
(~15 ms/program, far higher for CNN engines), so growing a fleet is
only viable if a new core warm-starts from persisted state.  This
subsystem provides the three cooperating layers:

* :class:`ProgramStore` — content-addressed serialization of compiled
  weight programs (dense response matrices, exact bisected ADC
  ladders, tile layouts, drift-compensation snapshots and their
  ``calibration_epoch``) plus per-core calibration records, as
  ``.npz`` + JSON-manifest pairs keyed by a blake2b of
  weights/shape/ADC precision/technology.  The serving caches gain a
  write-through/read-back mode so a fresh
  :class:`~repro.api.PhotonicSession` — or another process — restores
  programs bit-for-bit without recompiling.
* :class:`Autoscaler` — a pure scaling policy attached via
  ``PhotonicCluster(autoscaler=)``: it watches pending-queue depth,
  shed rate, and deadline-miss rate on a flush-count watermark and
  votes grow/hold/shrink between ``min_cores``/``max_cores`` with
  hysteresis and a cooldown on the modelled clock.  The cluster acts
  on the vote with ``add_core`` (warm-started from the store) and the
  drain machinery (parking a core for safe scale-down).
* :class:`CoreSpec` — per-slot capabilities (grid size, ADC
  precision) for heterogeneous fleets; the cluster's capability-aware
  router places each program shape on the cheapest capable core.
"""

from .autoscaler import Autoscaler, CoreSpec, FleetSnapshot
from .store import STORE_FORMAT, ProgramStore, core_fingerprint

__all__ = [
    "Autoscaler",
    "CoreSpec",
    "FleetSnapshot",
    "ProgramStore",
    "core_fingerprint",
    "STORE_FORMAT",
]
