"""Parameter-sweep helpers for device characterization benches."""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError


def sweep_1d(func: Callable[[float], float], values: Sequence[float]) -> np.ndarray:
    """Evaluate ``func`` over ``values``; returns an array of results.

    ``func`` may return a scalar or an array (results are stacked).
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ConfigurationError("sweep needs at least one value")
    results = [func(float(value)) for value in values]
    return np.asarray(results)


def sweep_2d(
    func: Callable[[float, float], float],
    first: Sequence[float],
    second: Sequence[float],
) -> np.ndarray:
    """Evaluate ``func`` over the Cartesian grid first x second.

    Returns an array of shape (len(first), len(second)).
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.size == 0 or second.size == 0:
        raise ConfigurationError("sweep needs at least one value per axis")
    return np.asarray(
        [[func(float(a), float(b)) for b in second] for a in first]
    )


def wavelength_grid(center: float, half_span: float, points: int = 1001) -> np.ndarray:
    """A symmetric wavelength sweep grid around ``center`` [m]."""
    if half_span <= 0.0:
        raise ConfigurationError(f"half span must be positive, got {half_span}")
    if points < 3:
        raise ConfigurationError(f"need at least 3 points, got {points}")
    return np.linspace(center - half_span, center + half_span, points)
