"""Monte-Carlo variation analysis.

The paper motivates thermal tuning by the MRRs' sensitivity to
fabrication and environmental variation; the Monte-Carlo engine
quantifies that: it draws perturbation samples (ring trim residuals,
responsivity mismatch, reference-ladder errors), rebuilds a system per
sample via a user factory and aggregates a metric into yield numbers.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SummaryStatistics:
    """Aggregate view of a Monte-Carlo metric."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    percentile_5: float
    percentile_95: float

    @classmethod
    def from_samples(cls, samples) -> "SummaryStatistics":
        values = np.asarray(samples, dtype=float)
        if values.size == 0:
            raise ConfigurationError("cannot summarize zero samples")
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
            minimum=float(values.min()),
            maximum=float(values.max()),
            percentile_5=float(np.percentile(values, 5)),
            percentile_95=float(np.percentile(values, 95)),
        )


class MonteCarlo:
    """Seeded Monte-Carlo runner."""

    def __init__(self, seed: int = 12345) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def normal(self, sigma: float, size=None, rng: np.random.Generator | None = None):
        """Zero-mean normal perturbation samples.

        ``rng`` draws from an explicit generator instead of this
        runner's evolving stream, so a call site can be replayed
        bit-for-bit regardless of draws made before it.
        """
        if sigma < 0.0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        source = self._rng if rng is None else rng
        return source.normal(0.0, sigma, size=size)

    def run(
        self,
        build_and_measure: Callable[[np.random.Generator], float],
        trials: int,
        seed: int | None = None,
    ) -> list[float]:
        """Run ``trials`` independent builds; returns the metric samples.

        ``build_and_measure`` receives a per-trial child generator so
        each trial's randomness is independent yet reproducible.  By
        default the children spawn from this runner's evolving stream
        (two same-seed runners replay identically call for call);
        ``seed`` instead derives them from a fresh generator, pinning
        *this* call's draws bit-for-bit no matter what ran before it —
        the same explicit-``--seed`` convention the serve-bench CLI
        uses.
        """
        if trials < 1:
            raise ConfigurationError(f"need at least one trial, got {trials}")
        source = self._rng if seed is None else np.random.default_rng(seed)
        children = source.spawn(trials)
        return [float(build_and_measure(child)) for child in children]

    def yield_fraction(
        self,
        samples,
        passes: Callable[[float], bool],
    ) -> float:
        """Fraction of samples satisfying the pass predicate."""
        samples = list(samples)
        if not samples:
            raise ConfigurationError("cannot compute yield of zero samples")
        passed = sum(1 for sample in samples if passes(sample))
        return passed / len(samples)

    def confidence_interval_95(self, yield_fraction: float, trials: int) -> tuple[float, float]:
        """Normal-approximation 95% CI for a yield estimate."""
        if not 0.0 <= yield_fraction <= 1.0:
            raise ConfigurationError("yield must be in [0, 1]")
        if trials < 1:
            raise ConfigurationError("need at least one trial")
        half = 1.96 * math.sqrt(max(yield_fraction * (1.0 - yield_fraction), 0.0) / trials)
        return (max(0.0, yield_fraction - half), min(1.0, yield_fraction + half))
