"""Simulation engines: waveforms, transient co-simulation, sweeps, MC."""

from .montecarlo import MonteCarlo, SummaryStatistics
from .sweep import sweep_1d, sweep_2d
from .transient import FirstOrderLag, Recorder, TransientEngine
from .waveform import PulseTrain, StepSequence, Waveform

__all__ = [
    "FirstOrderLag",
    "MonteCarlo",
    "PulseTrain",
    "Recorder",
    "StepSequence",
    "SummaryStatistics",
    "sweep_1d",
    "sweep_2d",
    "TransientEngine",
    "Waveform",
]
