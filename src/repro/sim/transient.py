"""Fixed-step transient co-simulation scaffolding.

The mixed-signal systems in this package (pSRAM latch, eoADC) advance
per time step as: (1) update drive voltages, (2) propagate optical
powers quasi-statically with a first-order photon-lifetime lag on ring
responses, (3) integrate the electrical node ODEs.  The engine here
owns the time base and recording; each system supplies a step callback.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from ..errors import ConfigurationError, SimulationError
from .waveform import Waveform


class FirstOrderLag:
    """Single-pole tracker: state follows a target with time constant tau.

    Used for ring photon-lifetime response, injection-tuner carrier
    dynamics and TIA/amplifier settling.
    """

    def __init__(self, initial, time_constant: float) -> None:
        if time_constant <= 0.0:
            raise ConfigurationError(f"time constant must be positive, got {time_constant}")
        self.state = np.asarray(initial, dtype=float) * 1.0
        self.time_constant = time_constant

    def step(self, target, dt: float):
        """Advance toward ``target`` by ``dt``; returns the new state."""
        if dt <= 0.0:
            raise SimulationError(f"time step must be positive, got {dt}")
        alpha = 1.0 - math.exp(-dt / self.time_constant)
        self.state = self.state + (np.asarray(target, dtype=float) - self.state) * alpha
        return self.state

    def snap(self, value) -> None:
        """Force the state (initial conditions)."""
        self.state = np.asarray(value, dtype=float) * 1.0


class Recorder:
    """Collects named scalar signals sampled every engine step."""

    def __init__(self) -> None:
        self._times: list[float] = []
        self._signals: dict[str, list[float]] = {}

    def record(self, time: float, **signals: float) -> None:
        """Append one sample of each named signal."""
        self._times.append(time)
        for name, value in signals.items():
            self._signals.setdefault(name, []).append(float(value))
        for name, series in self._signals.items():
            if len(series) != len(self._times):
                raise SimulationError(
                    f"signal {name!r} missing a sample at t={time}; record every "
                    "signal on every step"
                )

    @property
    def signal_names(self) -> list[str]:
        return list(self._signals)

    def waveform(self, name: str) -> Waveform:
        """The recorded series for ``name`` as a :class:`Waveform`."""
        if name not in self._signals:
            raise SimulationError(f"no recorded signal named {name!r}")
        return Waveform(self._times, self._signals[name])

    def __len__(self) -> int:
        return len(self._times)


class TransientEngine:
    """Fixed-step driver for a mixed-signal step callback."""

    def __init__(self, time_step: float, duration: float) -> None:
        if time_step <= 0.0:
            raise ConfigurationError(f"time step must be positive, got {time_step}")
        if duration <= time_step:
            raise ConfigurationError("duration must exceed the time step")
        self.time_step = time_step
        self.duration = duration

    @property
    def step_count(self) -> int:
        return int(round(self.duration / self.time_step))

    def run(
        self,
        step: Callable[[float, float], dict[str, float]],
        recorder: Recorder | None = None,
    ) -> Recorder:
        """Run the simulation.

        ``step(t, dt)`` advances the system from ``t`` to ``t + dt`` and
        returns the named signals to record for that instant.  Returns
        the recorder with every signal's full history.
        """
        recorder = recorder if recorder is not None else Recorder()
        time = 0.0
        dt = self.time_step
        for _ in range(self.step_count):
            signals = step(time, dt)
            if not isinstance(signals, dict):
                raise SimulationError("step callback must return a dict of signals")
            recorder.record(time, **signals)
            time += dt
        return recorder
