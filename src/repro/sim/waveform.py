"""Waveform containers and stimulus builders.

:class:`Waveform` stores a sampled signal and provides the measurements
the paper's transient figures rely on (threshold crossings, settling,
final values).  :class:`PulseTrain` and :class:`StepSequence` build the
optical/electrical stimuli: 50 ps write pulses for Fig. 5, stepped
analog inputs for Fig. 9.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ConfigurationError, SimulationError


class Waveform:
    """A sampled time-domain signal."""

    def __init__(self, times: Sequence[float], values: Sequence[float]) -> None:
        self._times = np.asarray(times, dtype=float)
        self._values = np.asarray(values, dtype=float)
        if self._times.shape != self._values.shape:
            raise ConfigurationError("times and values must have matching shapes")
        if self._times.ndim != 1 or self._times.size == 0:
            raise ConfigurationError("waveform needs a non-empty 1-D time base")
        if np.any(np.diff(self._times) <= 0.0):
            raise ConfigurationError("time base must be strictly increasing")

    @property
    def times(self) -> np.ndarray:
        return self._times.copy()

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    @property
    def duration(self) -> float:
        return float(self._times[-1] - self._times[0])

    def value_at(self, time: float) -> float:
        """Linear interpolation of the waveform at ``time``."""
        return float(np.interp(time, self._times, self._values))

    def final_value(self) -> float:
        return float(self._values[-1])

    def crossings(self, threshold: float, rising: bool | None = None) -> list[float]:
        """Times where the signal crosses ``threshold``.

        ``rising`` selects edge direction (None = both).  Crossing times
        are linearly interpolated between samples.
        """
        above = self._values >= threshold
        times: list[float] = []
        for index in range(1, len(above)):
            if above[index] == above[index - 1]:
                continue
            edge_rising = above[index]
            if rising is not None and edge_rising != rising:
                continue
            v0, v1 = self._values[index - 1], self._values[index]
            t0, t1 = self._times[index - 1], self._times[index]
            fraction = (threshold - v0) / (v1 - v0)
            times.append(float(t0 + fraction * (t1 - t0)))
        return times

    def settling_time(self, target: float, tolerance: float) -> float:
        """Time after which the signal stays within ``tolerance`` of
        ``target`` until the end of the record.

        Raises :class:`SimulationError` if the signal never settles.
        """
        inside = np.abs(self._values - target) <= tolerance
        if not inside[-1]:
            raise SimulationError("signal does not end inside the settling band")
        # Last sample outside the band marks the settling boundary.
        outside = np.nonzero(~inside)[0]
        if outside.size == 0:
            return float(self._times[0])
        return float(self._times[outside[-1] + 1])

    def window(self, start: float, end: float) -> "Waveform":
        """Sub-waveform with start <= t <= end."""
        if end <= start:
            raise ConfigurationError("window must be increasing")
        mask = (self._times >= start) & (self._times <= end)
        if not np.any(mask):
            raise ConfigurationError("window contains no samples")
        return Waveform(self._times[mask], self._values[mask])


class PulseTrain:
    """Sum of rectangular pulses: level(t) = baseline + active pulses."""

    def __init__(self, baseline: float = 0.0) -> None:
        self.baseline = baseline
        self._pulses: list[tuple[float, float, float]] = []

    def add_pulse(self, start: float, width: float, amplitude: float) -> "PulseTrain":
        """Add a rectangular pulse; returns self for chaining."""
        if width <= 0.0:
            raise ConfigurationError(f"pulse width must be positive, got {width}")
        self._pulses.append((start, width, amplitude))
        return self

    def level_at(self, time: float) -> float:
        """Instantaneous level at ``time``."""
        level = self.baseline
        for start, width, amplitude in self._pulses:
            if start <= time < start + width:
                level += amplitude
        return level

    def __call__(self, time: float) -> float:
        return self.level_at(time)

    @property
    def pulse_count(self) -> int:
        return len(self._pulses)


class StepSequence:
    """Piecewise-constant stimulus: one level per equal period.

    The Fig. 9 eoADC transient applies analog levels 0.72 V, 2.0 V,
    3.3 V for one 125 ps sample period each.
    """

    def __init__(self, levels: Sequence[float], period: float, start: float = 0.0) -> None:
        if period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if len(levels) == 0:
            raise ConfigurationError("step sequence needs at least one level")
        self.levels = [float(level) for level in levels]
        self.period = period
        self.start = start

    def level_at(self, time: float) -> float:
        """Level applied at ``time``; clamps to first/last level outside."""
        index = int((time - self.start) // self.period)
        index = min(max(index, 0), len(self.levels) - 1)
        return self.levels[index]

    def __call__(self, time: float) -> float:
        return self.level_at(time)

    @property
    def duration(self) -> float:
        return self.period * len(self.levels)

    def sample_times(self, offset_fraction: float = 1.0) -> list[float]:
        """One sampling instant per level, at ``offset_fraction`` of the
        period (1.0 = sample at the end of each period, just before the
        next step)."""
        if not 0.0 < offset_fraction <= 1.0:
            raise ConfigurationError("offset fraction must be in (0, 1]")
        epsilon = 1e-4 * self.period
        return [
            self.start + (index + offset_fraction) * self.period - epsilon
            for index in range(len(self.levels))
        ]
