"""cProfile hooks: where does the *wall-clock* go?

The modelled clock says where a request spends its modelled time; this
module answers the complementary question — which Python functions burn
the host CPU while serving — so optimization PRs (the fused fleet hot
path, the discrete-event traffic engine) start from a measured
baseline instead of a guess.  ``serve-bench <scenario> --profile``
wraps the run in :func:`profile_call` and lands the top-N ranking in
the scenario's ``BENCH_*.json``.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from collections.abc import Callable, Sequence
from typing import Any

from ..errors import ConfigurationError


def wall_clock() -> float:
    """The sanctioned host wall-clock read [s]: a monotonic timestamp
    for measuring *real* elapsed time (bench throughput, flush-policy
    deadline ages).

    Everything on the serving stack accounts modelled time through
    :class:`~repro.telemetry.ModelClock`; the few places that
    legitimately need the host clock — wall-clock benchmark timing and
    real-time flush deadlines — read it through this single accessor
    so the ``modelled-clock-purity`` lint rule can forbid ``time.*``
    everywhere else.  Only differences are meaningful (the epoch is
    arbitrary), exactly like :func:`time.perf_counter`.
    """
    return time.perf_counter()


def top_hot_functions(stats: pstats.Stats, top: int = 20) -> list[dict]:
    """The ``top`` hottest functions by cumulative time.

    Each row is ``{"function", "calls", "tottime_s", "cumtime_s"}``
    with ``function`` in the familiar ``file:line(name)`` form;
    profiler bookkeeping frames are kept (they are part of the truth),
    but the list is dominated by real serving frames in practice.
    """
    if top < 1:
        raise ConfigurationError(f"need top >= 1 functions, got {top}")
    rows = []
    for (filename, line, name), entry in stats.stats.items():
        call_count, _, tottime, cumtime, _ = entry
        location = f"{filename}:{line}({name})"
        if filename == "~":                     # builtins: ~:0(<len>)
            location = name
        rows.append(
            {
                "function": location,
                "calls": int(call_count),
                "tottime_s": float(tottime),
                "cumtime_s": float(cumtime),
            }
        )
    rows.sort(key=lambda row: (-row["cumtime_s"], -row["tottime_s"]))
    return rows[: int(top)]


def profile_call(fn: Callable[[], Any], top: int = 20) -> tuple[Any, list[dict]]:
    """Run ``fn()`` under cProfile; returns ``(result, rows)`` where
    ``rows`` is :func:`top_hot_functions` of the run."""
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    return result, top_hot_functions(pstats.Stats(profiler), top=top)


def format_profile(rows: Sequence[dict]) -> str:
    """The hot-function ranking as an aligned text table."""
    lines = [
        f"profile (top {len(rows)} by cumulative time):",
        f"{'cumtime s':>10}  {'tottime s':>10}  {'calls':>9}  function",
    ]
    for row in rows:
        lines.append(
            f"{row['cumtime_s']:>10.4f}  {row['tottime_s']:>10.4f}  "
            f"{row['calls']:>9}  {row['function']}"
        )
    return "\n".join(lines)
