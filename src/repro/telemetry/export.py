"""The shared ``to_dict()`` / ``to_json()`` export of every report type.

RunReport, ClusterReport, HealthReport and the scheduler stats are all
frozen dataclasses; :class:`ReportExport` gives them one JSON-ready
export so benches and dashboards never hand-roll field lists.  The
conversion handles what ``dataclasses.asdict`` does not: numpy scalars
and arrays, nested report dataclasses inside tuples, and None-valued
optional sections.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

import numpy as np


def to_serializable(value: Any) -> Any:
    """Recursively convert a report value into JSON-ready primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_serializable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(key): to_serializable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_serializable(item) for item in value]
    return value


class ReportExport:
    """Mixin: ``to_dict()`` / ``to_json()`` for report dataclasses."""

    def to_dict(self) -> dict:
        """Every field as JSON-ready primitives (nested reports become
        nested dicts, numpy values become Python scalars/lists)."""
        return to_serializable(self)

    def to_json(self, indent: int | None = None) -> str:
        """The :meth:`to_dict` payload serialized to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)
