"""Counters, gauges and log-binned latency histograms.

The serving ledgers (:class:`~repro.api.futures.RunReport`) report
totals; a :class:`MetricsRegistry` adds the *distributional* view —
most importantly :class:`Histogram`, a fixed log-spaced-bin latency
histogram with p50/p95/p99/p999 quantile queries that stays O(bins)
no matter how many requests it absorbs, and merges across cores
bin-for-bin (the fleet quantile story of
:class:`~repro.api.ClusterReport`).

Modelled latencies span ~ns (one ADC sample period) to ~s (long drift
benches), so the default bin layout covers 1 ns .. 1000 s at 16 bins
per decade — a <= ~7.5 % relative quantile error, constant memory.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError

#: The quantile points every summary reports, in order.
QUANTILE_POINTS = (0.5, 0.95, 0.99, 0.999)

#: Summary-dict keys of :data:`QUANTILE_POINTS`, in the same order.
QUANTILE_KEYS = ("p50", "p95", "p99", "p999")


def quantiles_from_samples(samples: Sequence[float] | np.ndarray) -> dict | None:
    """Exact quantile summary of a sample list (one flush window).

    Returns the same dict shape as :meth:`Histogram.summary` —
    ``{"count", "mean", "max", "p50", "p95", "p99", "p999"}`` — or
    None for an empty window, so callers never divide by zero.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        return None
    points = np.quantile(samples, QUANTILE_POINTS)
    summary = {
        "count": int(samples.size),
        "mean": float(samples.mean()),
        "max": float(samples.max()),
    }
    summary.update(
        (key, float(value)) for key, value in zip(QUANTILE_KEYS, points)
    )
    return summary


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter '{self.name}' only increases, got {amount}"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (queue depth, active cores, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Fixed log-spaced-bin histogram with quantile queries.

    Bins are geometric between ``lo`` and ``hi`` (``per_decade`` bins
    per factor of ten) plus underflow/overflow buckets; exact count,
    sum, min and max ride alongside, so ``mean``/``max`` are exact and
    quantiles are bin-interpolated (geometric within the landing bin)
    and clamped to the observed range.  Two histograms with the same
    layout merge by adding bin counts — the per-core → fleet rollup.
    """

    __slots__ = ("name", "lo", "hi", "per_decade", "_edges", "_counts",
                 "count", "total", "min", "max")

    def __init__(
        self,
        name: str,
        lo: float = 1e-9,
        hi: float = 1e3,
        per_decade: int = 16,
    ) -> None:
        if not (0.0 < lo < hi):
            raise ConfigurationError(
                f"histogram needs 0 < lo < hi, got lo={lo}, hi={hi}"
            )
        if per_decade < 1:
            raise ConfigurationError(
                f"need >= 1 bin per decade, got {per_decade}"
            )
        self.name = name
        self.lo = float(lo)
        self.hi = float(hi)
        self.per_decade = int(per_decade)
        decades = math.log10(self.hi / self.lo)
        bins = max(1, int(round(decades * self.per_decade)))
        self._edges = np.geomspace(self.lo, self.hi, bins + 1)
        # bins + underflow (index 0) + overflow (index -1)
        self._counts = np.zeros(bins + 2, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    @property
    def layout(self) -> tuple:
        """The bin layout key two histograms must share to merge."""
        return (self.lo, self.hi, self.per_decade)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def observe(self, value: float) -> None:
        self.observe_many((value,))

    def observe_many(self, values: Sequence[float] | np.ndarray) -> None:
        """Absorb a batch of observations in one vectorized pass."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        if np.any(values < 0.0):
            raise ConfigurationError(
                f"histogram '{self.name}' takes non-negative values, "
                f"got min {values.min():g}"
            )
        # searchsorted over the edges: 0 = underflow, len(edges) = overflow.
        self._counts += np.bincount(
            np.searchsorted(self._edges, values, side="right"),
            minlength=self._counts.size,
        )
        self.count += int(values.size)
        self.total += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (0..1), geometric-interpolated
        within the landing bin and clamped to the observed min/max.
        An empty histogram reports 0.0."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # The bounds are exact (min/max ride alongside the bins) — and
        # rank arithmetic gets them wrong when every observation sits
        # in one overflow bucket, so short-circuit before it.
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * self.count
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, rank, side="left"))
        index = min(index, self._counts.size - 1)
        if index == 0:                      # underflow bucket
            return self.min
        if index == self._counts.size - 1:  # overflow bucket
            return self.max
        low, high = self._edges[index - 1], self._edges[index]
        in_bin = self._counts[index]
        before = cumulative[index] - in_bin
        fraction = (rank - before) / in_bin if in_bin else 0.0
        value = low * (high / low) ** min(max(fraction, 0.0), 1.0)
        return float(min(max(value, self.min), self.max))

    def summary(self) -> dict | None:
        """The standard quantile summary dict (see
        :func:`quantiles_from_samples`); None when nothing was
        observed."""
        if self.count == 0:
            return None
        summary = {"count": self.count, "mean": self.mean, "max": self.max}
        summary.update(
            (key, self.quantile(point))
            for key, point in zip(QUANTILE_KEYS, QUANTILE_POINTS)
        )
        return summary

    def merge(self, other: "Histogram") -> None:
        """Add another histogram's observations into this one (bin
        layouts must match)."""
        if self.layout != other.layout:
            raise ConfigurationError(
                f"cannot merge histogram layouts {self.layout} and "
                f"{other.layout}"
            )
        self._counts += other._counts
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @classmethod
    def merged(
        cls, histograms: Iterable[Histogram | None], name: str | None = None
    ) -> Histogram | None:
        """One histogram absorbing a sequence of same-layout histograms
        — the per-core → fleet quantile rollup.  An empty sequence
        merges to None (the empty-fleet guard), as does a sequence
        whose members are all None."""
        histograms = [hist for hist in histograms if hist is not None]
        if not histograms:
            return None
        first = histograms[0]
        out = cls(
            name if name is not None else first.name,
            lo=first.lo,
            hi=first.hi,
            per_decade=first.per_decade,
        )
        for hist in histograms:
            out.merge(hist)
        return out

    def to_dict(self) -> dict:
        """Bin edges + counts + the summary, JSON-ready."""
        return {
            "name": self.name,
            "layout": {"lo": self.lo, "hi": self.hi,
                       "per_decade": self.per_decade},
            "summary": self.summary(),
            "edges": self._edges.tolist(),
            "counts": self._counts.tolist(),
        }

    def __repr__(self) -> str:
        return (
            f"<Histogram {self.name}: {self.count} observations, "
            f"p50 {self.quantile(0.5):.3g}>"
        )


class MetricsRegistry:
    """Named counters/gauges/histograms behind get-or-create lookups.

    One registry per core timeline (a cluster gives each core its own,
    plus a fleet registry for routed/shed counters); every family is
    get-or-create so instrumentation sites never coordinate
    construction.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, **layout: float) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, **layout)
        return metric

    @property
    def names(self) -> list[str]:
        return sorted(
            [*self._counters, *self._gauges, *self._histograms]
        )

    @property
    def counters(self) -> tuple[Counter, ...]:
        """Every counter, name-sorted (the exporters' iteration order)."""
        return tuple(
            metric for _, metric in sorted(self._counters.items())
        )

    @property
    def gauges(self) -> tuple[Gauge, ...]:
        """Every gauge, name-sorted."""
        return tuple(metric for _, metric in sorted(self._gauges.items()))

    @property
    def histograms(self) -> tuple[Histogram, ...]:
        """Every histogram, name-sorted."""
        return tuple(
            metric for _, metric in sorted(self._histograms.items())
        )

    def to_dict(self) -> dict:
        """Every metric's current state, JSON-ready (histograms export
        their summaries, not the raw bins)."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.summary()
                for name, metric in sorted(self._histograms.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms>"
        )
