"""The per-core telemetry binding the serving stack instruments against.

A :class:`Telemetry` ties together one core timeline's observability
state: the :class:`~repro.telemetry.ModelClock` its timestamps read,
the (optional, shared) :class:`~repro.telemetry.TraceRecorder` its
spans land in, the :class:`~repro.telemetry.MetricsRegistry` its
counters and latency histograms feed, and the per-flush latency window
behind :attr:`~repro.api.futures.RunReport.latency_quantiles`.

The binding is the *only* telemetry object the hot path ever touches,
and only behind a single ``is not None`` check — a session constructed
without ``trace=``/``metrics=`` holds ``telemetry = None`` and makes
zero telemetry calls, keeping the uninstrumented flush path bit-for-bit
identical to the pre-telemetry stack.
"""

from __future__ import annotations

from collections.abc import Sequence

from .clock import ModelClock
from .metrics import Histogram, MetricsRegistry, quantiles_from_samples
from .trace import TraceRecorder

#: Histogram names of the two per-request latency distributions.
QUEUE_WAIT_HISTOGRAM = "queue_wait_s"
END_TO_END_HISTOGRAM = "end_to_end_s"
#: Histogram name of the per-request service-time distribution
#: (end-to-end minus queue wait); recorded per tenant label only.
SERVICE_TIME_HISTOGRAM = "service_s"


def tenant_histogram_name(base: str, tenant: str) -> str:
    """The per-tenant variant of a latency histogram name — one
    histogram per (distribution, tenant label) in the registry."""
    return f"{base}/{tenant}"


def merged_tenant_quantiles(
    bindings: Sequence[Telemetry],
) -> dict | None:
    """Per-tenant latency split merged bin-for-bin across bindings.

    Quantiles are not additive, so the per-core → fleet rollup happens
    at the histogram level: every binding's per-tenant queue-wait /
    service-time histograms merge (:meth:`Histogram.merged`) before
    summarizing.  Returns ``{tenant: {"queue_wait": summary,
    "service": summary}}``, or None when no labelled request resolved
    anywhere — the shape behind
    :attr:`repro.api.RunReport.tenant_quantiles`,
    :attr:`repro.api.ClusterReport.tenant_quantiles` and the traffic
    engine's ``"tenants"`` summary entry.
    """
    prefix = QUEUE_WAIT_HISTOGRAM + "/"
    tenants: set[str] = set()
    for binding in bindings:
        for name in binding.metrics.names:
            if name.startswith(prefix):
                tenants.add(name[len(prefix):])
    if not tenants:
        return None
    merged: dict[str, dict] = {}
    for tenant in sorted(tenants):
        wait = Histogram.merged(
            [
                binding.metrics.histogram(
                    tenant_histogram_name(QUEUE_WAIT_HISTOGRAM, tenant)
                )
                for binding in bindings
            ],
            name=tenant_histogram_name(QUEUE_WAIT_HISTOGRAM, tenant),
        )
        service = Histogram.merged(
            [
                binding.metrics.histogram(
                    tenant_histogram_name(SERVICE_TIME_HISTOGRAM, tenant)
                )
                for binding in bindings
            ],
            name=tenant_histogram_name(SERVICE_TIME_HISTOGRAM, tenant),
        )
        merged[tenant] = {
            "queue_wait": wait.summary() if wait is not None else None,
            "service": service.summary() if service is not None else None,
        }
    return merged


class Telemetry:
    """One core timeline's telemetry state.

    ``trace`` may be None (metrics without spans); ``metrics`` and
    ``clock`` default to fresh instances.  ``process``/``track`` name
    the Chrome trace tracks this binding emits onto — a cluster builds
    one binding per core, all sharing the recorder and process but each
    with its own clock and registry (cores digitize concurrently on
    independent modelled timelines).
    """

    def __init__(
        self,
        trace: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
        clock: ModelClock | None = None,
        process: str = "session",
        track: str = "core 0",
        pid: int | None = None,
    ) -> None:
        self.trace = trace
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock if clock is not None else ModelClock()
        self.pid = 0
        self.tid = 0
        self.tid_requests = 0
        if trace is not None:
            self.pid = pid if pid is not None else trace.process(process)
            self.tid = trace.thread(self.pid, track)
            # Requests live on a sibling track: their spans start at
            # submit time (before the flush span opens), so stacking
            # them on the core track would render as malformed nesting.
            self.tid_requests = trace.thread(self.pid, f"{track} requests")
        #: Per-flush latency window [s]; drained into the histograms
        #: and the flush's ``latency_quantiles`` by :meth:`drain_window`.
        self._window_wait: list[float] = []
        self._window_e2e: list[float] = []
        #: Per-tenant window split: label -> (queue waits, service
        #: times); drained into per-tenant histograms alongside the
        #: fleet-wide ones.
        self._window_tenants: dict[str, tuple[list[float], list[float]]] = {}

    # -- span / instant emission (no-ops without a recorder) -----------------
    def span(
        self,
        name: str,
        category: str,
        start_s: float,
        duration_s: float,
        args: dict | None = None,
    ) -> None:
        if self.trace is not None:
            self.trace.complete(
                name, category, self.pid, self.tid, start_s, duration_s, args
            )

    def instant(
        self, name: str, category: str, args: dict | None = None
    ) -> None:
        if self.trace is not None:
            self.trace.instant(
                name, category, self.pid, self.tid, self.clock.now, args
            )

    def request_span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        args: dict | None = None,
    ) -> None:
        """One request's submit → resolved lifecycle span, on the
        requests track."""
        if self.trace is not None:
            self.trace.complete(
                name,
                "request",
                self.pid,
                self.tid_requests,
                start_s,
                duration_s,
                args,
            )

    # -- per-request latency window ------------------------------------------
    def record_request(
        self,
        queue_wait_s: float,
        end_to_end_s: float,
        label: str | None = None,
    ) -> None:
        """Add one resolved request's modelled latencies to the current
        flush window (negative-clamped: a request submitted mid-flush
        never waited).  ``label`` additionally splits the request into
        that tenant's queue-wait / service-time histograms."""
        wait = max(queue_wait_s, 0.0)
        e2e = max(end_to_end_s, 0.0)
        self._window_wait.append(wait)
        self._window_e2e.append(e2e)
        if label is not None:
            bucket = self._window_tenants.get(label)
            if bucket is None:
                bucket = ([], [])
                self._window_tenants[label] = bucket
            bucket[0].append(wait)
            bucket[1].append(max(e2e - wait, 0.0))

    def drain_window(self) -> dict | None:
        """Close the flush window: feed the cumulative histograms and
        return the window's exact quantile summary (None for an empty
        window — a flush that resolved nothing reports no quantiles)."""
        if not self._window_e2e:
            return None
        waits, e2es = self._window_wait, self._window_e2e
        self._window_wait, self._window_e2e = [], []
        self.metrics.histogram(QUEUE_WAIT_HISTOGRAM).observe_many(waits)
        self.metrics.histogram(END_TO_END_HISTOGRAM).observe_many(e2es)
        if self._window_tenants:
            tenants, self._window_tenants = self._window_tenants, {}
            for label, (tenant_waits, tenant_services) in tenants.items():
                self.metrics.histogram(
                    tenant_histogram_name(QUEUE_WAIT_HISTOGRAM, label)
                ).observe_many(tenant_waits)
                self.metrics.histogram(
                    tenant_histogram_name(SERVICE_TIME_HISTOGRAM, label)
                ).observe_many(tenant_services)
        return {
            "queue_wait": quantiles_from_samples(waits),
            "end_to_end": quantiles_from_samples(e2es),
        }

    def tenant_quantiles(self) -> dict | None:
        """Per-tenant cumulative latency split — ``{tenant:
        {"queue_wait": summary, "service": summary}}`` from the
        per-tenant histograms; None before any labelled request
        resolved."""
        return merged_tenant_quantiles([self])

    def latency_quantiles(self) -> dict | None:
        """The cumulative latency quantile summary (histogram-derived),
        in the same shape as a flush window's; None before any request
        resolved."""
        e2e = self.metrics.histogram(END_TO_END_HISTOGRAM).summary()
        if e2e is None:
            return None
        return {
            "queue_wait": self.metrics.histogram(
                QUEUE_WAIT_HISTOGRAM
            ).summary(),
            "end_to_end": e2e,
        }

    def __repr__(self) -> str:
        return (
            f"<Telemetry t={self.clock.now:.3g} s, "
            f"trace={'on' if self.trace is not None else 'off'}, "
            f"{len(self._window_e2e)} window samples>"
        )
