"""The modelled clock every telemetry timestamp reads.

The serving stack accounts *modelled* time — ADC sample periods, pSRAM
weight-streaming, ladder re-bisection — not host wall-clock.  The drift
subsystem already ages cores on that modelled timeline
(:class:`repro.health.DriftState`); :class:`ModelClock` is the same
idea promoted to a first-class timestamp source so traces and latency
histograms line up with the energy/latency ledgers exactly.

A clock belongs to one core's timeline: cores of a cluster digitize
concurrently, so each core advances its own clock and the fleet
makespan is the maximum across clocks — mirroring
:meth:`repro.api.ClusterReport.fleet_latency`.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class ModelClock:
    """A monotonically advancing modelled-time counter [s].

    ``advance`` is called by the instrumented serving path with the
    modelled duration of whatever just happened (a batch of ADC
    conversions, a weight-program compile, an idle arrival gap); ``now``
    is the current modelled timestamp, starting at 0.0.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ConfigurationError(f"clock must start >= 0, got {start}")
        #: Current modelled time [s] since the clock was created.
        self.now = float(start)

    def advance(self, seconds: float) -> float:
        """Move modelled time forward; returns the new ``now``."""
        if seconds < 0.0:
            raise ConfigurationError(
                f"modelled time only advances, got {seconds}"
            )
        self.now += seconds
        return self.now

    def __repr__(self) -> str:
        return f"<ModelClock t={self.now:.3g} s>"
