"""Observability for the serving stack: tracing, metrics, profiling.

Photonic-accelerator claims live and die on measured
throughput/energy/latency comparisons; ``repro.telemetry`` turns the
serving benches from point estimates into auditable distributions:

* :class:`TraceRecorder` — typed spans on the **modelled** clock
  (:class:`ModelClock`): per-request lifecycle, per-flush and per-batch
  core spans, compile-vs-cache-hit, health probes, recalibrations,
  drains and sheds.  ``to_chrome()`` / ``save(path)`` emit Chrome
  trace-event JSON that opens directly in Perfetto.  Attach via
  ``PhotonicSession(trace=recorder)`` / ``PhotonicCluster(trace=...)``
  — with no recorder attached the serving path makes zero telemetry
  calls.
* :class:`MetricsRegistry` — named :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families; histograms use fixed log-spaced bins
  with p50/p95/p99/p999 quantile queries and merge bin-for-bin across
  cores.  :attr:`repro.api.RunReport.latency_quantiles` and
  :attr:`repro.api.ClusterReport.latency_quantiles` are fed from here.
* :func:`profile_call` / :func:`top_hot_functions` — cProfile hooks
  behind ``serve-bench <scenario> --profile``, ranking the hottest
  Python functions into the scenario's ``BENCH_*.json``.
* :func:`wall_clock` — the one sanctioned host-clock accessor; the
  ``modelled-clock-purity`` lint rule forbids ``time.*`` reads
  anywhere else in the stack.
* :class:`ReportExport` — the shared ``to_dict()`` / ``to_json()``
  mixin of every report dataclass.
"""

from .binding import (
    END_TO_END_HISTOGRAM,
    QUEUE_WAIT_HISTOGRAM,
    SERVICE_TIME_HISTOGRAM,
    Telemetry,
    merged_tenant_quantiles,
    tenant_histogram_name,
)
from .clock import ModelClock
from .export import ReportExport, to_serializable
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantiles_from_samples,
)
from .profiling import (
    format_profile,
    profile_call,
    top_hot_functions,
    wall_clock,
)
from .trace import CATEGORIES, TraceEvent, TraceRecorder

__all__ = [
    "CATEGORIES",
    "Counter",
    "END_TO_END_HISTOGRAM",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ModelClock",
    "QUEUE_WAIT_HISTOGRAM",
    "ReportExport",
    "SERVICE_TIME_HISTOGRAM",
    "Telemetry",
    "TraceEvent",
    "TraceRecorder",
    "format_profile",
    "merged_tenant_quantiles",
    "profile_call",
    "quantiles_from_samples",
    "tenant_histogram_name",
    "to_serializable",
    "top_hot_functions",
    "wall_clock",
]
