"""Typed span recording, exportable as Chrome trace-event JSON.

A :class:`TraceRecorder` collects the modelled-clock timeline of a
serving run: per-request lifecycle spans, per-flush and per-batch core
spans, weight-program compiles vs cache hits, and instant events for
health probes, recalibrations, drains/restores and admission sheds.
``to_chrome()`` emits the Chrome trace-event format (a dict with a
``traceEvents`` list), so ``recorder.save("trace.json")`` opens
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``
— processes are serving surfaces (a session, or one bench
configuration of a cluster sweep), threads are core timelines.

Timestamps are modelled seconds from the owning
:class:`~repro.telemetry.ModelClock`, exported in microseconds (the
Chrome format's native unit) — a trace of a Zipf replay therefore
shows *modelled* microseconds of ADC/pSRAM activity, not host
wall-clock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigurationError

#: Event categories the serving stack emits, for Perfetto filtering.
CATEGORIES = (
    "request",    # one submitted request, submit -> resolved
    "flush",      # one session flush draining every route
    "batch",      # one coalesced compiled evaluation
    "compile",    # weight-program pSRAM streaming (a cache miss)
    "cache",      # cache hits (instant)
    "health",     # probe checks and recalibrations
    "fleet",      # cluster-level events: sheds, drains, restores
)


@dataclass(frozen=True)
class TraceEvent:
    """One typed trace event on the modelled clock.

    ``phase`` follows the Chrome trace-event phases this recorder
    emits: ``"X"`` (complete span with a duration) and ``"i"``
    (instant).  ``start_s``/``duration_s`` are modelled seconds.
    """

    name: str
    category: str
    phase: str
    pid: int
    tid: int
    start_s: float
    duration_s: float = 0.0
    args: dict = field(default_factory=dict)

    def to_chrome(self) -> dict:
        event = {
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "pid": self.pid,
            "tid": self.tid,
            "ts": self.start_s * 1e6,
        }
        if self.phase == "X":
            event["dur"] = self.duration_s * 1e6
        elif self.phase == "i":
            event["s"] = "t"          # instant scoped to its thread
        if self.args:
            event["args"] = dict(self.args)
        return event


class TraceRecorder:
    """Collects :class:`TraceEvent` records from instrumented serving
    surfaces.

    One recorder can watch many surfaces at once: each
    :meth:`process` call allocates a Chrome ``pid`` (a session, or one
    cluster configuration of a bench sweep) and each :meth:`thread` a
    ``tid`` within it (one core's timeline, or the fleet control
    track).  The recorder is passive — surfaces with no recorder
    attached make zero telemetry calls.
    """

    def __init__(self, label: str = "repro") -> None:
        self.label = label
        self._events: list[TraceEvent] = []
        self._processes: dict[str, int] = {}
        self._threads: dict[tuple[int, str], int] = {}

    # -- track allocation ----------------------------------------------------
    def process(self, label: str) -> int:
        """The pid of a named process track, allocated on first use."""
        pid = self._processes.get(label)
        if pid is None:
            pid = self._processes[label] = len(self._processes) + 1
        return pid

    def thread(self, pid: int, label: str) -> int:
        """The tid of a named thread track within ``pid``."""
        key = (pid, label)
        tid = self._threads.get(key)
        if tid is None:
            tid = self._threads[key] = (
                sum(1 for existing, _ in self._threads if existing == pid) + 1
            )
        return tid

    # -- event emission ------------------------------------------------------
    def complete(
        self,
        name: str,
        category: str,
        pid: int,
        tid: int,
        start_s: float,
        duration_s: float,
        args: dict | None = None,
    ) -> None:
        """Record one complete span [start_s, start_s + duration_s]."""
        if duration_s < 0.0:
            raise ConfigurationError(
                f"span '{name}' needs a non-negative duration, "
                f"got {duration_s}"
            )
        self._events.append(
            TraceEvent(
                name=name,
                category=category,
                phase="X",
                pid=pid,
                tid=tid,
                start_s=start_s,
                duration_s=duration_s,
                args=args if args is not None else {},
            )
        )

    def instant(
        self,
        name: str,
        category: str,
        pid: int,
        tid: int,
        ts_s: float,
        args: dict | None = None,
    ) -> None:
        """Record one instant event at ``ts_s``."""
        self._events.append(
            TraceEvent(
                name=name,
                category=category,
                phase="i",
                pid=pid,
                tid=tid,
                start_s=ts_s,
                args=args if args is not None else {},
            )
        )

    # -- reading / exporting -------------------------------------------------
    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events_in(self, category: str) -> tuple[TraceEvent, ...]:
        """The recorded events of one category, in emission order."""
        return tuple(
            event for event in self._events if event.category == category
        )

    def to_chrome(self) -> dict:
        """The Chrome trace-event JSON object: metadata naming every
        process/thread track, then the events in emission order."""
        events: list[dict] = []
        for label, pid in self._processes.items():
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        for (pid, label), tid in self._threads.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        events.extend(event.to_chrome() for event in self._events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"recorder": self.label, "clock": "modelled"},
        }

    def save(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome()) + "\n")
        return path

    def __repr__(self) -> str:
        return (
            f"<TraceRecorder '{self.label}': {len(self._events)} events, "
            f"{len(self._processes)} processes>"
        )
