"""Command-line entry point: ``python -m repro [command]``.

Commands:

* ``summary`` (default) — the paper's 16x16 system performance summary
  and Table I comparison.
* ``demo`` — a quick 4x8 matrix-vector multiplication through the
  photonic path.
* ``adc`` — static eoADC conversions across the full-scale range.
* ``serve-bench [requests]`` — replay a synthetic multi-tenant trace
  through a :class:`repro.api.PhotonicSession` (max_batch flush
  policy, no hand-called flushes) and print throughput, batch-fill and
  cache statistics.
* ``serve-bench cnn [images]`` — replay a CNN feature-extraction
  stream (im2col convolutions of digit glyphs against a shared kernel
  bank) through the session's conv route.
* ``serve-bench cluster [requests]`` — replay the multi-tenant trace
  through :class:`repro.api.PhotonicCluster` fleets of 1/2/4 cores
  under every routing policy and write ``BENCH_cluster.json`` to the
  working directory.
* ``serve-bench drift [requests]`` — replay the trace through sessions
  whose analog stack drifts (thermal detuning, laser decay, TIA and
  comparator aging), sweeping drift severity x probe cadence x
  recalibration threshold, and write ``BENCH_drift.json``.
* ``serve-bench elastic [requests]`` — measure elastic fleets
  (:mod:`repro.elastic`): cold vs warm scale-up through a persisted
  program store (bit-for-bit checked) and diurnal/bursty tapes against
  static vs autoscaled fleets, and write ``BENCH_elastic.json``.
* ``lint [paths...]`` — run the :mod:`repro.lint` contract checker
  over ``src/`` (or explicit paths); ``--format json`` for the
  machine-readable findings, ``--baseline FILE`` to grandfather,
  ``--write-baseline`` to regenerate it, ``--catalog`` to print the
  rule catalog.  Exits 1 on any new finding.
* ``obs --trace T.json [--metrics M.json] [--alerts A.json]
  [--out out.html]`` — render the :mod:`repro.obs` dashboard from
  saved artifacts: a ``--trace`` dump, an optional metrics JSON and an
  optional alerts file (either a JSON list of alert dicts or a
  ``BENCH_drift.json`` whose ``incident`` section carries them).

Every serve-bench scenario shares one option parser
(:func:`_parse_serve_bench_options`): ``--seed N`` for a reproducible
trace, ``--smoke`` for a fast CI-sized run, ``--profile`` to wrap the
run in cProfile and print the hottest functions (also merged into the
scenario's ``BENCH_*.json`` where one is written),
``--trace out.json`` to dump the modelled-clock span timeline as
Chrome trace-event JSON (open it in Perfetto or ``chrome://tracing``),
and ``--dashboard out.html`` to render the run as a self-contained
HTML dashboard (latency quantile timelines, per-core utilization,
pending depth, cache hit rate, alert/incident markers; the drift
scenario also writes its incident bundle to ``INCIDENT_drift.json``).

Also installed as the ``repro`` console script (``repro serve-bench``).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np


def _summary(argv: list[str]) -> None:
    from .baselines.photonic_macros import format_table_one
    from .core.performance import PerformanceModel

    performance = PerformanceModel()
    print(performance.summary())
    print()
    print(format_table_one(performance))


def _demo(argv: list[str]) -> None:
    from .core.tensor_core import PhotonicTensorCore

    rng = np.random.default_rng(0)
    core = PhotonicTensorCore(rows=4, columns=8)
    core.load_weight_matrix(rng.integers(0, 8, (4, 8)))
    x = rng.uniform(0.0, 1.0, 8)
    result = core.matvec(x)
    print(f"input      : {np.round(x, 2)}")
    print(f"ADC codes  : {result.codes}")
    print(f"estimates  : {np.round(result.estimates, 2)}")
    print(f"exact W @ x: {np.round(core.ideal_matvec(x), 2)}")


def _adc(argv: list[str]) -> None:
    from .core.eoadc import EoAdc

    adc = EoAdc()
    print(f"{'V_IN (V)':>8}  {'code':>4}  bits")
    for v_in in np.linspace(0.1, 3.9, 12):
        code = adc.convert(float(v_in))
        print(f"{v_in:>8.2f}  {code:>4}  {code:03b}")


@dataclass
class _ServeBenchOptions:
    """The options every serve-bench scenario shares."""

    smoke: bool = False
    seed: int = 2025
    profile: bool = False
    trace_path: Path | None = None
    dashboard_path: Path | None = None


def _parse_serve_bench_options(argv: list[str]):
    """Parse the shared ``--seed`` / ``--smoke`` / ``--profile`` /
    ``--trace`` / ``--dashboard`` options out of a serve-bench
    argument list.

    One parser for every scenario, so a new shared option lands once
    instead of once per scenario.  Returns ``(options, remaining)``
    with the scenario-specific positionals left in ``remaining``, or
    ``(None, remaining)`` after printing the validation error (the
    caller exits 2).
    """
    args = list(argv)
    opts = _ServeBenchOptions()
    opts.smoke = "--smoke" in args
    if opts.smoke:
        args.remove("--smoke")
    opts.profile = "--profile" in args
    if opts.profile:
        args.remove("--profile")
    if "--seed" in args:
        at = args.index("--seed")
        if at + 1 >= len(args):
            print("serve-bench --seed expects an integer value")
            return None, args
        try:
            opts.seed = int(args[at + 1])
        except ValueError:
            print(f"serve-bench --seed expects an integer, got {args[at + 1]!r}")
            return None, args
        if opts.seed < 0:
            print(f"serve-bench --seed must be >= 0, got {opts.seed}")
            return None, args
        del args[at : at + 2]
    if "--trace" in args:
        at = args.index("--trace")
        if at + 1 >= len(args) or args[at + 1].startswith("--"):
            print("serve-bench --trace expects an output path")
            return None, args
        opts.trace_path = Path(args[at + 1])
        del args[at : at + 2]
    if "--dashboard" in args:
        at = args.index("--dashboard")
        if at + 1 >= len(args) or args[at + 1].startswith("--"):
            print("serve-bench --dashboard expects an output path")
            return None, args
        opts.dashboard_path = Path(args[at + 1])
        del args[at : at + 2]
    return opts, args


def _run_scenario(opts: _ServeBenchOptions, runner, json_path=None, **kwargs) -> int:
    """Run one serve-bench scenario under the shared observability
    options: attach a :class:`~repro.telemetry.TraceRecorder` for
    ``--trace`` / ``--dashboard``, wrap the run in cProfile for
    ``--profile`` (printing the hot-function ranking and merging it
    into the scenario's ``BENCH_*.json`` when one is written), and
    render the :mod:`repro.obs` dashboard for ``--dashboard`` (with
    alert/incident markers when the runner's summary carries an
    ``"incident"`` section, as the drift scenario's does)."""
    recorder = None
    if opts.trace_path is not None or opts.dashboard_path is not None:
        from .telemetry import TraceRecorder

        recorder = TraceRecorder(label="serve-bench")
    if json_path is not None:
        kwargs = {**kwargs, "json_path": json_path}

    def call():
        return runner(trace=recorder, **kwargs)

    if opts.profile:
        from .telemetry import format_profile, profile_call

        result, hot = profile_call(call)
        print(format_profile(hot))
        if json_path is not None:
            import json

            data = json.loads(Path(json_path).read_text())
            data["profile"] = hot
            Path(json_path).write_text(json.dumps(data, indent=2) + "\n")
            print(f"profile merged into: {json_path}")
    else:
        result = call()
    if recorder is not None and opts.trace_path is not None:
        recorder.save(opts.trace_path)
        print(f"trace written to: {opts.trace_path}")
    if opts.dashboard_path is not None:
        from .obs import save_dashboard

        incident = result.get("incident", {}) if isinstance(result, dict) else {}
        save_dashboard(
            opts.dashboard_path,
            trace=recorder,
            alerts=incident.get("alerts", ()),
            incidents=incident.get("incident_markers", ()),
        )
        print(f"dashboard written to: {opts.dashboard_path}")
    return 0


def _serve_bench(argv: list[str]) -> int:
    from .runtime.serving import (
        run_cluster_serve_bench,
        run_cnn_serve_bench,
        run_drift_serve_bench,
        run_elastic_serve_bench,
        run_serve_bench,
        run_traffic_serve_bench,
    )

    opts, args = _parse_serve_bench_options(argv)
    if opts is None:
        return 2
    smoke = opts.smoke

    if args and args[0] == "cnn":
        try:
            images = int(args[1]) if len(args) > 1 else (8 if smoke else 48)
        except ValueError:
            print(f"serve-bench cnn expects an image count, got {args[1]!r}")
            return 2
        if images < 1:
            print(f"serve-bench cnn image count must be >= 1, got {images}")
            return 2
        return _run_scenario(
            opts, run_cnn_serve_bench, images=images, seed=opts.seed
        )
    if args and args[0] == "drift":
        try:
            requests = int(args[1]) if len(args) > 1 else (24 if smoke else 240)
        except ValueError:
            print(f"serve-bench drift expects a request count, got {args[1]!r}")
            return 2
        if requests < 1:
            print(f"serve-bench drift request count must be >= 1, got {requests}")
            return 2
        sweep_kwargs = {}
        if smoke:
            # One severity, unmonitored vs tight auto-recal, with the
            # arrival spacing stretched so the short trace still spans
            # the same ~minute of modelled aging.
            sweep_kwargs = {
                "severities": (1.5,),
                "cadences": (0, 1),
                "thresholds": (0.05,),
                "arrival_period_s": 60.0 / requests,
            }
        if opts.dashboard_path is not None:
            # The CI artifact: the induced incident's bundle lands next
            # to BENCH_drift.json whenever a dashboard is rendered.
            sweep_kwargs["incident_path"] = Path.cwd() / "INCIDENT_drift.json"
        return _run_scenario(
            opts,
            run_drift_serve_bench,
            json_path=Path.cwd() / "BENCH_drift.json",
            requests=requests,
            seed=opts.seed,
            **sweep_kwargs,
        )
    if args and args[0] == "traffic":
        try:
            requests = int(args[1]) if len(args) > 1 else (20000 if smoke else 1_000_000)
        except ValueError:
            print(f"serve-bench traffic expects a request count, got {args[1]!r}")
            return 2
        if requests < 1:
            print(f"serve-bench traffic request count must be >= 1, got {requests}")
            return 2
        sweep_kwargs = {}
        if smoke:
            # Single-core curve only, short probe/trial tapes: the CI
            # smoke proves the plumbing, not the capacity numbers.
            sweep_kwargs = {
                "cores_sweep": (1, 2),
                "probe_requests": 800,
                "trial_requests": 600,
                "head_requests": 2000,
                "max_doublings": 3,
            }
        return _run_scenario(
            opts,
            run_traffic_serve_bench,
            json_path=Path.cwd() / "BENCH_traffic.json",
            requests=requests,
            seed=opts.seed,
            **sweep_kwargs,
        )
    if args and args[0] == "elastic":
        try:
            requests = int(args[1]) if len(args) > 1 else (3000 if smoke else 200_000)
        except ValueError:
            print(f"serve-bench elastic expects a request count, got {args[1]!r}")
            return 2
        if requests < 1:
            print(f"serve-bench elastic request count must be >= 1, got {requests}")
            return 2
        sweep_kwargs = {}
        if smoke:
            # Diurnal tape only, short probe, fewer warm programs: the
            # CI smoke proves the plumbing, not the capacity numbers.
            # The tighter deadline/SLO keep overload visible on a tape
            # too short for queueing delay to breach the full-size SLO.
            sweep_kwargs = {
                "tapes": ("diurnal",),
                "probe_requests": 800,
                "warm_programs": 3,
                "deadline_s": 1.2e-7,
                "p99_slo_s": 1.3e-7,
            }
        return _run_scenario(
            opts,
            run_elastic_serve_bench,
            json_path=Path.cwd() / "BENCH_elastic.json",
            requests=requests,
            seed=opts.seed,
            **sweep_kwargs,
        )
    if args and args[0] == "cluster":
        try:
            requests = int(args[1]) if len(args) > 1 else (24 if smoke else 240)
        except ValueError:
            print(f"serve-bench cluster expects a request count, got {args[1]!r}")
            return 2
        if requests < 1:
            print(f"serve-bench cluster request count must be >= 1, got {requests}")
            return 2
        return _run_scenario(
            opts,
            run_cluster_serve_bench,
            json_path=Path.cwd() / "BENCH_cluster.json",
            requests=requests,
            seed=opts.seed,
        )
    try:
        requests = int(args[0]) if args else (24 if smoke else 240)
    except ValueError:
        print(f"serve-bench expects a request count, got {args[0]!r}")
        return 2
    if requests < 0:
        print(f"serve-bench request count must be >= 0, got {requests}")
        return 2
    return _run_scenario(opts, run_serve_bench, requests=requests, seed=opts.seed)


def _obs(argv: list[str]) -> int:
    """Render the observability dashboard from saved artifacts."""
    import json

    from .errors import ConfigurationError
    from .obs import save_dashboard

    args = list(argv)

    def take_path(flag: str):
        if flag not in args:
            return None, False
        at = args.index(flag)
        if at + 1 >= len(args) or args[at + 1].startswith("--"):
            print(f"obs {flag} expects a file path")
            return None, True
        value = Path(args[at + 1])
        del args[at : at + 2]
        return value, False

    trace_path, bad = take_path("--trace")
    if bad:
        return 2
    metrics_path, bad = take_path("--metrics")
    if bad:
        return 2
    alerts_path, bad = take_path("--alerts")
    if bad:
        return 2
    out_path, bad = take_path("--out")
    if bad:
        return 2
    if args:
        print(f"obs: unknown argument(s) {args}")
        return 2
    if trace_path is None:
        print("obs expects --trace TRACE.json (a saved serve-bench --trace dump)")
        return 2
    if not trace_path.exists():
        print(f"obs: trace file not found: {trace_path}")
        return 2
    alerts: list = []
    incidents: list = []
    if alerts_path is not None:
        if not alerts_path.exists():
            print(f"obs: alerts file not found: {alerts_path}")
            return 2
        payload = json.loads(alerts_path.read_text())
        if isinstance(payload, dict) and "incident" in payload:
            payload = payload["incident"]
        if isinstance(payload, dict):
            alerts = list(payload.get("alerts", ()))
            incidents = list(payload.get("incident_markers", ()))
        else:
            alerts = list(payload)
    metrics = None
    if metrics_path is not None:
        if not metrics_path.exists():
            print(f"obs: metrics file not found: {metrics_path}")
            return 2
        metrics = json.loads(metrics_path.read_text())
    try:
        target = save_dashboard(
            out_path if out_path is not None else Path("DASHBOARD.html"),
            trace=trace_path,
            metrics=metrics,
            alerts=alerts,
            incidents=incidents,
        )
    except ConfigurationError as error:
        print(f"obs: {error}")
        return 2
    print(f"dashboard written to: {target}")
    return 0


def _lint(argv: list[str]) -> int:
    from .errors import ConfigurationError
    from .lint import BASELINE_FILE, all_rules, run_lint, write_baseline

    args = list(argv)
    output_format = "text"
    if "--format" in args:
        at = args.index("--format")
        if at + 1 >= len(args) or args[at + 1] not in ("text", "json"):
            print("lint --format expects 'text' or 'json'")
            return 2
        output_format = args[at + 1]
        del args[at : at + 2]
    if "--catalog" in args:
        for rule in all_rules():
            print(f"{rule.name} ({rule.severity})")
            print(f"  enforces : {rule.contract}")
            print(f"  why      : {rule.rationale}")
        return 0
    root = Path.cwd()
    baseline = root / BASELINE_FILE
    if "--baseline" in args:
        at = args.index("--baseline")
        if at + 1 >= len(args) or args[at + 1].startswith("--"):
            print("lint --baseline expects a file path")
            return 2
        baseline = Path(args[at + 1])
        del args[at : at + 2]
    regenerate = "--write-baseline" in args
    if regenerate:
        args.remove("--write-baseline")
    unknown = [arg for arg in args if arg.startswith("--")]
    if unknown:
        print(f"lint: unknown option(s) {unknown}")
        return 2
    try:
        run = run_lint(root, paths=args or None, baseline_path=baseline)
    except ConfigurationError as error:
        print(f"lint: {error}")
        return 2
    if regenerate:
        count = write_baseline(baseline, run)
        print(f"baseline written to {baseline} ({count} grandfathered findings)")
        return 0
    if output_format == "json":
        import json

        print(json.dumps(run.to_dict(), indent=2))
    else:
        print(run.render())
    return 1 if run.failed else 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    command = argv[0] if argv else "summary"
    commands = {
        "summary": _summary,
        "demo": _demo,
        "adc": _adc,
        "serve-bench": _serve_bench,
        "lint": _lint,
        "obs": _obs,
    }
    if command not in commands:
        print(f"unknown command {command!r}; choose from {sorted(commands)}")
        return 2
    status = commands[command](argv[1:])
    return 0 if status is None else status


if __name__ == "__main__":
    raise SystemExit(main())
