"""Command-line entry point: ``python -m repro [command]``.

Commands:

* ``summary`` (default) — the paper's 16x16 system performance summary
  and Table I comparison.
* ``demo`` — a quick 4x8 matrix-vector multiplication through the
  photonic path.
* ``adc`` — static eoADC conversions across the full-scale range.
* ``serve-bench [requests]`` — replay a synthetic multi-tenant trace
  through a :class:`repro.api.PhotonicSession` (max_batch flush
  policy, no hand-called flushes) and print throughput, batch-fill and
  cache statistics.
* ``serve-bench cnn [images]`` — replay a CNN feature-extraction
  stream (im2col convolutions of digit glyphs against a shared kernel
  bank) through the session's conv route.
* ``serve-bench cluster [requests]`` — replay the multi-tenant trace
  through :class:`repro.api.PhotonicCluster` fleets of 1/2/4 cores
  under every routing policy and write ``BENCH_cluster.json`` to the
  working directory.
* ``serve-bench drift [requests]`` — replay the trace through sessions
  whose analog stack drifts (thermal detuning, laser decay, TIA and
  comparator aging), sweeping drift severity x probe cadence x
  recalibration threshold, and write ``BENCH_drift.json``.

Every serve-bench scenario takes ``--seed N`` for a reproducible trace
and ``--smoke`` for a fast CI-sized run.

Also installed as the ``repro`` console script (``repro serve-bench``).
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np


def _summary(argv: list[str]) -> None:
    from .baselines.photonic_macros import format_table_one
    from .core.performance import PerformanceModel

    performance = PerformanceModel()
    print(performance.summary())
    print()
    print(format_table_one(performance))


def _demo(argv: list[str]) -> None:
    from .core.tensor_core import PhotonicTensorCore

    rng = np.random.default_rng(0)
    core = PhotonicTensorCore(rows=4, columns=8)
    core.load_weight_matrix(rng.integers(0, 8, (4, 8)))
    x = rng.uniform(0.0, 1.0, 8)
    result = core.matvec(x)
    print(f"input      : {np.round(x, 2)}")
    print(f"ADC codes  : {result.codes}")
    print(f"estimates  : {np.round(result.estimates, 2)}")
    print(f"exact W @ x: {np.round(core.ideal_matvec(x), 2)}")


def _adc(argv: list[str]) -> None:
    from .core.eoadc import EoAdc

    adc = EoAdc()
    print(f"{'V_IN (V)':>8}  {'code':>4}  bits")
    for v_in in np.linspace(0.1, 3.9, 12):
        code = adc.convert(float(v_in))
        print(f"{v_in:>8.2f}  {code:>4}  {code:03b}")


def _serve_bench(argv: list[str]) -> int:
    from .runtime.serving import (
        run_cluster_serve_bench,
        run_cnn_serve_bench,
        run_drift_serve_bench,
        run_serve_bench,
    )

    args = list(argv)
    smoke = "--smoke" in args
    if smoke:
        args.remove("--smoke")
    seed = 2025
    if "--seed" in args:
        at = args.index("--seed")
        if at + 1 >= len(args):
            print("serve-bench --seed expects an integer value")
            return 2
        try:
            seed = int(args[at + 1])
        except ValueError:
            print(f"serve-bench --seed expects an integer, got {args[at + 1]!r}")
            return 2
        if seed < 0:
            print(f"serve-bench --seed must be >= 0, got {seed}")
            return 2
        del args[at : at + 2]

    if args and args[0] == "cnn":
        try:
            images = int(args[1]) if len(args) > 1 else (8 if smoke else 48)
        except ValueError:
            print(f"serve-bench cnn expects an image count, got {args[1]!r}")
            return 2
        if images < 1:
            print(f"serve-bench cnn image count must be >= 1, got {images}")
            return 2
        run_cnn_serve_bench(images=images, seed=seed)
        return 0
    if args and args[0] == "drift":
        try:
            requests = int(args[1]) if len(args) > 1 else (24 if smoke else 240)
        except ValueError:
            print(f"serve-bench drift expects a request count, got {args[1]!r}")
            return 2
        if requests < 1:
            print(f"serve-bench drift request count must be >= 1, got {requests}")
            return 2
        sweep_kwargs = {}
        if smoke:
            # One severity, unmonitored vs tight auto-recal, with the
            # arrival spacing stretched so the short trace still spans
            # the same ~minute of modelled aging.
            sweep_kwargs = {
                "severities": (1.5,),
                "cadences": (0, 1),
                "thresholds": (0.05,),
                "arrival_period_s": 60.0 / requests,
            }
        run_drift_serve_bench(
            requests=requests,
            seed=seed,
            json_path=Path.cwd() / "BENCH_drift.json",
            **sweep_kwargs,
        )
        return 0
    if args and args[0] == "cluster":
        try:
            requests = int(args[1]) if len(args) > 1 else (24 if smoke else 240)
        except ValueError:
            print(f"serve-bench cluster expects a request count, got {args[1]!r}")
            return 2
        if requests < 1:
            print(f"serve-bench cluster request count must be >= 1, got {requests}")
            return 2
        run_cluster_serve_bench(
            requests=requests,
            seed=seed,
            json_path=Path.cwd() / "BENCH_cluster.json",
        )
        return 0
    try:
        requests = int(args[0]) if args else (24 if smoke else 240)
    except ValueError:
        print(f"serve-bench expects a request count, got {args[0]!r}")
        return 2
    if requests < 0:
        print(f"serve-bench request count must be >= 0, got {requests}")
        return 2
    run_serve_bench(requests=requests, seed=seed)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    command = argv[0] if argv else "summary"
    commands = {
        "summary": _summary,
        "demo": _demo,
        "adc": _adc,
        "serve-bench": _serve_bench,
    }
    if command not in commands:
        print(f"unknown command {command!r}; choose from {sorted(commands)}")
        return 2
    status = commands[command](argv[1:])
    return 0 if status is None else status


if __name__ == "__main__":
    raise SystemExit(main())
