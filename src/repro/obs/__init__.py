"""Active observability: alerting, flight recording, dashboards.

``repro.telemetry`` records what a serving run did; ``repro.obs``
*watches* it live — the monitoring half a production fleet needs:

* :class:`Observer` — sliding modelled-time windows over the per-flush
  metric deltas, health-probe checks and fleet events the serving
  surfaces feed it, evaluated by an :class:`AlertRule` engine.
  Multi-window SLO burn-rate rules derive directly from a
  :class:`repro.traffic.SLO` (:func:`slo_burn_rules`: fast-burn pages,
  slow-burn warns, each gated on both its long and short window);
  built-in anomaly detectors cover latency-quantile shift, cache-hit
  collapse, shed/deadline-miss spikes and probe code-error growth
  (:func:`default_rules`).  Firing/resolved transitions are typed
  :class:`Alert` records stamped on the modelled clock.  Attach via
  ``PhotonicSession(obs=...)`` / ``PhotonicCluster(obs=...)``; the
  guard contract matches telemetry — an unattached run makes zero obs
  calls and is bit-for-bit identical (``hot-path-telemetry-guard``
  enforces the guards).
* :class:`FlightRecorder` — a bounded ring of recent observations that
  costs O(1) appends until an incident (alert firing, drain,
  recalibration, scale event) dumps a self-contained
  :class:`IncidentBundle`: triggering rule, the ring's window, the
  trace's trailing spans, the fleet snapshot and all active alerts.
* :func:`prometheus_text` — classic text exposition of a
  :class:`~repro.telemetry.MetricsRegistry` (counters as ``_total``,
  histograms as cumulative ``_bucket{le=...}`` series, tenants as
  labels).
* :func:`render_dashboard` / :func:`save_dashboard` — a single-file
  HTML dashboard (inline SVG, zero external deps) of latency quantile
  timelines, per-core utilization/pending, cache hit rate, alert
  markers and incident annotations; wired as
  ``serve-bench <scenario> --dashboard out.html`` and
  ``python -m repro obs``.
"""

from .alerts import (
    SEVERITIES,
    Alert,
    AlertRule,
    BurnRateRule,
    CacheHitCollapseRule,
    DeadlineMissBurnRule,
    EventSample,
    HealthSample,
    LatencyBurnRule,
    LatencyShiftRule,
    MetricSample,
    ProbeErrorBurnRule,
    RuleEvaluation,
    ShedSpikeRule,
    WindowView,
    default_rules,
    slo_burn_rules,
)
from .dashboard import PALETTE, render_dashboard, save_dashboard
from .export import prometheus_text
from .monitor import Observer
from .recorder import INCIDENT_EVENTS, FlightRecorder, IncidentBundle

__all__ = [
    "INCIDENT_EVENTS",
    "PALETTE",
    "SEVERITIES",
    "Alert",
    "AlertRule",
    "BurnRateRule",
    "CacheHitCollapseRule",
    "DeadlineMissBurnRule",
    "EventSample",
    "FlightRecorder",
    "HealthSample",
    "IncidentBundle",
    "LatencyBurnRule",
    "LatencyShiftRule",
    "MetricSample",
    "Observer",
    "ProbeErrorBurnRule",
    "RuleEvaluation",
    "ShedSpikeRule",
    "WindowView",
    "default_rules",
    "prometheus_text",
    "render_dashboard",
    "save_dashboard",
    "slo_burn_rules",
]
