"""The :class:`Observer`: sliding windows, rule evaluation and alert
lifecycle on the modelled clock.

An Observer is the single object a serving surface binds (``obs=`` on
:class:`~repro.api.PhotonicSession` / :class:`~repro.api.PhotonicCluster`).
The surfaces feed it three streams — per-flush
:class:`~repro.obs.MetricSample` deltas, per-probe
:class:`~repro.obs.HealthSample` checks and fleet
:class:`~repro.obs.EventSample` transitions — each stamped with the
surface's modelled clock, never the host's.  After every feed it
re-evaluates its :class:`~repro.obs.AlertRule` set against sliding
windows over those streams and records firing/resolved transitions as
typed :class:`~repro.obs.Alert` records.  A firing transition (and the
:data:`~repro.obs.INCIDENT_EVENTS` fleet transitions) also dump the
attached :class:`~repro.obs.FlightRecorder` into an incident bundle.

The guard contract mirrors the telemetry one: serving surfaces hold
``self.obs = None`` when unattached and every hot-path use sits behind
an ``is not None`` guard (the ``hot-path-telemetry-guard`` lint walks
those paths), so an unattached run makes zero obs calls and is
bit-for-bit identical.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from .alerts import (
    Alert,
    AlertRule,
    EventSample,
    HealthSample,
    MetricSample,
    WindowView,
    default_rules,
)
from .recorder import INCIDENT_EVENTS, FlightRecorder, IncidentBundle

if TYPE_CHECKING:
    from ..api.futures import RunReport
    from ..health.monitor import HealthReport
    from ..traffic.slo import SLO


def _report_p99(report: RunReport) -> tuple[float | None, int]:
    """One flush report's exact end-to-end p99 [s] and its weight."""
    quantiles = report.latency_quantiles
    if quantiles is None:
        return None, 0
    summary = quantiles.get("end_to_end")
    if not summary:
        return None, 0
    p99 = summary.get("p99")
    count = int(summary.get("count", 0))
    if p99 is None:
        return None, count
    return float(p99), count


class Observer:
    """Sliding-window monitor + alert engine + incident dumper.

    ``rules`` defaults to :func:`~repro.obs.default_rules` (built-in
    anomaly detectors, plus SLO burn-rate rules when ``slo`` is
    given), all scaled to ``window_s``.  ``recorder`` is an optional
    :class:`~repro.obs.FlightRecorder`; without one, alerts still fire
    but incidents dump nothing.
    """

    def __init__(
        self,
        rules: Sequence[AlertRule] | None = None,
        recorder: FlightRecorder | None = None,
        slo: SLO | None = None,
        window_s: float = 60.0,
    ) -> None:
        if rules is not None and slo is not None:
            raise ConfigurationError(
                "pass either explicit rules or an slo to derive them "
                "from, not both (compose slo_burn_rules(...) yourself)"
            )
        if recorder is not None and not isinstance(recorder, FlightRecorder):
            raise ConfigurationError(
                f"recorder must be a FlightRecorder, "
                f"got {type(recorder).__name__}"
            )
        if not (window_s > 0.0):
            raise ConfigurationError(
                f"window_s must be positive modelled seconds, got {window_s}"
            )
        resolved = (
            default_rules(slo=slo, window_s=window_s)
            if rules is None
            else tuple(rules)
        )
        for rule in resolved:
            if not isinstance(rule, AlertRule):
                raise ConfigurationError(
                    f"rules must be AlertRule instances, "
                    f"got {type(rule).__name__}"
                )
        names = [rule.name for rule in resolved]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"rule names must be unique, got {sorted(names)}"
            )
        self.rules = resolved
        self.recorder = recorder
        self.window_s = float(window_s)
        self._horizon = max(
            (w for rule in resolved for w in rule.windows()),
            default=self.window_s,
        )
        self._samples: deque = deque()
        self._health: deque = deque()
        self._events: deque = deque()
        self._firing: dict[str, Alert] = {}
        self._transitions: list[Alert] = []
        self._fleet_snapshot: Callable[[], dict] | None = None
        self._now = 0.0

    # -- wiring ---------------------------------------------------------

    def attach_fleet(self, snapshot: Callable[[], dict]) -> None:
        """Register the cluster's fleet-snapshot callable; incident
        bundles call it at dump time."""
        self._fleet_snapshot = snapshot

    # -- feed hooks (called by guarded serving surfaces) ----------------

    def observe_flush(
        self,
        now: float,
        source: str,
        report: RunReport,
        pending: int = 0,
    ) -> None:
        """Feed one flush's delta report, stamped at modelled ``now``."""
        p99, count = _report_p99(report)
        sample = MetricSample(
            at=float(now),
            source=source,
            requests=report.requests,
            deadline_misses=report.deadline_misses,
            cache_hits=report.cache_hits,
            cache_misses=report.cache_misses,
            recalibrations=report.recalibrations,
            p99_latency=p99,
            latency_count=count,
            pending=int(pending),
        )
        self._samples.append(sample)
        self._record(sample)
        self._evaluate(float(now))

    def observe_health(
        self, now: float, source: str, report: HealthReport
    ) -> None:
        """Feed one probe check's code-error rate at modelled ``now``."""
        sample = HealthSample(
            at=float(now),
            source=source,
            code_error_rate=float(report.code_error_rate),
            recalibrated=bool(report.recalibrated),
        )
        self._health.append(sample)
        self._record(sample)
        self._evaluate(float(now))

    def note_event(
        self, now: float, kind: str, args: dict | None = None
    ) -> None:
        """Feed one fleet/session transition at modelled ``now``.

        The :data:`~repro.obs.INCIDENT_EVENTS` kinds also dump an
        incident bundle on their own.
        """
        sample = EventSample(
            at=float(now), kind=str(kind), args=dict(args or {})
        )
        self._events.append(sample)
        self._record(sample)
        if sample.kind in INCIDENT_EVENTS:
            self._dump_incident(
                float(now), {"kind": "event", "event": sample.to_dict()}
            )
        self._evaluate(float(now))

    # -- evaluation -----------------------------------------------------

    def _record(self, sample: object) -> None:
        recorder = self.recorder
        if recorder is not None:
            recorder.observe(sample)

    def _evict(self, now: float) -> None:
        cutoff = now - self._horizon
        for stream in (self._samples, self._health, self._events):
            while stream and stream[0].at <= cutoff:
                stream.popleft()

    def _evaluate(self, now: float) -> None:
        self._now = max(self._now, now)
        self._evict(self._now)
        views: dict[float, WindowView] = {}

        def view_at(window_s: float) -> WindowView:
            view = views.get(window_s)
            if view is None:
                view = WindowView(
                    self._samples,
                    self._health,
                    self._events,
                    now=self._now,
                    window_s=window_s,
                )
                views[window_s] = view
            return view

        for rule in self.rules:
            verdict = rule.evaluate(view_at)
            active = self._firing.get(rule.name)
            if verdict.firing and active is None:
                alert = Alert(
                    rule=rule.name,
                    severity=rule.severity,
                    state="firing",
                    at=self._now,
                    fired_at=self._now,
                    window_s=rule.window_s,
                    value=float(verdict.value)
                    if verdict.value is not None
                    else 0.0,
                    threshold=rule.threshold,
                    message=rule.describe(verdict.value),
                )
                self._firing[rule.name] = alert
                self._transitions.append(alert)
                self._dump_incident(
                    self._now, {"kind": "alert", "alert": alert.to_dict()}
                )
            elif not verdict.firing and active is not None:
                resolved = active.resolved(self._now, verdict.value)
                del self._firing[rule.name]
                self._transitions.append(resolved)

    def _dump_incident(self, now: float, trigger: dict) -> None:
        recorder = self.recorder
        if recorder is None:
            return
        fleet = (
            None if self._fleet_snapshot is None else self._fleet_snapshot()
        )
        recorder.dump(
            now, trigger, fleet=fleet, active_alerts=tuple(self._firing.values())
        )

    # -- results --------------------------------------------------------

    @property
    def alerts(self) -> tuple[Alert, ...]:
        """Every firing/resolved transition so far, in order."""
        return tuple(self._transitions)

    @property
    def active(self) -> tuple[Alert, ...]:
        """Alerts currently firing."""
        return tuple(self._firing.values())

    @property
    def incidents(self) -> tuple[IncidentBundle, ...]:
        """Incident bundles dumped by the attached recorder."""
        if self.recorder is None:
            return ()
        return self.recorder.incidents

    def to_dict(self) -> dict:
        """The monitor's serialized summary: rules, transitions,
        currently-firing alerts and incident count."""
        return {
            "window_s": self.window_s,
            "rules": [
                {
                    "name": rule.name,
                    "severity": rule.severity,
                    "window_s": rule.window_s,
                    "threshold": rule.threshold,
                    "description": rule.description,
                }
                for rule in self.rules
            ],
            "alerts": [alert.to_dict() for alert in self._transitions],
            "active": [alert.to_dict() for alert in self._firing.values()],
            "incidents": len(self.incidents),
        }
