"""Typed alerts and the sliding-window rule engine.

The passive telemetry layer (:mod:`repro.telemetry`) records what a
serving run did; this module decides when what it did is *wrong*.  An
:class:`AlertRule` evaluates a measurement over a sliding modelled-time
window of :class:`MetricSample` / :class:`HealthSample` /
:class:`EventSample` records (one per flush, probe check and fleet
event) and the :class:`~repro.obs.Observer` turns breach transitions
into typed :class:`Alert` records — ``firing`` when a rule first
breaches, ``resolved`` when it stops, both stamped on the modelled
clock.

Two rule families ship built in:

* **SLO burn-rate rules** (:func:`slo_burn_rules`) derived directly
  from a :class:`repro.traffic.SLO`: the burn rate is the observed
  deadline-miss rate over the error budget (or the observed p99 over
  the latency target), and the multi-window fast-burn / slow-burn pair
  follows the SRE-workbook shape — a high threshold over a short
  window pages on sharp burns, a lower threshold over a long window
  catches slow leaks, and each rule only fires when *both* its long
  and its short window breach (the short window un-fires the alert
  promptly once the burn stops).
* **Anomaly detectors**: latency-quantile shift against the trailing
  baseline (:class:`LatencyShiftRule`), cache-hit-rate collapse
  (:class:`CacheHitCollapseRule`), shed / deadline-miss spikes
  (:class:`ShedSpikeRule`) and health-probe code-error growth as a
  budget burn (:class:`ProbeErrorBurnRule`).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..telemetry.export import ReportExport

if TYPE_CHECKING:
    from ..traffic.slo import SLO

#: Alert severities, mildest first.
SEVERITIES = ("info", "warn", "page")


@dataclass(frozen=True)
class Alert(ReportExport):
    """One alert transition on the modelled clock.

    ``state`` is ``"firing"`` or ``"resolved"``; ``at`` stamps this
    transition and ``fired_at`` the start of the episode (equal on the
    firing record), so a resolved alert carries its whole span.
    ``value`` is the rule's measurement at the transition and
    ``threshold`` the breach level it was compared against.
    """

    rule: str
    severity: str
    state: str
    at: float
    fired_at: float
    window_s: float
    value: float
    threshold: float
    message: str

    def resolved(self, at: float, value: float | None) -> "Alert":
        """The matching ``resolved`` record of this firing alert."""
        return replace(
            self,
            state="resolved",
            at=at,
            value=self.value if value is None else value,
        )


@dataclass(frozen=True)
class MetricSample(ReportExport):
    """One flush's delta counters, stamped on the modelled clock."""

    at: float
    source: str
    requests: int = 0
    deadline_misses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    recalibrations: int = 0
    #: The flush window's exact end-to-end p99 [s] (None when the
    #: flush resolved nothing).
    p99_latency: float | None = None
    #: Requests behind that p99 (its weight in window aggregates).
    latency_count: int = 0
    pending: int = 0


@dataclass(frozen=True)
class HealthSample(ReportExport):
    """One probe check's code-error rate on the modelled clock."""

    at: float
    source: str
    code_error_rate: float
    recalibrated: bool = False


@dataclass(frozen=True)
class EventSample(ReportExport):
    """One fleet/session event (shed, drain, scale, recalibrate)."""

    at: float
    kind: str
    args: dict = field(default_factory=dict)


class WindowView:
    """The monitor's sample streams restricted to ``(now - window_s,
    now]`` — what one rule evaluation sees."""

    def __init__(
        self,
        samples: Sequence[MetricSample],
        health: Sequence[HealthSample],
        events: Sequence[EventSample],
        now: float,
        window_s: float,
    ) -> None:
        cutoff = now - window_s
        self.now = now
        self.window_s = window_s
        self.samples = tuple(s for s in samples if s.at > cutoff)
        self.health = tuple(h for h in health if h.at > cutoff)
        self.events = tuple(e for e in events if e.at > cutoff)

    @property
    def requests(self) -> int:
        return sum(s.requests for s in self.samples)

    @property
    def deadline_misses(self) -> int:
        return sum(s.deadline_misses for s in self.samples)

    @property
    def cache_lookups(self) -> int:
        return sum(s.cache_hits + s.cache_misses for s in self.samples)

    @property
    def shed_events(self) -> int:
        return sum(1 for e in self.events if e.kind == "shed")

    def miss_rate(self) -> float | None:
        """Deadline misses over requests in the window (None when no
        request resolved — a silent window is not a healthy one)."""
        requests = self.requests
        if requests == 0:
            return None
        return self.deadline_misses / requests

    def hit_rate(self) -> float | None:
        """Program-cache hit rate over the window's lookups."""
        lookups = self.cache_lookups
        if lookups == 0:
            return None
        return sum(s.cache_hits for s in self.samples) / lookups

    def p99(self) -> float | None:
        """The window's worst per-flush end-to-end p99 [s] — the
        conservative aggregate (per-flush quantiles are exact, and the
        max never under-reports a breach)."""
        values = [
            s.p99_latency for s in self.samples if s.p99_latency is not None
        ]
        return max(values) if values else None

    def probe_error_rate(self) -> float | None:
        """Mean probe code-error rate over the window's checks."""
        if not self.health:
            return None
        return sum(h.code_error_rate for h in self.health) / len(self.health)


#: A rule evaluation pulls views at its window lengths from this.
ViewAt = Callable[[float], WindowView]


@dataclass(frozen=True)
class RuleEvaluation:
    """One rule's verdict at one instant."""

    firing: bool
    value: float | None


class AlertRule:
    """One watched condition: a measurement over a sliding window
    compared against a threshold.

    Subclasses implement :meth:`measure`; ``direction`` picks the
    breach side (``"above"`` fires on ``measure >= threshold``,
    ``"below"`` on ``measure <= threshold``).  A None measurement
    (empty window) never fires and resolves a firing alert.
    """

    #: Breach side: "above" or "below".
    direction = "above"

    def __init__(
        self,
        name: str,
        severity: str = "warn",
        window_s: float = 60.0,
        threshold: float = 1.0,
        description: str = "",
    ) -> None:
        if severity not in SEVERITIES:
            raise ConfigurationError(
                f"alert severity must be one of {SEVERITIES}, got {severity!r}"
            )
        if not (window_s > 0.0):
            raise ConfigurationError(
                f"rule '{name}' needs a positive window, got {window_s}"
            )
        self.name = str(name)
        self.severity = severity
        self.window_s = float(window_s)
        self.threshold = float(threshold)
        self.description = description

    def windows(self) -> tuple[float, ...]:
        """Every window length this rule reads (the monitor keeps
        samples for the longest one across all rules)."""
        return (self.window_s,)

    def measure(self, view: WindowView) -> float | None:
        raise NotImplementedError

    def _breaches(self, value: float | None) -> bool:
        if value is None:
            return False
        if self.direction == "above":
            return value >= self.threshold
        return value <= self.threshold

    def evaluate(self, view_at: ViewAt) -> RuleEvaluation:
        value = self.measure(view_at(self.window_s))
        return RuleEvaluation(firing=self._breaches(value), value=value)

    def describe(self, value: float | None) -> str:
        side = ">=" if self.direction == "above" else "<="
        shown = "n/a" if value is None else f"{value:.3g}"
        return (
            f"{self.name}: {shown} {side} {self.threshold:g} "
            f"over {self.window_s:g} s"
        )

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} ({self.severity}), "
            f"window {self.window_s:g} s, threshold {self.threshold:g}>"
        )


class BurnRateRule(AlertRule):
    """Multi-window burn-rate rule: fires only when the measurement
    breaches over *both* the long window and the short one.

    The long window keeps blips from paging; the short window both
    confirms the burn is current and un-fires the alert promptly once
    it stops (the SRE-workbook multi-window shape).  The reported
    ``value`` is the short-window burn — the current rate.
    """

    def __init__(
        self,
        name: str,
        severity: str = "page",
        window_s: float = 60.0,
        short_window_s: float | None = None,
        threshold: float = 1.0,
        description: str = "",
    ) -> None:
        super().__init__(
            name,
            severity=severity,
            window_s=window_s,
            threshold=threshold,
            description=description,
        )
        short = window_s / 12.0 if short_window_s is None else short_window_s
        if not (0.0 < short <= window_s):
            raise ConfigurationError(
                f"rule '{name}' needs 0 < short_window_s <= window_s, "
                f"got {short} vs {window_s}"
            )
        self.short_window_s = float(short)

    def windows(self) -> tuple[float, ...]:
        return (self.window_s, self.short_window_s)

    def evaluate(self, view_at: ViewAt) -> RuleEvaluation:
        short_value = self.measure(view_at(self.short_window_s))
        long_value = self.measure(view_at(self.window_s))
        firing = self._breaches(short_value) and self._breaches(long_value)
        return RuleEvaluation(firing=firing, value=short_value)


class DeadlineMissBurnRule(BurnRateRule):
    """SLO deadline-miss budget burn: window miss rate over the
    budget.  A zero budget treats any miss as an infinite burn."""

    def __init__(
        self,
        budget: float,
        name: str = "slo-miss-burn",
        severity: str = "page",
        window_s: float = 60.0,
        short_window_s: float | None = None,
        threshold: float = 1.0,
    ) -> None:
        if budget < 0.0:
            raise ConfigurationError(
                f"miss budget must be non-negative, got {budget}"
            )
        super().__init__(
            name,
            severity=severity,
            window_s=window_s,
            short_window_s=short_window_s,
            threshold=threshold,
            description="deadline-miss rate over the SLO miss budget",
        )
        self.budget = float(budget)

    def measure(self, view: WindowView) -> float | None:
        rate = view.miss_rate()
        if rate is None:
            return None
        if self.budget <= 0.0:
            return math.inf if rate > 0.0 else 0.0
        return rate / self.budget


class LatencyBurnRule(BurnRateRule):
    """SLO latency burn: the window's end-to-end p99 over the SLO
    target (1.0 = serving exactly at the objective)."""

    def __init__(
        self,
        p99_target_s: float,
        name: str = "slo-latency-burn",
        severity: str = "page",
        window_s: float = 60.0,
        short_window_s: float | None = None,
        threshold: float = 1.0,
    ) -> None:
        if not (p99_target_s > 0.0):
            raise ConfigurationError(
                f"the p99 target must be positive, got {p99_target_s}"
            )
        super().__init__(
            name,
            severity=severity,
            window_s=window_s,
            short_window_s=short_window_s,
            threshold=threshold,
            description="window p99 latency over the SLO p99 target",
        )
        self.p99_target_s = float(p99_target_s)

    def measure(self, view: WindowView) -> float | None:
        p99 = view.p99()
        if p99 is None:
            return None
        return p99 / self.p99_target_s


class ProbeErrorBurnRule(BurnRateRule):
    """Health-probe code-error growth as a budget burn: the window's
    mean probe code-error rate over the tolerated budget — the rule
    that pages when a drifting core goes unrecalibrated."""

    def __init__(
        self,
        budget: float = 0.05,
        name: str = "probe-error-burn",
        severity: str = "page",
        window_s: float = 60.0,
        short_window_s: float | None = None,
        threshold: float = 1.0,
    ) -> None:
        if not (0.0 < budget < 1.0):
            raise ConfigurationError(
                f"the probe error budget must be in (0, 1), got {budget}"
            )
        super().__init__(
            name,
            severity=severity,
            window_s=window_s,
            short_window_s=short_window_s,
            threshold=threshold,
            description="probe code-error rate over the tolerated budget",
        )
        self.budget = float(budget)

    def measure(self, view: WindowView) -> float | None:
        rate = view.probe_error_rate()
        if rate is None:
            return None
        return rate / self.budget


class LatencyShiftRule(AlertRule):
    """Latency-quantile shift: the short window's p99 over the
    trailing baseline's p99 (2.0 = latencies doubled).

    The baseline is the part of ``baseline_window_s`` *before* the
    short window — the windows must not overlap, or the current spike
    would inflate its own reference and the ratio could never breach.
    """

    def __init__(
        self,
        name: str = "latency-shift",
        severity: str = "warn",
        window_s: float = 10.0,
        baseline_window_s: float = 120.0,
        threshold: float = 2.0,
        min_count: int = 8,
    ) -> None:
        super().__init__(
            name,
            severity=severity,
            window_s=window_s,
            threshold=threshold,
            description="short-window p99 over the trailing baseline p99",
        )
        if not (baseline_window_s > window_s):
            raise ConfigurationError(
                f"the baseline window must exceed the short window, "
                f"got {baseline_window_s} vs {window_s}"
            )
        self.baseline_window_s = float(baseline_window_s)
        self.min_count = int(min_count)

    def windows(self) -> tuple[float, ...]:
        return (self.baseline_window_s, self.window_s)

    def evaluate(self, view_at: ViewAt) -> RuleEvaluation:
        recent = view_at(self.window_s)
        baseline = view_at(self.baseline_window_s)
        current = recent.p99()
        # The reference reads only the baseline samples *older* than
        # the short window (p99 aggregates by max, so a shared sample
        # would cap the ratio at 1.0 and the rule could never fire).
        cutoff = recent.now - recent.window_s
        older = [s for s in baseline.samples if s.at <= cutoff]
        references = [
            s.p99_latency for s in older if s.p99_latency is not None
        ]
        reference = max(references) if references else None
        mass = sum(s.requests for s in older)
        if (
            current is None
            or reference is None
            or reference <= 0.0
            or mass < self.min_count
        ):
            return RuleEvaluation(firing=False, value=None)
        ratio = current / reference
        return RuleEvaluation(firing=self._breaches(ratio), value=ratio)


class CacheHitCollapseRule(AlertRule):
    """Cache-hit-rate collapse: the window's program-cache hit rate
    falls to or below the floor (with enough lookups to mean it)."""

    direction = "below"

    def __init__(
        self,
        name: str = "cache-hit-collapse",
        severity: str = "warn",
        window_s: float = 60.0,
        threshold: float = 0.25,
        min_lookups: int = 8,
    ) -> None:
        super().__init__(
            name,
            severity=severity,
            window_s=window_s,
            threshold=threshold,
            description="program-cache hit rate under the collapse floor",
        )
        self.min_lookups = int(min_lookups)

    def measure(self, view: WindowView) -> float | None:
        if view.cache_lookups < self.min_lookups:
            return None
        return view.hit_rate()


class ShedSpikeRule(AlertRule):
    """Shed / deadline-miss spike: admission sheds plus deadline
    misses in the window reach the spike count."""

    def __init__(
        self,
        name: str = "shed-spike",
        severity: str = "warn",
        window_s: float = 60.0,
        threshold: float = 8.0,
    ) -> None:
        super().__init__(
            name,
            severity=severity,
            window_s=window_s,
            threshold=threshold,
            description="admission sheds + deadline misses in the window",
        )

    def measure(self, view: WindowView) -> float | None:
        return float(view.shed_events + view.deadline_misses)


def slo_burn_rules(
    slo: SLO,
    window_s: float = 60.0,
    slow_window_s: float | None = None,
    fast_threshold: float = 14.4,
    slow_threshold: float = 6.0,
) -> tuple[AlertRule, ...]:
    """The multi-window burn-rate rule set of one
    :class:`repro.traffic.SLO`.

    Four rules: fast-burn (``page``, ``window_s`` long / ``window_s``/12
    short, high threshold) and slow-burn (``warn``, 6x longer windows,
    lower threshold) pairs against both the deadline-miss budget and
    the p99 latency target — the SRE-workbook shape scaled to whatever
    modelled horizon ``window_s`` names.  Latency burns threshold at
    1.0 (the objective itself is the budget).
    """
    from ..traffic.slo import SLO as _SLO

    if not isinstance(slo, _SLO):
        raise ConfigurationError(
            f"slo must be a repro.traffic.SLO, got {type(slo).__name__}"
        )
    slow = window_s * 6.0 if slow_window_s is None else float(slow_window_s)
    return (
        DeadlineMissBurnRule(
            slo.deadline_miss_budget,
            name="slo-miss-burn-fast",
            severity="page",
            window_s=window_s,
            threshold=fast_threshold,
        ),
        DeadlineMissBurnRule(
            slo.deadline_miss_budget,
            name="slo-miss-burn-slow",
            severity="warn",
            window_s=slow,
            threshold=slow_threshold,
        ),
        LatencyBurnRule(
            slo.p99_latency,
            name="slo-latency-burn-fast",
            severity="page",
            window_s=window_s,
            threshold=1.0,
        ),
        LatencyBurnRule(
            slo.p99_latency,
            name="slo-latency-burn-slow",
            severity="warn",
            window_s=slow,
            threshold=1.0,
        ),
    )


def default_rules(
    slo: SLO | None = None, window_s: float = 60.0
) -> tuple[AlertRule, ...]:
    """The built-in anomaly detectors (latency shift, cache-hit
    collapse, shed spike, probe-error burn), plus the SLO burn-rate
    rules when an SLO is given, all scaled to ``window_s``."""
    rules: list[AlertRule] = [
        LatencyShiftRule(
            window_s=window_s / 6.0, baseline_window_s=window_s * 2.0
        ),
        CacheHitCollapseRule(window_s=window_s),
        ShedSpikeRule(window_s=window_s),
        ProbeErrorBurnRule(window_s=window_s),
    ]
    if slo is not None:
        rules.extend(slo_burn_rules(slo, window_s=window_s))
    return tuple(rules)
