"""Prometheus-style text exposition of a :class:`MetricsRegistry`.

:func:`prometheus_text` renders the registry in the classic
`text exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
counters as ``<ns>_<name>_total``, gauges plain, histograms as
cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count`` —
built from the same log-spaced bins :class:`~repro.telemetry.Histogram`
keeps internally (underflow folds into the first finite bucket's
cumulative count, overflow into ``le="+Inf"``).  Per-tenant histogram
names (``queue_wait_s/tenant``) become a ``tenant`` label rather than
a mangled metric name, matching how a real scrape would model them.
"""

from __future__ import annotations

import math
import re

from ..telemetry.binding import (
    END_TO_END_HISTOGRAM,
    QUEUE_WAIT_HISTOGRAM,
    SERVICE_TIME_HISTOGRAM,
)
from ..telemetry.metrics import Histogram, MetricsRegistry

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_TENANT_BASES = (
    QUEUE_WAIT_HISTOGRAM,
    END_TO_END_HISTOGRAM,
    SERVICE_TIME_HISTOGRAM,
)


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric name component."""
    clean = _NAME_SANITIZER.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _split_tenant(name: str) -> tuple[str, str | None]:
    """Split a per-tenant histogram name into (base, tenant label)."""
    for base in _TENANT_BASES:
        prefix = base + "/"
        if name.startswith(prefix):
            return base, name[len(prefix) :]
    return name, None


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _labels(pairs: dict) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in pairs.items())
    return "{" + inner + "}"


def _histogram_lines(
    full_name: str, labels: dict, hist: Histogram
) -> list[str]:
    data = hist.to_dict()
    edges = data["edges"]
    counts = data["counts"]
    lines: list[str] = []
    # counts[0] is underflow (< lo): it folds into every finite
    # bucket's cumulative count; counts[-1] is overflow (>= hi): only
    # the +Inf bucket sees it.
    cumulative = counts[0]
    for edge, count in zip(edges[1:], counts[1:-1]):
        cumulative += count
        bucket = dict(labels)
        bucket["le"] = _format_value(edge)
        lines.append(f"{full_name}_bucket{_labels(bucket)} {cumulative}")
    bucket = dict(labels)
    bucket["le"] = "+Inf"
    lines.append(f"{full_name}_bucket{_labels(bucket)} {hist.count}")
    lines.append(f"{full_name}_sum{_labels(labels)} {_format_value(hist.total)}")
    lines.append(f"{full_name}_count{_labels(labels)} {hist.count}")
    return lines


def prometheus_text(
    metrics: MetricsRegistry, namespace: str = "repro"
) -> str:
    """The registry in Prometheus text exposition format.

    Deterministic: families render name-sorted, so the same run always
    produces the same text (the property tests diff it).
    """
    if not isinstance(metrics, MetricsRegistry):
        raise TypeError(
            f"metrics must be a MetricsRegistry, "
            f"got {type(metrics).__name__}"
        )
    ns = _sanitize(namespace)
    lines: list[str] = []
    for counter in metrics.counters:
        full = f"{ns}_{_sanitize(counter.name)}_total"
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {counter.value}")
    for gauge in metrics.gauges:
        full = f"{ns}_{_sanitize(gauge.name)}"
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_format_value(gauge.value)}")
    seen_types: set[str] = set()
    for hist in metrics.histograms:
        base, tenant = _split_tenant(hist.name)
        full = f"{ns}_{_sanitize(base)}"
        if full not in seen_types:
            seen_types.add(full)
            lines.append(f"# TYPE {full} histogram")
        labels = {} if tenant is None else {"tenant": tenant}
        lines.extend(_histogram_lines(full, labels, hist))
    return "\n".join(lines) + "\n" if lines else ""
