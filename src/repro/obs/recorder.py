"""The flight recorder: a bounded ring of recent observations that
costs nothing until an incident dumps it.

:class:`FlightRecorder` keeps the last ``capacity`` monitor records
(flush samples, health checks, fleet events) in a ``deque(maxlen=...)``
ring — appends are O(1), old records fall off the far end, and no JSON
is built, no file touched, until :meth:`dump` is called.  On an
incident (an alert firing, or one of the :data:`INCIDENT_EVENTS` fleet
transitions) the :class:`~repro.obs.Observer` calls :meth:`dump` and
gets back a self-contained :class:`IncidentBundle`: the triggering
rule/event, the ring's records, the trailing spans of the attached
:class:`~repro.telemetry.TraceRecorder` (the offending flushes), the
fleet snapshot and the set of alerts active at the instant — everything
post-hoc debugging needs, stamped on the modelled clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..telemetry.export import ReportExport, to_serializable

if TYPE_CHECKING:
    from ..telemetry.trace import TraceRecorder

#: Fleet transitions that dump an incident bundle on their own (shed
#: bursts reach the recorder through the shed-spike alert instead —
#: a single shed under load is routine, a burst is not).
INCIDENT_EVENTS = ("drain", "recalibrate", "scale_up", "scale_down")


@dataclass(frozen=True)
class IncidentBundle(ReportExport):
    """One incident's self-contained dump.

    ``trigger`` names what tripped the dump (a serialized alert or
    fleet event), ``window`` holds the recorder ring's records oldest
    first, ``spans`` the trailing trace events (plain Chrome-dict
    form), ``fleet`` the fleet snapshot at dump time and
    ``active_alerts`` every alert firing at the instant.
    """

    at: float
    trigger: dict
    window: tuple = ()
    spans: tuple = ()
    fleet: dict | None = None
    active_alerts: tuple = ()

    def save(self, path: str | Path) -> Path:
        """Write the bundle as standalone JSON and return the path."""
        target = Path(path)
        target.write_text(self.to_json(indent=2), encoding="utf-8")
        return target


@dataclass
class FlightRecorder:
    """Bounded ring buffer of recent observations.

    ``capacity`` bounds the record ring, ``span_tail`` how many
    trailing trace events a dump copies out of ``trace``, and
    ``max_incidents`` caps how many bundles one run may accumulate
    (past the cap :meth:`dump` returns None instead of growing without
    bound under a flapping alert).
    """

    capacity: int = 256
    trace: TraceRecorder | None = None
    span_tail: int = 64
    max_incidents: int = 16
    _ring: deque = field(init=False, repr=False)
    _incidents: list = field(init=False, default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(
                f"recorder capacity must be positive, got {self.capacity}"
            )
        if self.span_tail < 0:
            raise ConfigurationError(
                f"span_tail must be non-negative, got {self.span_tail}"
            )
        if self.max_incidents <= 0:
            raise ConfigurationError(
                f"max_incidents must be positive, got {self.max_incidents}"
            )
        self._ring = deque(maxlen=int(self.capacity))

    def __len__(self) -> int:
        return len(self._ring)

    def observe(self, record: object) -> None:
        """Append one monitor record to the ring (O(1), no copying)."""
        self._ring.append(record)

    @property
    def incidents(self) -> tuple:
        """Every bundle dumped so far, oldest first."""
        return tuple(self._incidents)

    def _trailing_spans(self) -> tuple:
        if self.trace is None or self.span_tail == 0:
            return ()
        events = self.trace.events[-self.span_tail :]
        return tuple(event.to_chrome() for event in events)

    def dump(
        self,
        now: float,
        trigger: dict,
        fleet: dict | None = None,
        active_alerts: tuple = (),
    ) -> IncidentBundle | None:
        """Freeze the ring into an :class:`IncidentBundle` (None once
        ``max_incidents`` bundles exist)."""
        if len(self._incidents) >= self.max_incidents:
            return None
        bundle = IncidentBundle(
            at=float(now),
            trigger=dict(trigger),
            window=tuple(to_serializable(record) for record in self._ring),
            spans=self._trailing_spans(),
            fleet=None if fleet is None else dict(fleet),
            active_alerts=tuple(
                to_serializable(alert) for alert in active_alerts
            ),
        )
        self._incidents.append(bundle)
        return bundle
