"""Self-contained single-file HTML dashboard (inline SVG, no deps).

:func:`render_dashboard` turns a trace + metrics capture into one HTML
string a browser opens directly: latency-quantile timelines (per-bucket
p50/p99 of the request lifecycle spans), per-core utilization and
pending depth (from the flush spans on each core track), program-cache
hit rate (cache instants vs compile spans), with alert firings drawn
as dashed vertical markers and incident bundles as annotations — all
on the modelled-time axis the trace was recorded on.  No JavaScript,
no external assets, no CDN: the file is the artifact.

Inputs are deliberately loose: ``trace`` accepts a live
:class:`~repro.telemetry.TraceRecorder`, an already-exported Chrome
dict, or a path to a saved trace JSON; ``alerts`` / ``incidents``
accept the typed objects or their dict forms, so the CLI can render
from saved files and tests from live runs through one code path.
"""

from __future__ import annotations

import html
import json
import math
from collections.abc import Iterable, Sequence
from pathlib import Path

from ..errors import ConfigurationError
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import TraceRecorder

#: Chart palette (colorblind-safe, Observable-10 derived).
PALETTE = (
    "#4269d0",
    "#efb118",
    "#ff725c",
    "#6cc5b0",
    "#3ca951",
    "#ff8ab7",
    "#a463f2",
    "#97bbf5",
    "#9c6b4e",
    "#9498a0",
)

_SEVERITY_COLORS = {"info": "#97bbf5", "warn": "#efb118", "page": "#ff725c"}

_WIDTH = 720
_HEIGHT = 150
_PAD_LEFT = 64
_PAD_RIGHT = 16
_PAD_TOP = 14
_PAD_BOTTOM = 26


def _chrome_events(trace: object) -> list[dict]:
    """Normalize any accepted trace form into Chrome event dicts."""
    if trace is None:
        return []
    if isinstance(trace, TraceRecorder):
        return list(trace.to_chrome()["traceEvents"])
    if isinstance(trace, dict):
        return list(trace.get("traceEvents", []))
    if isinstance(trace, (str, Path)):
        payload = json.loads(Path(trace).read_text(encoding="utf-8"))
        return list(payload.get("traceEvents", []))
    raise ConfigurationError(
        f"trace must be a TraceRecorder, Chrome dict or path, "
        f"got {type(trace).__name__}"
    )


def _as_dicts(items: Iterable[object]) -> list[dict]:
    """Alert/IncidentBundle objects or dicts → dicts."""
    out: list[dict] = []
    for item in items:
        if isinstance(item, dict):
            out.append(item)
        else:
            to_dict = getattr(item, "to_dict", None)
            if to_dict is None:
                raise ConfigurationError(
                    f"expected dicts or objects with to_dict(), "
                    f"got {type(item).__name__}"
                )
            out.append(to_dict())
    return out


def _metrics_dict(metrics: object) -> dict | None:
    if metrics is None:
        return None
    if isinstance(metrics, MetricsRegistry):
        return metrics.to_dict()
    if isinstance(metrics, dict):
        return metrics
    if isinstance(metrics, (str, Path)):
        return dict(json.loads(Path(metrics).read_text(encoding="utf-8")))
    raise ConfigurationError(
        f"metrics must be a MetricsRegistry, dict or path, "
        f"got {type(metrics).__name__}"
    )


def _fmt_seconds(value: float) -> str:
    """A modelled duration with an SI prefix (1.2 ms, 3.4 µs, ...)."""
    magnitude = abs(value)
    for scale, suffix in ((1.0, "s"), (1e-3, "ms"), (1e-6, "µs")):
        if magnitude >= scale:
            return f"{value / scale:.3g} {suffix}"
    return f"{value * 1e9:.3g} ns"


def _fmt_value(value: float, unit: str) -> str:
    if unit == "s":
        return _fmt_seconds(value)
    if unit == "%":
        return f"{value * 100.0:.0f}%"
    return f"{value:.3g}"


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1)
    )
    return sorted_values[rank]


class _Chart:
    """One inline-SVG timeline chart over the shared modelled axis."""

    def __init__(
        self, title: str, t0: float, t1: float, unit: str = ""
    ) -> None:
        self.title = title
        self.t0 = t0
        self.t1 = max(t1, t0 + 1e-12)
        self.unit = unit
        self.series: list[tuple[str, str, list[tuple[float, float]]]] = []
        self.markers: list[tuple[float, str, str, str]] = []

    def add_series(
        self, label: str, color: str, points: list[tuple[float, float]]
    ) -> None:
        if points:
            self.series.append((label, color, points))

    def add_marker(
        self, at: float, color: str, label: str, css_class: str
    ) -> None:
        self.markers.append((at, color, label, css_class))

    def _x(self, t: float) -> float:
        span = self.t1 - self.t0
        frac = (t - self.t0) / span
        return _PAD_LEFT + frac * (_WIDTH - _PAD_LEFT - _PAD_RIGHT)

    def _y(self, value: float, vmax: float) -> float:
        frac = 0.0 if vmax <= 0.0 else min(1.0, value / vmax)
        return _HEIGHT - _PAD_BOTTOM - frac * (
            _HEIGHT - _PAD_TOP - _PAD_BOTTOM
        )

    def render(self) -> str:
        vmax = max(
            (v for _, _, pts in self.series for _, v in pts), default=0.0
        )
        if vmax <= 0.0:
            vmax = 1.0
        parts = [
            f'<svg viewBox="0 0 {_WIDTH} {_HEIGHT}" role="img" '
            f'aria-label="{html.escape(self.title)}">'
        ]
        # Gridlines + y labels at 0 / half / max.
        for frac in (0.0, 0.5, 1.0):
            y = self._y(frac * vmax, vmax)
            parts.append(
                f'<line class="grid" x1="{_PAD_LEFT}" y1="{y:.1f}" '
                f'x2="{_WIDTH - _PAD_RIGHT}" y2="{y:.1f}"/>'
            )
            parts.append(
                f'<text class="axis" x="{_PAD_LEFT - 6}" y="{y + 3:.1f}" '
                f'text-anchor="end">'
                f"{html.escape(_fmt_value(frac * vmax, self.unit))}</text>"
            )
        # x labels: modelled start/end of the capture.
        y_axis = _HEIGHT - _PAD_BOTTOM + 14
        parts.append(
            f'<text class="axis" x="{_PAD_LEFT}" y="{y_axis}">'
            f"{html.escape(_fmt_seconds(self.t0))}</text>"
        )
        parts.append(
            f'<text class="axis" x="{_WIDTH - _PAD_RIGHT}" y="{y_axis}" '
            f'text-anchor="end">{html.escape(_fmt_seconds(self.t1))}</text>'
        )
        for label, color, points in self.series:
            coords = " ".join(
                f"{self._x(t):.1f},{self._y(v, vmax):.1f}" for t, v in points
            )
            parts.append(
                f'<polyline class="series" points="{coords}" '
                f'stroke="{color}"><title>{html.escape(label)}</title>'
                f"</polyline>"
            )
            if len(points) == 1:
                t, v = points[0]
                parts.append(
                    f'<circle cx="{self._x(t):.1f}" '
                    f'cy="{self._y(v, vmax):.1f}" r="2.5" fill="{color}"/>'
                )
        for at, color, label, css_class in self.markers:
            if not (self.t0 <= at <= self.t1):
                continue
            x = self._x(at)
            parts.append(
                f'<line class="{css_class}" x1="{x:.1f}" y1="{_PAD_TOP}" '
                f'x2="{x:.1f}" y2="{_HEIGHT - _PAD_BOTTOM}" '
                f'stroke="{color}"><title>{html.escape(label)}</title></line>'
            )
        parts.append("</svg>")
        legend = "".join(
            f'<span class="key"><span class="swatch" '
            f'style="background:{color}"></span>{html.escape(label)}</span>'
            for label, color, _ in self.series
        )
        return (
            f'<figure><figcaption>{html.escape(self.title)}'
            f"{legend}</figcaption>{''.join(parts)}</figure>"
        )


def _bucketize(
    points: list[tuple[float, float]],
    t0: float,
    t1: float,
    buckets: int,
    reduce: str,
) -> list[tuple[float, float]]:
    """Reduce (t, value) points into per-bucket series points."""
    if not points:
        return []
    width = max((t1 - t0) / buckets, 1e-12)
    bins: dict[int, list[float]] = {}
    for t, value in points:
        index = min(buckets - 1, max(0, int((t - t0) / width)))
        bins.setdefault(index, []).append(value)
    out: list[tuple[float, float]] = []
    for index in sorted(bins):
        values = sorted(bins[index])
        center = t0 + (index + 0.5) * width
        if reduce == "p50":
            out.append((center, _quantile(values, 0.5)))
        elif reduce == "p99":
            out.append((center, _quantile(values, 0.99)))
        elif reduce == "sum":
            out.append((center, sum(values)))
        else:
            out.append((center, sum(values) / len(values)))
    return out


def _track_names(events: list[dict]) -> tuple[dict, dict]:
    """(pid → process name, (pid, tid) → thread name) from metadata."""
    processes: dict[int, str] = {}
    threads: dict[tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        args = event.get("args", {})
        if event.get("name") == "process_name":
            processes[event["pid"]] = str(args.get("name", event["pid"]))
        elif event.get("name") == "thread_name":
            threads[(event["pid"], event["tid"])] = str(
                args.get("name", event["tid"])
            )
    return processes, threads


def _time_domain(events: list[dict]) -> tuple[float, float]:
    starts: list[float] = []
    ends: list[float] = []
    for event in events:
        if event.get("ph") == "M":
            continue
        ts = event.get("ts", 0.0) / 1e6
        starts.append(ts)
        ends.append(ts + event.get("dur", 0.0) / 1e6)
    if not starts:
        return 0.0, 1.0
    return min(starts), max(ends)


def _core_label(
    processes: dict, threads: dict, pid: int, tid: int
) -> str:
    process = processes.get(pid, str(pid))
    thread = threads.get((pid, tid), str(tid))
    return f"{process} · {thread}"


def _build_charts(
    events: list[dict],
    alerts: list[dict],
    incidents: list[dict],
    buckets: int,
) -> list[_Chart]:
    processes, threads = _track_names(events)
    t0, t1 = _time_domain(events)
    for alert in alerts:
        t1 = max(t1, float(alert.get("at", t0)))
    spans = [e for e in events if e.get("ph") == "X"]

    latency = _Chart("End-to-end latency quantiles", t0, t1, unit="s")
    request_points = [
        ((e["ts"] + e.get("dur", 0.0)) / 1e6, e.get("dur", 0.0) / 1e6)
        for e in spans
        if e.get("cat") == "request"
    ]
    latency.add_series(
        "p99",
        PALETTE[2],
        _bucketize(request_points, t0, t1, buckets, "p99"),
    )
    latency.add_series(
        "p50",
        PALETTE[0],
        _bucketize(request_points, t0, t1, buckets, "p50"),
    )

    utilization = _Chart("Per-core utilization (busy fraction)", t0, t1, unit="%")
    pending = _Chart("Per-core pending depth at flush", t0, t1)
    flush_tracks: dict[tuple[int, int], list[dict]] = {}
    for event in spans:
        if event.get("cat") == "flush":
            flush_tracks.setdefault(
                (event["pid"], event["tid"]), []
            ).append(event)
    width = max((t1 - t0) / buckets, 1e-12)
    for index, (key, flushes) in enumerate(sorted(flush_tracks.items())):
        color = PALETTE[index % len(PALETTE)]
        label = _core_label(processes, threads, *key)
        busy = [
            (e["ts"] / 1e6 + e.get("dur", 0.0) / 2e6, e.get("dur", 0.0) / 1e6)
            for e in flushes
        ]
        utilization.add_series(
            label,
            color,
            [
                (center, min(1.0, total / width))
                for center, total in _bucketize(busy, t0, t1, buckets, "sum")
            ],
        )
        depth = [
            (
                (e["ts"] + e.get("dur", 0.0)) / 1e6,
                float(e.get("args", {}).get("pending", 0)),
            )
            for e in flushes
        ]
        pending.add_series(
            label, color, _bucketize(depth, t0, t1, buckets, "mean")
        )

    cache = _Chart("Program-cache hit rate", t0, t1, unit="%")
    cache_points = [
        (e["ts"] / 1e6, 1.0) for e in events if e.get("cat") == "cache"
    ]
    cache_points += [
        (e["ts"] / 1e6, 0.0) for e in spans if e.get("cat") == "compile"
    ]
    cache.add_series(
        "hit rate", PALETTE[3], _bucketize(cache_points, t0, t1, buckets, "mean")
    )

    charts = [latency, utilization, pending, cache]
    for alert in alerts:
        if alert.get("state") != "firing":
            continue
        color = _SEVERITY_COLORS.get(alert.get("severity", "warn"), "#efb118")
        label = (
            f"alert {alert.get('rule', '?')} "
            f"({alert.get('severity', '?')}) at "
            f"{_fmt_seconds(float(alert.get('at', 0.0)))}"
        )
        for chart in charts:
            chart.add_marker(
                float(alert.get("at", 0.0)), color, label, "alert-marker"
            )
    for incident in incidents:
        trigger = incident.get("trigger", {})
        label = (
            f"incident ({trigger.get('kind', '?')}) at "
            f"{_fmt_seconds(float(incident.get('at', 0.0)))}"
        )
        for chart in charts:
            chart.add_marker(
                float(incident.get("at", 0.0)),
                "#9498a0",
                label,
                "incident-marker",
            )
    return charts


def _alert_table(alerts: list[dict]) -> str:
    if not alerts:
        return "<p>No alert transitions in this capture.</p>"
    rows = []
    for alert in alerts:
        rows.append(
            "<tr>"
            f"<td><code>{html.escape(str(alert.get('rule', '?')))}</code></td>"
            f"<td class=\"sev-{html.escape(str(alert.get('severity', '?')))}\">"
            f"{html.escape(str(alert.get('severity', '?')))}</td>"
            f"<td>{html.escape(str(alert.get('state', '?')))}</td>"
            f"<td>{html.escape(_fmt_seconds(float(alert.get('at', 0.0))))}</td>"
            f"<td>{float(alert.get('value', 0.0)):.3g} vs "
            f"{float(alert.get('threshold', 0.0)):.3g}</td>"
            f"<td>{html.escape(str(alert.get('message', '')))}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>rule</th><th>severity</th><th>state</th>"
        "<th>modelled time</th><th>value</th><th>message</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _metrics_table(metrics: dict | None) -> str:
    if not metrics:
        return ""
    rows = []
    for family in ("counters", "gauges"):
        for name, value in sorted(metrics.get(family, {}).items()):
            shown = f"{value:g}" if isinstance(value, float) else str(value)
            rows.append(
                f"<tr><td><code>{html.escape(name)}</code></td>"
                f"<td>{family[:-1]}</td><td>{shown}</td></tr>"
            )
    for name, summary in sorted(metrics.get("histograms", {}).items()):
        if summary is None:
            continue
        shown = (
            f"count {summary.get('count', 0)}, "
            f"p50 {_fmt_seconds(summary.get('p50', 0.0))}, "
            f"p99 {_fmt_seconds(summary.get('p99', 0.0))}"
        )
        rows.append(
            f"<tr><td><code>{html.escape(name)}</code></td>"
            f"<td>histogram</td><td>{shown}</td></tr>"
        )
    if not rows:
        return ""
    return (
        "<h2>Final metrics</h2>"
        "<table><thead><tr><th>metric</th><th>kind</th><th>value</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 820px; color: #1a1a2e; background: #fcfcfd; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
figure { margin: 1.2rem 0; }
figcaption { font-weight: 600; margin-bottom: .3rem; }
svg { width: 100%; height: auto; background: #fff;
      border: 1px solid #e3e3ea; border-radius: 6px; }
.grid { stroke: #ececf2; stroke-width: 1; }
.axis { font: 10px system-ui, sans-serif; fill: #6b6b7b; }
.series { fill: none; stroke-width: 1.6; }
.alert-marker { stroke-width: 1.6; stroke-dasharray: 5 3; }
.incident-marker { stroke-width: 1.2; stroke-dasharray: 2 3; }
.key { margin-left: .8rem; font-weight: 400; font-size: .85rem; }
.swatch { display: inline-block; width: .7em; height: .7em;
          border-radius: 2px; margin-right: .3em; }
table { border-collapse: collapse; width: 100%; font-size: .9rem; }
th, td { border: 1px solid #e3e3ea; padding: .3rem .5rem;
         text-align: left; }
th { background: #f4f4f8; }
.sev-page { color: #c22f1e; font-weight: 700; }
.sev-warn { color: #9a6b00; font-weight: 600; }
code { background: #f1f1f6; padding: 0 .25em; border-radius: 3px; }
.meta { color: #6b6b7b; font-size: .85rem; }
"""


def render_dashboard(
    trace: object = None,
    metrics: object = None,
    alerts: Sequence[object] = (),
    incidents: Sequence[object] = (),
    title: str = "repro serving dashboard",
    buckets: int = 48,
) -> str:
    """One self-contained HTML page for a trace + metrics capture."""
    if buckets < 1:
        raise ConfigurationError(
            f"buckets must be at least 1, got {buckets}"
        )
    events = _chrome_events(trace)
    alert_dicts = _as_dicts(alerts)
    incident_dicts = _as_dicts(incidents)
    charts = _build_charts(events, alert_dicts, incident_dicts, buckets)
    firing = sum(1 for a in alert_dicts if a.get("state") == "firing")
    body = [
        f"<h1>{html.escape(title)}</h1>",
        (
            f'<p class="meta">{len(events)} trace events · '
            f"{firing} alert firing(s) · "
            f"{len(incident_dicts)} incident bundle(s) · "
            f"modelled clock throughout</p>"
        ),
    ]
    body.extend(chart.render() for chart in charts)
    body.append("<h2>Alert transitions</h2>")
    body.append(_alert_table(alert_dicts))
    body.append(_metrics_table(_metrics_dict(metrics)))
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_STYLE}</style></head>\n"
        f"<body>{''.join(body)}</body></html>\n"
    )


def save_dashboard(
    path: str | Path,
    trace: object = None,
    metrics: object = None,
    alerts: Sequence[object] = (),
    incidents: Sequence[object] = (),
    title: str = "repro serving dashboard",
    buckets: int = 48,
) -> Path:
    """Render and write the dashboard; returns the written path."""
    target = Path(path)
    target.write_text(
        render_dashboard(
            trace=trace,
            metrics=metrics,
            alerts=alerts,
            incidents=incidents,
            title=title,
            buckets=buckets,
        ),
        encoding="utf-8",
    )
    return target
