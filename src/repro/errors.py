"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A device or system was constructed with inconsistent parameters."""


class PendingFlushError(ConfigurationError, RuntimeError):
    """A serving result was read before the flush that resolves it ran.

    Doubles as a :class:`RuntimeError` (reading an unresolved future is
    a sequencing mistake, not a configuration one) while staying inside
    the :class:`ReproError` hierarchy via :class:`ConfigurationError`,
    so both ``except RuntimeError`` and the package-wide handler catch
    it.  The message names the pending flush and the call that
    resolves it.
    """


class ClusterSaturatedError(ReproError, RuntimeError):
    """A cluster shed a request at admission control.

    Raised by :class:`repro.api.PhotonicCluster` when ``max_pending``
    requests are already queued across the fleet and the new request's
    priority does not grant it bypass.  Doubles as a
    :class:`RuntimeError` (saturation is a load condition, not a
    configuration one) while staying catchable via the package-wide
    :class:`ReproError` handler.  The message names the limit and the
    calls that drain the backlog.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A request was shed because its deadline expired before (or
    during) the flush that would have resolved it.

    Raised when reading a :class:`~repro.api.Future` submitted with
    ``deadline=`` that the serving path dropped: either the deadline
    was already expired at submit time, or the modelled completion time
    of its coalesced batch fell past the deadline at flush time.  Shed
    requests are counted as ``deadline_misses`` on
    :class:`~repro.api.RunReport`.  Doubles as a :class:`TimeoutError`
    (a deadline miss is a timeout, not a configuration mistake) while
    staying catchable via the package-wide :class:`ReproError` handler.
    The message names the request and its deadline.
    """


class UnitConversionError(ConfigurationError, ValueError):
    """A unit-conversion helper was handed a value outside its domain
    (non-positive power to dBm, zero wavelength, ...).

    Doubles as a :class:`ValueError` (the argument's *value* is the
    problem, matching what the converters historically raised) while
    staying inside the :class:`ReproError` hierarchy via
    :class:`ConfigurationError`, so both ``except ValueError`` and the
    package-wide handler catch it.
    """


class ProgramStoreError(ReproError):
    """A persisted compiled-program store entry could not be used.

    Base class for every failure mode of
    :class:`repro.elastic.ProgramStore`: callers that warm-start
    opportunistically catch this one type and fall back to a cold
    compile, while tests can assert the precise subclass.
    """


class CorruptProgramError(ProgramStoreError, ValueError):
    """A store entry's manifest or array payload is damaged or
    inconsistent (unparsable JSON, missing arrays, digest mismatch,
    unknown format version).

    Doubles as a :class:`ValueError` (the persisted *value* is the
    problem) while staying catchable via the package-wide
    :class:`ReproError` handler.  The message names the entry and what
    failed to parse; the fix is to delete the entry and recompile.
    """


class StaleProgramError(ProgramStoreError, RuntimeError):
    """A store entry was compiled under a different calibration epoch
    than the core asking for it.

    Raised by :meth:`repro.elastic.ProgramStore.load` when the
    persisted ``calibration_epoch`` does not match the requesting
    core's current epoch: the entry's drift-compensation snapshot no
    longer describes the hardware trims, so restoring it would not be
    bit-for-bit.  Doubles as a :class:`RuntimeError` (staleness is a
    lifecycle condition, not a configuration one).  Serving paths catch
    it and recompile; the fresh program overwrites the stale entry.
    """


class PhotonicsError(ReproError):
    """A photonic component or network was used incorrectly."""


class PortConnectionError(PhotonicsError):
    """A photonic netlist connection is invalid (unknown port, double
    drive, or a cycle in a feed-forward network)."""


class SimulationError(ReproError):
    """A simulation engine failed or was configured inconsistently."""


class ConversionError(ReproError):
    """An ADC produced no valid code (e.g. no thresholding block fired)."""


class MappingError(ReproError):
    """A workload could not be mapped onto the tensor core."""
