"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A device or system was constructed with inconsistent parameters."""


class PhotonicsError(ReproError):
    """A photonic component or network was used incorrectly."""


class PortConnectionError(PhotonicsError):
    """A photonic netlist connection is invalid (unknown port, double
    drive, or a cycle in a feed-forward network)."""


class SimulationError(ReproError):
    """A simulation engine failed or was configured inconsistently."""


class ConversionError(ReproError):
    """An ADC produced no valid code (e.g. no thresholding block fired)."""


class MappingError(ReproError):
    """A workload could not be mapped onto the tensor core."""
