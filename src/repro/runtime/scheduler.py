"""Request batching and weight-program caching for the serving path.

The physical core imposes two costs a naive caller pays on every
request: streaming the weight matrix through the pSRAM arrays (one
20 GHz cycle per column, plus 0.5 pJ per flipped bitcell) and one ADC
sample period per input vector.  Traffic amortizes both:

* :class:`WeightProgramCache` — an LRU of compiled weight programs
  keyed on the matrix bytes.  A hit skips the pSRAM re-streaming
  entirely (the weights are already latched and compiled); only misses
  pay load energy and compile time.
* :class:`BatchScheduler` — accepts many small matvec requests,
  coalesces them per (weight program, TIA gain) and evaluates each
  group as one batched :meth:`CompiledCore.matmul`, so the Python/ADC
  dispatch overhead is paid once per batch instead of once per vector.

Energy and latency accounting rides on the existing device models:
weight-load energy is the tensor core's own pSRAM ledger (measured
across each reload), analog compute time/energy come from
:class:`~repro.core.performance.PerformanceModel`, and every cache hit
is credited with the re-streaming cost it avoided — so
:meth:`BatchScheduler.stats` shows cache hits directly reducing the
reported weight-update energy.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..config import Technology, default_technology
from ..core.performance import PerformanceModel
from ..core.tensor_core import MatvecResult, PhotonicTensorCore
from ..errors import ConfigurationError, ProgramStoreError
from .engine import CompiledCore, weight_key


@dataclass
class CachedProgram:
    """A compiled weight program plus the load costs a hit avoids."""

    engine: CompiledCore
    load_energy: float
    load_time: float


class WeightProgramCache:
    """Least-recently-used cache of weight programs.

    Generic over the cached value (the scheduler stores
    :class:`CachedProgram`, the server also stores tiled engines); the
    key is the canonical byte string of the weight matrix
    (:func:`repro.runtime.engine.weight_key`).
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._programs: OrderedDict[bytes, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Programs dropped by :meth:`evict_where` (recalibration),
        #: not by LRU capacity pressure.
        self.invalidations = 0
        #: Programs restored from the attached program store instead of
        #: recompiled (:meth:`read_back`).
        self.restores = 0
        #: Store entries rejected on read-back (stale epoch, corrupt
        #: payload) — each one fell back to a cold compile.
        self.store_rejects = 0
        self._store = None
        self._store_fingerprint: str | None = None
        self._store_technology = None
        self._store_epoch = None
        self._store_drift = None

    def __len__(self) -> int:
        return len(self._programs)

    def __contains__(self, key: bytes) -> bool:
        return key in self._programs

    def keys(self) -> list[bytes]:
        """Cached keys, least recently used first."""
        return list(self._programs)

    def get(self, key: bytes):
        """Look up a program, refreshing its recency.  Counts the
        hit/miss; returns None on miss."""
        program = self._programs.get(key)
        if program is None:
            self.misses += 1
            return None
        self._programs.move_to_end(key)
        self.hits += 1
        return program

    def evict_where(self, predicate) -> int:
        """Drop every cached program ``predicate(program)`` selects;
        returns the dropped count.

        This is the *invalidation* path (recalibration dropping
        programs compiled under stale trims), tallied separately from
        capacity ``evictions`` so the LRU pressure statistics stay
        meaningful.
        """
        stale = [
            key for key, program in self._programs.items() if predicate(program)
        ]
        for key in stale:
            del self._programs[key]
        self.invalidations += len(stale)
        return len(stale)

    def put(self, key: bytes, program) -> object | None:
        """Insert a program, evicting the least recently used entry
        beyond capacity.  Returns the evicted program (or None).

        With a program store attached (:meth:`attach_store`) the insert
        writes through: the compiled program is persisted so another
        core — or another process — can warm-start it.  Capacity
        evictions do *not* remove store entries (the store is the
        durable tier; the LRU is the hot tier).
        """
        self._programs[key] = program
        self._programs.move_to_end(key)
        if self._store is not None:
            try:
                self._store.save(
                    _store_key(key), program, fingerprint=self._store_fingerprint
                )
            except ConfigurationError:
                # A value kind the store does not persist (the cache is
                # generic); keep it hot-tier only.
                pass
        if len(self._programs) > self.capacity:
            _, evicted = self._programs.popitem(last=False)
            self.evictions += 1
            return evicted
        return None

    # -- persistence tier ----------------------------------------------------
    def attach_store(
        self,
        store,
        *,
        fingerprint: str,
        technology,
        epoch_source,
        drift_source=None,
    ) -> None:
        """Back this cache with a :class:`repro.elastic.ProgramStore`.

        ``fingerprint`` identifies the compiling core (:func:`repro.
        elastic.core_fingerprint`); ``epoch_source`` is a zero-argument
        callable yielding the core's *current* calibration epoch at
        read-back time (entries from other epochs are rejected and
        recompiled); ``drift_source`` likewise yields the live
        :class:`~repro.health.DriftState` restored engines rebind to.
        Once attached, :meth:`put` writes through and
        :meth:`read_back` restores misses.
        """
        self._store = store
        self._store_fingerprint = fingerprint
        self._store_technology = technology
        self._store_epoch = epoch_source
        self._store_drift = drift_source

    @property
    def store(self):
        """The attached :class:`repro.elastic.ProgramStore` (or None)."""
        return self._store

    def read_back(self, key):
        """Restore ``key`` from the attached store, or None.

        Counts ``restores`` / ``store_rejects`` (a reject — stale
        calibration epoch or corrupt entry — means the caller should
        compile cold; the fresh :meth:`put` overwrites the bad entry).
        Does *not* insert: callers insert via :meth:`put` after
        charging the load ledgers, exactly like a cold compile.
        """
        if self._store is None:
            return None
        drift = self._store_drift() if self._store_drift is not None else None
        try:
            program = self._store.load(
                _store_key(key),
                fingerprint=self._store_fingerprint,
                epoch=self._store_epoch() if self._store_epoch is not None else 0,
                technology=self._store_technology,
                drift_state=drift,
            )
        except ProgramStoreError:
            self.store_rejects += 1
            return None
        if program is not None:
            self.restores += 1
        return program

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _store_key(key) -> bytes:
    """Canonical byte form of a cache key for the program store (the
    tiled cache keys on ``(weight_key, gain)`` tuples; the store is
    content-addressed on bytes)."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, tuple):
        return b"|".join(
            part if isinstance(part, bytes) else repr(part).encode()
            for part in key
        )
    return repr(key).encode()


class Ticket:
    """Handle for one submitted request; resolved by the next flush."""

    __slots__ = ("result", "resolved_at", "deadline", "expired")

    def __init__(self, deadline: float | None = None) -> None:
        self.result: MatvecResult | None = None
        #: Modelled-clock resolution timestamp [s]; stamped only when a
        #: telemetry binding is attached to the scheduler.
        self.resolved_at: float | None = None
        #: Absolute deadline [s] on the owning session's clock (None =
        #: best effort, never shed).
        self.deadline = deadline
        #: True when the flush shed this request: its batch's modelled
        #: completion time fell past the deadline.
        self.expired = False

    @property
    def done(self) -> bool:
        return self.result is not None


@dataclass
class SchedulerStats:
    """Aggregate accounting of a scheduler's traffic so far."""

    requests: int = 0
    flushed: int = 0
    batches: int = 0
    max_batch: int = 0
    #: Requests queued but not yet flushed at snapshot time — the
    #: per-core load signal least-loaded cluster routing reads.
    pending: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: pSRAM streaming energy actually spent on cache misses [J].
    weight_energy_spent: float = 0.0
    #: pSRAM streaming energy avoided by cache hits [J].
    weight_energy_saved: float = 0.0
    #: Weight streaming time actually spent [s] / avoided [s].
    weight_time_spent: float = 0.0
    weight_time_saved: float = 0.0
    #: ADC sample slots consumed by batched evaluations.
    samples: int = 0
    #: Analog compute time [s] and wall-plug energy [J] from the
    #: PerformanceModel (one sample period per batched input column).
    analog_time: float = 0.0
    analog_energy: float = 0.0
    #: Requests shed at flush because their batch's modelled completion
    #: time fell past their ``deadline=``.
    deadline_misses: int = 0

    @property
    def batch_fill(self) -> float:
        """Mean evaluated batch size over the configured maximum."""
        if self.batches == 0 or self.max_batch == 0:
            return 0.0
        return self.flushed / (self.batches * self.max_batch)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_latency(self) -> float:
        """Modelled serving time [s]: weight streaming plus analog compute."""
        return self.weight_time_spent + self.analog_time

    @property
    def total_energy(self) -> float:
        """Modelled serving energy [J]: weight streaming plus analog compute."""
        return self.weight_energy_spent + self.analog_energy


class BatchScheduler:
    """Coalesces matvec requests into batched compiled evaluations.

    One physical :class:`PhotonicTensorCore` backs the scheduler; each
    distinct weight matrix becomes a compiled program in the LRU cache.
    Requests queue per (weight program, gain) and :meth:`flush` runs
    every group as dense batches of at most ``max_batch`` columns.
    """

    def __init__(
        self,
        rows: int | None = None,
        columns: int | None = None,
        weight_bits: int | None = None,
        adc_bits: int | None = None,
        technology: Technology | None = None,
        cache_capacity: int = 8,
        max_batch: int = 256,
        label: str = "sched",
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max batch must be >= 1, got {max_batch}")
        self.technology = technology if technology is not None else default_technology()
        self.core = PhotonicTensorCore(
            rows=rows,
            columns=columns,
            weight_bits=weight_bits,
            adc_bits=adc_bits,
            technology=self.technology,
            label=label,
        )
        self.performance = PerformanceModel(
            technology=self.technology,
            rows=self.core.rows,
            columns=self.core.columns,
            weight_bits=self.core.weight_bits,
        )
        self.cache = WeightProgramCache(cache_capacity)
        self.max_batch = max_batch
        self._pending: OrderedDict[tuple[bytes, float], dict] = OrderedDict()
        self._stats = SchedulerStats(max_batch=max_batch)
        #: Optional :class:`repro.telemetry.Telemetry` binding (set by
        #: the owning session).  None = zero telemetry calls on the
        #: flush path.
        self.telemetry = None

    @property
    def rows(self) -> int:
        return self.core.rows

    @property
    def columns(self) -> int:
        return self.core.columns

    @property
    def pending(self) -> int:
        """Requests submitted but not yet flushed."""
        return sum(len(group["tickets"]) for group in self._pending.values())

    # -- request path --------------------------------------------------------
    def submit(
        self, weights, x, gain: float = 1.0, deadline: float | None = None
    ) -> Ticket:
        """Queue one matvec request; resolved by the next :meth:`flush`.

        ``deadline`` is an *absolute* timestamp on the owning session's
        clock: if the request's batch cannot complete by then (see
        :meth:`flush`), the request is shed instead of evaluated.
        """
        weights = np.asarray(weights, dtype=int)
        if weights.shape != (self.rows, self.columns):
            raise ConfigurationError(
                f"weight matrix must be {self.rows}x{self.columns}, "
                f"got shape {weights.shape}"
            )
        if np.any(weights < 0) or np.any(weights > self.core.max_weight):
            raise ConfigurationError(
                f"weights must lie in [0, {self.core.max_weight}], got range "
                f"[{weights.min()}, {weights.max()}]"
            )
        x = np.asarray(x, dtype=float)
        if x.shape != (self.columns,):
            raise ConfigurationError(
                f"input must have shape ({self.columns},), got {x.shape}"
            )
        if x.size and (x.min() < 0.0 or x.max() > 1.0):
            raise ConfigurationError(
                f"analog inputs must lie in [0, 1], got range "
                f"[{x.min():.6g}, {x.max():.6g}]"
            )
        if gain <= 0.0:
            raise ConfigurationError(f"TIA gain must be positive, got {gain}")

        key = (weight_key(weights), float(gain))
        group = self._pending.get(key)
        if group is None:
            # Copy: np.asarray aliases the caller's int array, and an
            # in-place mutation between submit and flush would compile
            # the mutated weights under the original key, poisoning the
            # program cache for every future request with that key.
            group = {
                "weights": weights.copy(),
                "inputs": [],
                "tickets": [],
                "has_deadline": False,
            }
            self._pending[key] = group
        ticket = Ticket(deadline=deadline)
        group["inputs"].append(x.copy())
        group["tickets"].append(ticket)
        if deadline is not None:
            group["has_deadline"] = True
        self._stats.requests += 1
        return ticket

    def _program_for(self, key: bytes, weights: np.ndarray) -> CachedProgram:
        tel = self.telemetry
        program = self.cache.get(key)
        if program is not None:
            # Hit: the pSRAM streaming this program originally paid is
            # exactly what reusing it avoids.
            self._stats.cache_hits += 1
            self._stats.weight_energy_saved += program.load_energy
            self._stats.weight_time_saved += program.load_time
            if tel is not None:
                tel.metrics.counter("cache_hits").inc()
                tel.instant(
                    "cache_hit", "cache", args={"program": key[:8].hex()}
                )
            return program
        self._stats.cache_misses += 1
        # Warm start: a persisted compile of this exact program (same
        # weights, geometry, technology, calibration epoch) skips the
        # host-side recompile entirely.  The *modelled* pSRAM streaming
        # cost is still charged — the weights must physically stream
        # into this core's arrays either way — so energy/latency
        # accounting is identical to a cold compile; only wall-clock
        # compile work is avoided.
        program = self.cache.read_back(key)
        restored = program is not None
        if restored:
            load_energy = program.load_energy
            load_time = program.load_time
        else:
            energy_before = self.core.weight_update_energy()
            self.core.load_weight_matrix(weights)
            load_energy = self.core.weight_update_energy() - energy_before
            load_time = self.core.weight_update_time()
            program = CachedProgram(
                engine=CompiledCore(
                    self.core, ladder_cache=self.core.runtime_ladder_cache
                ),
                load_energy=load_energy,
                load_time=load_time,
            )
        self._stats.weight_energy_spent += load_energy
        self._stats.weight_time_spent += load_time
        if self.cache.put(key, program) is not None:
            self._stats.cache_evictions += 1
        if tel is not None:
            # The pSRAM streaming occupies the core for load_time on
            # the modelled clock before the batch can evaluate.
            start = tel.clock.now
            tel.clock.advance(load_time)
            tel.metrics.counter("cache_misses").inc()
            if restored:
                tel.metrics.counter("warm_starts").inc()
            tel.span(
                "warm start" if restored else "compile",
                "fleet" if restored else "compile",
                start,
                load_time,
                args={
                    "program": key[:8].hex(),
                    "load_energy_pj": load_energy * 1e12,
                },
            )
        return program

    def flush(self, now: float | None = None) -> int:
        """Evaluate every pending group; returns resolved request count.

        ``now`` is the flush's start timestamp on the owning session's
        clock.  With it (or a telemetry binding, whose modelled clock
        then supplies the service timeline), requests carrying a
        ``deadline=`` are shed when their batch's estimated completion
        — the running service time plus one ADC sample period per
        column of the *pre-shed* chunk — falls past the deadline; shed
        tickets are flagged ``expired`` and counted as
        ``deadline_misses``.  Without either time source deadlines
        cannot be evaluated and every request runs.
        """
        resolved = 0
        sample_period = 1.0 / self.performance.sample_rate
        power = self.performance.total_power
        tel = self.telemetry
        if tel is not None:
            service_now = tel.clock.now
        else:
            service_now = now
        try:
            for (key, gain), group in self._pending.items():
                spent_before = self._stats.weight_time_spent
                program = self._program_for(key, group["weights"])
                if tel is not None:
                    service_now = tel.clock.now
                elif service_now is not None:
                    # Mirror the load time a telemetry clock would have
                    # advanced by (zero on a cache hit).
                    service_now += self._stats.weight_time_spent - spent_before
                inputs = group["inputs"]
                tickets = group["tickets"]
                shed_deadlines = group["has_deadline"] and service_now is not None
                for start in range(0, len(inputs), self.max_batch):
                    chunk = inputs[start : start + self.max_batch]
                    chunk_tickets = tickets[start : start + len(chunk)]
                    if shed_deadlines:
                        completion = service_now + len(chunk) * sample_period
                        live = [
                            index
                            for index, ticket in enumerate(chunk_tickets)
                            if ticket.deadline is None
                            or ticket.deadline >= completion
                        ]
                        if len(live) < len(chunk):
                            misses = len(chunk) - len(live)
                            survivors = set(live)
                            for index, ticket in enumerate(chunk_tickets):
                                if index not in survivors:
                                    ticket.expired = True
                            self._stats.deadline_misses += misses
                            if tel is not None:
                                tel.metrics.counter("deadline_misses").inc(
                                    misses
                                )
                            chunk = [chunk[index] for index in live]
                            chunk_tickets = [
                                chunk_tickets[index] for index in live
                            ]
                            if not chunk:
                                continue
                    batch = np.stack(chunk, axis=1)
                    result = program.engine.matmul(batch, gain=gain)
                    for offset, ticket in enumerate(chunk_tickets):
                        ticket.result = result.column(offset)
                    self._stats.batches += 1
                    self._stats.samples += len(chunk)
                    self._stats.analog_time += len(chunk) * sample_period
                    self._stats.analog_energy += len(chunk) * sample_period * power
                    resolved += len(chunk)
                    if tel is None:
                        if service_now is not None:
                            service_now += len(chunk) * sample_period
                    else:
                        # One ADC sample period per batched column on
                        # the modelled clock; requests of this batch
                        # resolve when its last conversion lands.
                        batch_start = tel.clock.now
                        batch_time = len(chunk) * sample_period
                        tel.clock.advance(batch_time)
                        service_now = tel.clock.now
                        for ticket in chunk_tickets:
                            ticket.resolved_at = tel.clock.now
                        tel.metrics.counter("batches").inc()
                        tel.metrics.histogram(
                            "batch_size", lo=1.0, hi=1e6, per_decade=16
                        ).observe(float(len(chunk)))
                        tel.span(
                            f"batch x{len(chunk)}",
                            "batch",
                            batch_start,
                            batch_time,
                            args={
                                "program": key[:8].hex(),
                                "columns": len(chunk),
                                "gain": gain,
                            },
                        )
        finally:
            # Never leave a stale group behind: a failed compile or
            # evaluation must not wedge every subsequent flush.
            self._pending.clear()
            self._stats.flushed += resolved
        return resolved

    def stats(self) -> SchedulerStats:
        """Detached snapshot of the accounting so far."""
        return dataclasses.replace(self._stats, pending=self.pending)
