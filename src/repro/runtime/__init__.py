"""Batched, tiled, cached inference runtime over the device simulator.

The device layer (:mod:`repro.core`) walks one vector at a time through
Python loops — faithful, but not a serving engine.  This package turns
it into one, in four layers:

* :mod:`~repro.runtime.engine` — :class:`CompiledCore`: a weight
  program snapshotted into dense response matrices and exact ADC code
  ladders, evaluating whole batches as numpy matmuls + searchsorted
  binning, code-for-code equal to the device loop.
* :mod:`~repro.runtime.tiling` — :class:`TiledMatmul`: arbitrary
  (out, in) weight shapes sharded across a grid of physical tiles with
  digital partial-sum accumulation, ragged-edge padding and per-tile
  TIA range calibration.
* :mod:`~repro.runtime.scheduler` — :class:`BatchScheduler` +
  :class:`WeightProgramCache`: request coalescing per weight program
  and an LRU of compiled programs so repeated weights skip the 20 GHz
  pSRAM re-streaming, with energy/latency accounting riding on the
  device ledgers and :class:`~repro.core.performance.PerformanceModel`.
* :mod:`~repro.runtime.serving` — legacy :class:`InferenceServer`
  facade, now a thin deprecation shim over the single front door,
  :class:`repro.api.PhotonicSession`, plus the ``python -m repro
  serve-bench`` / ``serve-bench cnn`` traffic replays (both driven
  through the session).
"""

from .engine import BatchResult, CompiledCore, weight_key
from .scheduler import (
    BatchScheduler,
    CachedProgram,
    SchedulerStats,
    Ticket,
    WeightProgramCache,
)
from .serving import (
    ConvProgram,
    ConvTicket,
    InferenceServer,
    ServerStats,
    ServerTicket,
    run_cluster_serve_bench,
    run_cnn_serve_bench,
    run_serve_bench,
    synthetic_trace,
)
from .tiling import DifferentialProgram, TiledMatmul

__all__ = [
    "BatchResult",
    "BatchScheduler",
    "CachedProgram",
    "CompiledCore",
    "ConvProgram",
    "ConvTicket",
    "DifferentialProgram",
    "InferenceServer",
    "run_cluster_serve_bench",
    "run_cnn_serve_bench",
    "run_serve_bench",
    "SchedulerStats",
    "ServerStats",
    "ServerTicket",
    "synthetic_trace",
    "Ticket",
    "TiledMatmul",
    "weight_key",
    "WeightProgramCache",
]
