"""Sharding arbitrary weight shapes across a grid of physical tiles.

One physical core is ``rows x columns``; a workload matrix is not.
:class:`TiledMatmul` maps an (out, in) unsigned weight matrix onto a
grid of :class:`PhotonicTensorCore` tiles the way a multi-tile
deployment would: row tiles fan output rows across independent cores
(their ADCs digitize in parallel), column tiles split the input vector
and their dequantized partial sums accumulate digitally.  Ragged edge
tiles are zero-padded — padded rows read code 0 and padded inputs
contribute nothing, so no masking is needed on the way out.

Each tile is compiled (:class:`~repro.runtime.engine.CompiledCore`)
once at construction, with the ADC ladder bisection shared across the
whole grid, so batched evaluation stays dense end-to-end.  Per-tile
row-TIA gains are chosen from the tile's own weight block (``gain=
"auto"``): a block holding small weights uses a hotter TIA so its
partial sums still resolve against the full eoADC ladder — the
per-tile ADC range calibration a real deployment performs.

The price of tiling is one output quantization *per column tile*
instead of one per output; :meth:`quantization_error_bound` exposes the
resulting envelope so callers (and the acceptance tests) can bound the
end-to-end error against the exact float product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Technology, default_technology
from ..core.tensor_core import PhotonicTensorCore
from ..errors import MappingError
from ..ml.mapping import iter_tile_blocks, tile_grid
from .engine import CompiledCore


@dataclass
class DifferentialProgram:
    """A cached differential weight program on tiled grids.

    The positive/negative engines hold the quantized weight magnitudes
    of a signed program, W = (W+ - W-); the negative grid is None for
    an all-non-negative program, saving the second analog pass.  Float
    dequantization scales stay with each request, so programs that
    quantize to the same integers share one compiled pair.  This is the
    unit the session/server program caches store for both the conv
    route and compiled model layers (``ConvProgram`` is its historical
    alias in :mod:`repro.runtime.serving`).
    """

    positive: TiledMatmul
    negative: TiledMatmul | None

    @property
    def calibration_epoch(self) -> int:
        """Drift-calibration epoch the grids were compiled under (both
        halves compile together, so the positive grid speaks for the
        pair); the serving caches evict programs whose epoch trails the
        core's after a recalibration."""
        return self.positive.calibration_epoch

    @property
    def passes(self) -> int:
        """Sequential analog passes per input column."""
        return 2 if self.negative is not None else 1

    @property
    def tile_count(self) -> int:
        return self.positive.tile_count + (
            self.negative.tile_count if self.negative is not None else 0
        )

    @property
    def weight_update_energy(self) -> float:
        return self.positive.weight_update_energy + (
            self.negative.weight_update_energy if self.negative is not None else 0.0
        )

    @property
    def weight_update_time(self) -> float:
        """Streaming time [s]: the two differential arrays load their
        columns concurrently (independent pSRAM drivers), so the pair
        costs the slower grid, not the sum."""
        return max(
            self.positive.weight_update_time,
            self.negative.weight_update_time if self.negative is not None else 0.0,
        )

    def matmul(self, batch: np.ndarray, gain: float) -> np.ndarray:
        """Differential W @ X in quantized dot units."""
        raw = self.positive.matmul(batch, gain=gain)
        if self.negative is not None:
            raw = raw - self.negative.matmul(batch, gain=gain)
        return raw

    # -- persistence ---------------------------------------------------------
    def state_dict(self) -> dict:
        """Both grids' :meth:`TiledMatmul.state_dict` payloads (the
        negative half ``None`` for a single-pass program)."""
        return {
            "positive": self.positive.state_dict(),
            "negative": None if self.negative is None else self.negative.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict, technology, drift_state=None) -> "DifferentialProgram":
        """Rebuild the differential pair from :meth:`state_dict`."""
        negative = state.get("negative")
        return cls(
            positive=TiledMatmul.from_state(
                state["positive"]["arrays"],
                state["positive"]["meta"],
                technology,
                drift_state=drift_state,
            ),
            negative=None
            if negative is None
            else TiledMatmul.from_state(
                negative["arrays"],
                negative["meta"],
                technology,
                drift_state=drift_state,
            ),
        )


def auto_range_gain(block: np.ndarray, full_scale_dot: int) -> float:
    """The 'auto' TIA range-calibration rule shared by every request
    path: map the block's largest achievable dot product (max row
    weight sum, inputs at 1) onto the eoADC full scale.  A zero block
    falls back to the native gain."""
    peak = int(np.asarray(block).sum(axis=1).max(initial=0))
    return full_scale_dot / peak if peak > 0 else 1.0


class TiledMatmul:
    """A weight matrix of arbitrary shape compiled onto a tile grid."""

    def __init__(
        self,
        weight_matrix,
        tile_rows: int | None = None,
        tile_columns: int | None = None,
        weight_bits: int | None = None,
        adc_bits: int | None = None,
        technology: Technology | None = None,
        gain: float | str = "auto",
        label: str = "tiled",
        ladder_cache: list | None = None,
        drift_state=None,
    ) -> None:
        self.technology = technology if technology is not None else default_technology()
        tensor = self.technology.tensor
        self.tile_rows = tensor.rows if tile_rows is None else tile_rows
        self.tile_columns = tensor.columns if tile_columns is None else tile_columns
        if self.tile_rows < 1 or self.tile_columns < 1:
            raise MappingError("tile dimensions must be >= 1")

        weight_matrix = np.asarray(weight_matrix, dtype=int)
        if weight_matrix.ndim != 2:
            raise MappingError(
                f"weight matrix must be 2-D, got shape {weight_matrix.shape}"
            )
        self.weight_matrix = weight_matrix
        self.out_features, self.in_features = weight_matrix.shape

        probe = PhotonicTensorCore(
            rows=self.tile_rows,
            columns=self.tile_columns,
            weight_bits=weight_bits,
            adc_bits=adc_bits,
            technology=self.technology,
            label=f"{label}.probe",
        )
        # Callers serving a drifting core (repro.api / repro.health)
        # thread its live DriftState in: every tile of the grid is a
        # core in the same package, so the whole grid shares one
        # degradation trajectory.  The compiled tiles snapshot the
        # state's trims exactly as CompiledCore does.
        probe.drift_state = drift_state
        # Same stamping rule as CompiledCore: an inactive state (no
        # models) never distinguishes epochs, so both caches agree on
        # which programs a recalibration invalidates.
        self.calibration_epoch = (
            drift_state.epoch
            if drift_state is not None and drift_state.active
            else 0
        )
        if np.any(weight_matrix < 0) or np.any(weight_matrix > probe.max_weight):
            raise MappingError(
                f"weights must lie in [0, {probe.max_weight}] for "
                f"{probe.weight_bits}-bit tiles, got range "
                f"[{weight_matrix.min()}, {weight_matrix.max()}]"
            )
        self.weight_bits = probe.weight_bits
        self.max_weight = probe.max_weight
        self.adc_levels = probe.row_adcs[0].levels

        self.row_tiles, self.column_tiles = tile_grid(
            self.out_features, self.in_features, self.tile_rows, self.tile_columns
        )

        #: Per-(row_tile, col_tile) TIA gain actually applied (the
        #: defaults; a float ``gain`` argument to matvec/matmul
        #: overrides them globally for that call).
        self.gains = np.ones((self.row_tiles, self.column_tiles))
        #: Grid of compiled tile programs, [row_tile][col_tile].
        self.tiles: list[list[CompiledCore]] = [[] for _ in range(self.row_tiles)]

        full_scale_dot = self.tile_columns * self.max_weight
        # Callers building several grids over the same technology (the
        # dense/conv differential pairs, the serving cache) pass a
        # shared ladder memo so the ADC bisection runs once for all of
        # them; a private list still shares it across this grid's tiles.
        if ladder_cache is None:
            ladder_cache = []
        cleared = np.zeros((self.tile_rows, self.tile_columns), dtype=int)
        load_energy = 0.0
        for row_tile, col_tile, (row_start, row_stop), (col_start, col_stop) in (
            iter_tile_blocks(self.out_features, self.in_features,
                             self.tile_rows, self.tile_columns)
        ):
            block = np.zeros((self.tile_rows, self.tile_columns), dtype=int)
            block[: row_stop - row_start, : col_stop - col_start] = weight_matrix[
                row_start:row_stop, col_start:col_stop
            ]
            if gain == "auto":
                tile_gain = auto_range_gain(block, full_scale_dot)
            elif isinstance(gain, (int, float)):
                if gain <= 0.0:
                    raise MappingError(f"TIA gain must be positive, got {gain}")
                tile_gain = float(gain)
            else:
                raise MappingError(f"gain must be a number or 'auto', got {gain!r}")
            self.gains[row_tile, col_tile] = tile_gain

            # Reuse one physical-core template per tile slot; each
            # compile() snapshot is detached from the template.  Every
            # tile of a real grid is its own core loading its block
            # into cleared pSRAM arrays, so each block's load energy is
            # the delta from a cleared probe — not from the previous
            # block's residue, which would make the grid energy depend
            # on tile iteration order.
            probe.load_weight_matrix(cleared)
            energy_before = probe.weight_update_energy()
            probe.load_weight_matrix(block)
            load_energy += probe.weight_update_energy() - energy_before
            self.tiles[row_tile].append(CompiledCore(probe, ladder_cache=ladder_cache))
        self.weight_update_energy = load_energy
        self.weight_update_time = self.column_tiles * probe.weight_update_time()

    # -- persistence ---------------------------------------------------------
    def state_dict(self) -> dict:
        """The compiled grid as plain ``{"arrays", "meta"}`` payloads:
        per-tile response matrices / ladder tables / weight blocks
        stacked along a leading tile axis (row-major over the grid),
        the per-tile TIA gains, and one shared tile meta (every tile of
        a grid compiles off the same probe core, so the ADC scalars and
        drift trims are common).  :meth:`from_state` rebuilds a
        bit-for-bit equal grid without compiling."""
        flat = [
            self.tiles[row_tile][col_tile]
            for row_tile in range(self.row_tiles)
            for col_tile in range(self.column_tiles)
        ]
        tile_meta = flat[0].state_dict()["meta"]
        return {
            "arrays": {
                "weight_matrix": np.ascontiguousarray(
                    np.asarray(self.weight_matrix, dtype=np.int64)
                ),
                "gains": np.asarray(self.gains, dtype=float),
                "tile_responses": np.stack([tile.response for tile in flat]),
                "tile_boundaries": np.stack([tile.boundaries for tile in flat]),
                "tile_weights": np.stack(
                    [np.asarray(tile.weight_matrix, dtype=np.int64) for tile in flat]
                ),
            },
            "meta": {
                "tile_rows": int(self.tile_rows),
                "tile_columns": int(self.tile_columns),
                "out_features": int(self.out_features),
                "in_features": int(self.in_features),
                "row_tiles": int(self.row_tiles),
                "column_tiles": int(self.column_tiles),
                "weight_bits": int(self.weight_bits),
                "max_weight": int(self.max_weight),
                "adc_levels": int(self.adc_levels),
                "weight_update_energy": float(self.weight_update_energy),
                "weight_update_time": float(self.weight_update_time),
                "calibration_epoch": int(self.calibration_epoch),
                "tile": tile_meta,
            },
        }

    @classmethod
    def from_state(cls, arrays, meta, technology, drift_state=None) -> "TiledMatmul":
        """Rebuild a compiled grid from :meth:`state_dict` payloads
        without touching a probe core (no ladder bisection, no response
        rebuild).  ``drift_state`` rebinds every restored tile to the
        requesting core's live :class:`~repro.health.DriftState`, same
        stamping rule as construction."""
        self = cls.__new__(cls)
        self.technology = technology if technology is not None else default_technology()
        self.tile_rows = int(meta["tile_rows"])
        self.tile_columns = int(meta["tile_columns"])
        self.weight_matrix = np.asarray(arrays["weight_matrix"], dtype=int)
        self.out_features = int(meta["out_features"])
        self.in_features = int(meta["in_features"])
        self.weight_bits = int(meta["weight_bits"])
        self.max_weight = int(meta["max_weight"])
        self.adc_levels = int(meta["adc_levels"])
        self.row_tiles = int(meta["row_tiles"])
        self.column_tiles = int(meta["column_tiles"])
        self.gains = np.asarray(arrays["gains"], dtype=float)
        self.calibration_epoch = (
            int(meta["calibration_epoch"])
            if drift_state is not None and drift_state.active
            else 0
        )
        tile_meta = meta["tile"]
        responses = arrays["tile_responses"]
        boundaries = arrays["tile_boundaries"]
        weights = arrays["tile_weights"]
        self.tiles = []
        flat_index = 0
        for _ in range(self.row_tiles):
            band: list[CompiledCore] = []
            for _ in range(self.column_tiles):
                band.append(
                    CompiledCore.from_state(
                        {
                            "response": responses[flat_index],
                            "boundaries": boundaries[flat_index],
                            "weight_matrix": weights[flat_index],
                        },
                        tile_meta,
                        self.technology,
                        drift_state=drift_state,
                    )
                )
                flat_index += 1
            self.tiles.append(band)
        self.weight_update_energy = float(meta["weight_update_energy"])
        self.weight_update_time = float(meta["weight_update_time"])
        return self

    # -- planning ------------------------------------------------------------
    @property
    def tile_count(self) -> int:
        return self.row_tiles * self.column_tiles

    def plan(self) -> list[dict]:
        """The tile assignment map (for inspection and reporting)."""
        return [
            {
                "row_tile": row_tile,
                "col_tile": col_tile,
                "rows": rows,
                "columns": columns,
                "gain": float(self.gains[row_tile, col_tile]),
            }
            for row_tile, col_tile, rows, columns in iter_tile_blocks(
                self.out_features, self.in_features, self.tile_rows, self.tile_columns
            )
        ]

    def quantization_error_bound(self, gain: float | None = None) -> np.ndarray:
        """Per-output worst-case quantization envelope [dot units].

        Each column tile contributes one independently quantized partial
        sum whose dequantized estimate sits within one code bin of the
        analog value; a bin spans ``full_scale_dot / levels / gain`` dot
        units at that tile's gain.  The bound per output row is the sum
        over its row band's column tiles — the "single-tile quantization
        error envelope" scaled by the tiling fan-in.
        """
        full_scale_dot = self.tile_columns * self.max_weight
        bin_per_tile = np.empty((self.row_tiles, self.column_tiles))
        for row_tile in range(self.row_tiles):
            for col_tile in range(self.column_tiles):
                tile_gain = self.gains[row_tile, col_tile] if gain is None else gain
                bin_per_tile[row_tile, col_tile] = (
                    full_scale_dot / self.adc_levels / tile_gain
                )
        per_band = bin_per_tile.sum(axis=1)
        bound = np.empty(self.out_features)
        for row_tile in range(self.row_tiles):
            row_start = row_tile * self.tile_rows
            row_stop = min(row_start + self.tile_rows, self.out_features)
            bound[row_start:row_stop] = per_band[row_tile]
        return bound

    # -- evaluation ----------------------------------------------------------
    def _validated_batch(self, batch) -> np.ndarray:
        batch = np.asarray(batch, dtype=float)
        if batch.ndim != 2 or batch.shape[0] != self.in_features:
            raise MappingError(
                f"input batch must be ({self.in_features}, batch), got shape {batch.shape}"
            )
        return batch

    def matmul(self, batch, gain: float | None = None) -> np.ndarray:
        """Batched W @ X for X of shape (in_features, samples).

        Returns dequantized estimates (out_features, samples).  ``gain``
        overrides every tile's calibrated TIA gain when given.
        """
        batch = self._validated_batch(batch)
        samples = batch.shape[1]
        result = np.zeros((self.out_features, samples))
        for row_tile, col_tile, (row_start, row_stop), (col_start, col_stop) in (
            iter_tile_blocks(self.out_features, self.in_features,
                             self.tile_rows, self.tile_columns)
        ):
            chunk = np.zeros((self.tile_columns, samples))
            chunk[: col_stop - col_start] = batch[col_start:col_stop]
            tile_gain = self.gains[row_tile, col_tile] if gain is None else float(gain)
            partial = self.tiles[row_tile][col_tile].matmul(chunk, gain=tile_gain)
            result[row_start:row_stop] += partial.estimates[: row_stop - row_start]
        return result

    def matvec(self, x, gain: float | None = None) -> np.ndarray:
        """Tiled W @ x for a single input vector."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.in_features,):
            raise MappingError(
                f"input must have shape ({self.in_features},), got {x.shape}"
            )
        return self.matmul(x[:, np.newaxis], gain=gain)[:, 0]

    def ideal_matmul(self, batch) -> np.ndarray:
        """Infinite-precision reference: W @ X in dot units."""
        return self.weight_matrix @ self._validated_batch(batch)
