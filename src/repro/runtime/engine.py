"""The vectorized fast path: device loops compiled to dense numpy.

:class:`PhotonicTensorCore` evaluates one input vector at a time
through Python loops over row cores and per-row ADC conversions — a
faithful device walk, but three orders of magnitude too slow to serve
traffic.  Both halves of that walk are, at a fixed weight program,
static functions of the input:

* the settled optical path is *linear*: each row's photocurrent is
  ``element_responses() @ x`` (crosstalk folded into the coefficients),
  so a whole batch is one ``(rows, columns) @ (columns, batch)``
  matrix product;
* the settled eoADC is a *non-decreasing staircase*: its exact
  code-transition ladder (:meth:`EoAdc.code_boundaries`) turns
  conversion into ``np.searchsorted`` binning.

:class:`CompiledCore` snapshots both at weight-load time and replays
them vectorized, matching the device loop code-for-code.  Compilation
costs one ladder bisection per distinct ADC trim (cached on the ADC)
plus a cheap response-matrix rebuild per weight program, so schedulers
can recompile on every cache miss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.tensor_core import MatvecResult, PhotonicTensorCore
from ..errors import ConfigurationError
from ..health.drift import Perturbation, apply_read_out


@dataclass
class BatchResult:
    """Digital result of one batched matrix-matrix operation.

    All arrays have shape (rows, batch): column b holds the same
    codes/estimates/currents a :meth:`PhotonicTensorCore.matvec` call on
    input column b would produce.
    """

    codes: np.ndarray
    estimates: np.ndarray
    currents: np.ndarray

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=int)
        self.estimates = np.asarray(self.estimates, dtype=float)
        self.currents = np.asarray(self.currents, dtype=float)

    @property
    def batch_size(self) -> int:
        return self.codes.shape[1]

    def column(self, index: int) -> MatvecResult:
        """The single-vector result view of batch column ``index``."""
        return MatvecResult(
            codes=self.codes[:, index],
            estimates=self.estimates[:, index],
            currents=self.currents[:, index],
        )


def _row_ladders(core: PhotonicTensorCore, ladder_cache: list | None) -> np.ndarray:
    """Per-row ADC code ladders, sharing bisection work between ADCs
    with identical trim/spec (the common case: one seeded trim draw per
    technology).  ``ladder_cache`` is an optional cross-core memo of
    ``[technology, spec, trim_errors, ladder]`` rows that tiled grids
    pass so every tile of the same technology compiles one ladder."""
    ladders = []
    local: list = [] if ladder_cache is None else ladder_cache
    for adc in core.row_adcs:
        found = None
        for technology, spec, trim, ladder in local:
            if (
                technology is adc.technology
                and spec == adc.spec
                and np.array_equal(trim, adc.trim_errors)
            ):
                found = ladder
                break
        if found is None:
            found = adc.code_boundaries()
            local.append([adc.technology, adc.spec, adc.trim_errors, found])
        ladders.append(found)
    return np.stack(ladders)


class CompiledCore:
    """A weight program of a :class:`PhotonicTensorCore`, compiled to
    dense arrays for batched evaluation.

    The snapshot is detached from the device: reloading the source
    core's weights afterwards (as the :class:`~repro.runtime.scheduler.
    BatchScheduler` does on every cache miss) leaves this program valid.
    """

    def __init__(
        self,
        core: PhotonicTensorCore,
        ladder_cache: list | None = None,
    ) -> None:
        self.rows = core.rows
        self.columns = core.columns
        self.weight_bits = core.weight_bits
        self.max_weight = core.max_weight
        self.technology = core.technology
        self.weight_matrix = core.weight_matrix
        #: (rows, columns) photocurrent per unit input intensity.
        self.response = np.stack(
            [row_core.element_responses() for row_core in core.row_cores]
        )
        #: (rows, levels - 1) exact per-row code-transition voltages.
        self.boundaries = _row_ladders(core, ladder_cache)
        shared = all(
            np.array_equal(self.boundaries[row], self.boundaries[0])
            for row in range(1, self.rows)
        )
        self._shared_ladder = self.boundaries[0] if shared else None

        adc = core.row_adcs[0]
        self.adc_bits = adc.bits
        self.adc_levels = adc.levels
        self._adc_lsb = adc.lsb
        self._full_scale_voltage = adc.spec.full_scale_voltage
        self._tia_gain = core.tia_gain
        self._full_scale_current = core.full_scale_current
        self.sample_rate = adc.sample_rate

        # Drift-aware compilation: the engine keeps a *live* reference
        # to the core's DriftState (hardware truth evolves under it)
        # but snapshots the compensation trims — like the ladder, the
        # trims are part of the compiled program.  A recalibration
        # bumps the state's epoch; programs compiled under an older
        # epoch keep serving with stale trims until the caches
        # recompile them (repro.api.PhotonicSession.recalibrate).
        drift = core.drift_state
        if drift is not None and drift.active:
            self._drift = drift
            self._calibration = drift.compensation
            self.calibration_epoch = drift.epoch
        else:
            self._drift = None
            self._calibration = None
            self.calibration_epoch = 0

    # -- bookkeeping ---------------------------------------------------------
    @property
    def weight_key(self) -> bytes:
        """Canonical cache key of this weight program."""
        return weight_key(self.weight_matrix)

    # -- persistence ---------------------------------------------------------
    def state_dict(self) -> dict:
        """The program as plain ``{"arrays", "meta"}`` payloads — dense
        response matrix, exact ladder tables, and the compile-time
        drift trims — from which :meth:`from_state` rebuilds a
        bit-for-bit equal engine (:class:`repro.elastic.ProgramStore`
        persists exactly this)."""
        calibration = self._calibration
        return {
            "arrays": {
                "response": self.response,
                "boundaries": self.boundaries,
                "weight_matrix": np.ascontiguousarray(
                    np.asarray(self.weight_matrix, dtype=np.int64)
                ),
            },
            "meta": {
                "rows": int(self.rows),
                "columns": int(self.columns),
                "weight_bits": int(self.weight_bits),
                "max_weight": int(self.max_weight),
                "adc_bits": int(self.adc_bits),
                "adc_levels": int(self.adc_levels),
                "adc_lsb": float(self._adc_lsb),
                "full_scale_voltage": float(self._full_scale_voltage),
                "tia_gain": float(self._tia_gain),
                "full_scale_current": float(self._full_scale_current),
                "sample_rate": float(self.sample_rate),
                "calibration_epoch": int(self.calibration_epoch),
                "compensation": None
                if calibration is None
                else [
                    float(calibration.current_scale),
                    float(calibration.gain_scale),
                    float(calibration.voltage_offset),
                ],
            },
        }

    @classmethod
    def from_state(cls, arrays, meta, technology, drift_state=None) -> "CompiledCore":
        """Rebuild a compiled program from :meth:`state_dict` payloads
        without touching a device core.

        ``drift_state`` rebinds the restored program to the requesting
        core's *live* :class:`~repro.health.DriftState` (the persisted
        compensation snapshot stays the program's compile-time trim, so
        residual arithmetic matches a cold compile under the same
        epoch).  Validation of the payload happens in the store — this
        constructor trusts its inputs.
        """
        self = cls.__new__(cls)
        self.rows = int(meta["rows"])
        self.columns = int(meta["columns"])
        self.weight_bits = int(meta["weight_bits"])
        self.max_weight = int(meta["max_weight"])
        self.technology = technology
        self.weight_matrix = np.asarray(arrays["weight_matrix"], dtype=np.int64)
        self.response = np.asarray(arrays["response"], dtype=float)
        self.boundaries = np.asarray(arrays["boundaries"], dtype=float)
        shared = all(
            np.array_equal(self.boundaries[row], self.boundaries[0])
            for row in range(1, self.rows)
        )
        self._shared_ladder = self.boundaries[0] if shared else None
        self.adc_bits = int(meta["adc_bits"])
        self.adc_levels = int(meta["adc_levels"])
        self._adc_lsb = float(meta["adc_lsb"])
        self._full_scale_voltage = float(meta["full_scale_voltage"])
        self._tia_gain = float(meta["tia_gain"])
        self._full_scale_current = float(meta["full_scale_current"])
        self.sample_rate = float(meta["sample_rate"])
        compensation = meta.get("compensation")
        if drift_state is not None and drift_state.active:
            self._drift = drift_state
            self._calibration = (
                Perturbation()
                if compensation is None
                else Perturbation(*(float(value) for value in compensation))
            )
            self.calibration_epoch = int(meta["calibration_epoch"])
        else:
            self._drift = None
            self._calibration = None
            self.calibration_epoch = 0
        return self

    # -- evaluation ----------------------------------------------------------
    def _validated_batch(self, batch) -> np.ndarray:
        batch = np.asarray(batch, dtype=float)
        if batch.ndim != 2 or batch.shape[0] != self.columns:
            raise ConfigurationError(
                f"input batch must be ({self.columns}, batch), got shape {batch.shape}"
            )
        if batch.size and (batch.min() < 0.0 or batch.max() > 1.0):
            raise ConfigurationError(
                "analog inputs must lie in [0, 1], got range "
                f"[{batch.min():.6g}, {batch.max():.6g}]"
            )
        return batch

    def quantize_voltages(self, voltages: np.ndarray) -> np.ndarray:
        """Bin row voltages (rows, batch) into codes against the exact
        per-row ADC ladders."""
        if self._shared_ladder is not None:
            return np.searchsorted(self._shared_ladder, voltages, side="right")
        codes = np.empty(voltages.shape, dtype=int)
        for row in range(self.rows):
            codes[row] = np.searchsorted(self.boundaries[row], voltages[row], side="right")
        return codes

    def dequantize_codes(self, codes) -> np.ndarray:
        """Map p-bit codes back to dot-product units.

        Term-for-term the same arithmetic as
        :meth:`PhotonicTensorCore.dequantize_codes`, so estimates agree
        bitwise with the device loop for equal codes.
        """
        codes = np.asarray(codes, dtype=float)
        voltage = (codes + 0.5) * self._adc_lsb
        current = voltage / self._tia_gain
        unit = self._full_scale_current / (
            self.columns * self.max_weight / 2.0**self.weight_bits
        )
        return current / unit * 2.0**self.weight_bits

    def matmul(self, batch, gain: float = 1.0, residual=None) -> BatchResult:
        """Batched photonic W @ X for X of shape (columns, batch).

        One dense matrix product plus vectorized ADC binning; column b
        of the result carries the codes the device loop would emit for
        ``matvec(X[:, b], gain)``.

        ``residual`` overrides the drift the evaluation suffers: None
        reads the live :class:`~repro.health.DriftState` relative to
        this program's compile-time trims (the default serving
        behaviour; a no-op on drift-free cores), an explicit
        :class:`~repro.health.Perturbation` is applied as-is (the
        identity yields the pristine evaluation — how the health
        monitor freezes golden codes and attributes errors per stage).
        """
        if gain <= 0.0:
            raise ConfigurationError(f"TIA gain must be positive, got {gain}")
        batch = self._validated_batch(batch)
        if residual is None and self._drift is not None:
            residual = self._drift.truth().relative_to(self._calibration)
        currents = self.response @ batch
        currents, voltages = apply_read_out(
            residual, currents, gain * self._tia_gain, self._full_scale_voltage
        )
        codes = self.quantize_voltages(voltages)
        estimates = self.dequantize_codes(codes) / gain
        return BatchResult(codes=codes, estimates=estimates, currents=currents)

    def matvec(self, x, gain: float = 1.0, residual=None) -> MatvecResult:
        """Single-vector evaluation with the batched fast path."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.columns,):
            raise ConfigurationError(
                f"input must have shape ({self.columns},), got {x.shape}"
            )
        return self.matmul(x[:, np.newaxis], gain=gain, residual=residual).column(0)


def weight_key(matrix) -> bytes:
    """Canonical cache key for a weight matrix: shape plus the bytes of
    its canonical int64 form, so equal programs hash equal regardless of
    the caller's integer dtype."""
    matrix = np.ascontiguousarray(np.asarray(matrix, dtype=np.int64))
    shape = "x".join(str(dim) for dim in matrix.shape)
    return shape.encode() + b":" + matrix.tobytes()
