"""The serving facade and the multi-tenant traffic benchmark.

:class:`InferenceServer` is the synchronous front door of the runtime:
``submit`` takes any unsigned weight matrix and input vector, routes it
to the batching scheduler (weights that fit one physical tile, zero-
padded if smaller) or to an LRU-cached :class:`TiledMatmul` grid
(weights larger than a tile), ``submit_conv`` serves im2col CNN
convolutions (float kernel banks quantized into cached differential
:class:`ConvProgram` grids, every patch a batched matmul column),
``flush`` drains every queue as dense batched evaluations, and
``stats`` reports throughput, batch fill, cache behaviour and the
modelled energy/latency.

:func:`synthetic_trace` builds the repeatable multi-tenant workload the
``python -m repro serve-bench`` command replays: a handful of tenants
with mixed matrix shapes, Zipf-skewed request popularity, and
occasional weight churn so the program caches see both hits and fresh
compiles.  :func:`run_cnn_serve_bench` is the CNN counterpart
(``python -m repro serve-bench cnn``): a stream of digit glyphs
convolved against a shared kernel bank, exercising the conv program
cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import Technology, default_technology
from ..core.quantization import quantize_weights_differential
from ..errors import ConfigurationError
from ..ml.convolution import (
    encode_patch_batch,
    im2col_channels,
    normalize_image,
    normalize_kernel_bank,
    output_shape,
)
from ..ml.layers import compile_differential_engines
from .engine import weight_key
from .scheduler import BatchScheduler, SchedulerStats, Ticket, WeightProgramCache
from .tiling import TiledMatmul, auto_range_gain


class ServerTicket:
    """Handle for one server request; resolved by the next flush."""

    __slots__ = ("_ticket", "_out_features", "_estimates")

    def __init__(self, out_features: int, ticket: Ticket | None = None) -> None:
        self._ticket = ticket
        self._out_features = out_features
        self._estimates: np.ndarray | None = None

    def _resolve(self, estimates: np.ndarray) -> None:
        self._estimates = np.asarray(estimates, dtype=float)

    @property
    def done(self) -> bool:
        if self._ticket is not None:
            return self._ticket.done
        return self._estimates is not None

    @property
    def estimates(self) -> np.ndarray:
        """Dequantized W @ x estimates (length out_features)."""
        if self._ticket is not None:
            if self._ticket.result is None:
                raise ConfigurationError("request not flushed yet")
            return self._ticket.result.estimates[: self._out_features]
        if self._estimates is None:
            raise ConfigurationError("request not flushed yet")
        return self._estimates


class ConvTicket:
    """Handle for one conv request; resolved by the next flush."""

    __slots__ = ("shape", "_feature_maps")

    def __init__(self, num_kernels: int, rows: int, cols: int) -> None:
        self.shape = (num_kernels, rows, cols)
        self._feature_maps: np.ndarray | None = None

    def _resolve(self, feature_maps: np.ndarray) -> None:
        self._feature_maps = np.asarray(feature_maps, dtype=float).reshape(self.shape)

    @property
    def done(self) -> bool:
        return self._feature_maps is not None

    @property
    def feature_maps(self) -> np.ndarray:
        """Dequantized (num_kernels, out_rows, out_cols) feature maps."""
        if self._feature_maps is None:
            raise ConfigurationError("request not flushed yet")
        return self._feature_maps


@dataclass
class ConvProgram:
    """A cached differential conv weight program on tiled grids.

    The positive/negative engines hold the quantized kernel magnitudes
    (the negative grid is None for an all-non-negative bank, saving the
    second analog pass); the float dequantization scale stays with each
    request, so kernel banks that quantize to the same integers share
    one program.
    """

    positive: TiledMatmul
    negative: TiledMatmul | None

    @property
    def passes(self) -> int:
        """Sequential analog passes per patch column."""
        return 2 if self.negative is not None else 1

    @property
    def tile_count(self) -> int:
        return self.positive.tile_count + (
            self.negative.tile_count if self.negative is not None else 0
        )

    @property
    def weight_update_energy(self) -> float:
        return self.positive.weight_update_energy + (
            self.negative.weight_update_energy if self.negative is not None else 0.0
        )

    def matmul(self, batch: np.ndarray, gain: float) -> np.ndarray:
        """Differential W @ X in quantized dot units."""
        raw = self.positive.matmul(batch, gain=gain)
        if self.negative is not None:
            raw = raw - self.negative.matmul(batch, gain=gain)
        return raw


@dataclass
class ServerStats:
    """Combined serving statistics of both request paths."""

    scheduler: SchedulerStats
    tiled_requests: int
    tiled_builds: int
    tiled_hits: int
    tiled_batches: int
    #: Sequential ADC sample periods consumed on the tiled/conv paths
    #: — the time-slot count, so ``tiled_analog_time`` is exactly this
    #: many sample periods on both paths.  Tiles of one grid digitize
    #: in parallel and share a slot; a differential conv bank's two
    #: sequential array passes take two slots per patch column.
    tiled_samples: int
    tiled_analog_time: float
    tiled_analog_energy: float
    tiled_weight_energy_spent: float
    tiled_weight_energy_saved: float
    #: Conv-route traffic: requests are whole images; their per-patch
    #: ADC samples and energy are folded into the tiled_* accumulators
    #: (conv programs live in the same cache and grids).
    conv_requests: int = 0
    conv_patches: int = 0

    @property
    def requests(self) -> int:
        return self.scheduler.requests + self.tiled_requests + self.conv_requests

    @property
    def batches(self) -> int:
        return self.scheduler.batches + self.tiled_batches

    @property
    def cache_hit_rate(self) -> float:
        hits = self.scheduler.cache_hits + self.tiled_hits
        total = hits + self.scheduler.cache_misses + self.tiled_builds
        return hits / total if total else 0.0

    @property
    def analog_time(self) -> float:
        """Modelled ADC sampling time [s] across both request paths."""
        return self.scheduler.analog_time + self.tiled_analog_time

    @property
    def analog_energy(self) -> float:
        """Modelled analog compute energy [J] across both request paths."""
        return self.scheduler.analog_energy + self.tiled_analog_energy

    @property
    def weight_energy_spent(self) -> float:
        return self.scheduler.weight_energy_spent + self.tiled_weight_energy_spent

    @property
    def weight_energy_saved(self) -> float:
        return self.scheduler.weight_energy_saved + self.tiled_weight_energy_saved

    @property
    def total_latency(self) -> float:
        return self.scheduler.weight_time_spent + self.analog_time

    @property
    def total_energy(self) -> float:
        return self.weight_energy_spent + self.analog_energy


class InferenceServer:
    """Synchronous batched inference over one tile size.

    ``rows x columns`` is the physical tile; any (out, in) unsigned
    weight matrix is served — smaller shapes are zero-padded onto the
    tile and share the scheduler's batching/caching, larger shapes
    compile onto a cached :class:`TiledMatmul` grid.
    """

    def __init__(
        self,
        rows: int | None = None,
        columns: int | None = None,
        weight_bits: int | None = None,
        adc_bits: int | None = None,
        technology: Technology | None = None,
        cache_capacity: int = 8,
        tiled_cache_capacity: int = 4,
        max_batch: int = 256,
    ) -> None:
        self.technology = technology if technology is not None else default_technology()
        self.scheduler = BatchScheduler(
            rows=rows,
            columns=columns,
            weight_bits=weight_bits,
            adc_bits=adc_bits,
            technology=self.technology,
            cache_capacity=cache_capacity,
            max_batch=max_batch,
        )
        self.tiled_cache = WeightProgramCache(tiled_cache_capacity)
        self._tiled_pending: dict[tuple[bytes, float | str], dict] = {}
        self._conv_pending: dict[tuple[bytes, float], dict] = {}
        self._tiled_requests = 0
        self._tiled_batches = 0
        self._tiled_samples = 0
        self._tiled_analog_time = 0.0
        self._tiled_analog_energy = 0.0
        self._tiled_energy_spent = 0.0
        self._tiled_energy_saved = 0.0
        self._conv_requests = 0
        self._conv_patches = 0

    @property
    def rows(self) -> int:
        return self.scheduler.rows

    @property
    def columns(self) -> int:
        return self.scheduler.columns

    @staticmethod
    def _validated_gain(gain) -> float | str | None:
        """Normalize the shared gain semantics of both request paths:
        None = native TIA gain 1.0, "auto" = calibrate the range from
        the weights, a positive float = explicit setting."""
        if gain is None or gain == "auto":
            return gain
        if not isinstance(gain, (int, float)):
            raise ConfigurationError(f"gain must be a number, 'auto' or None, got {gain!r}")
        if gain <= 0.0:
            raise ConfigurationError(f"TIA gain must be positive, got {gain}")
        return float(gain)

    def _auto_gain(self, weights: np.ndarray) -> float:
        """The shared range-calibration rule applied to one padded tile."""
        return auto_range_gain(weights, self.columns * self.scheduler.core.max_weight)

    # -- request path --------------------------------------------------------
    def submit(self, weights, x, gain: float | str | None = None) -> ServerTicket:
        """Queue one W @ x request for the next :meth:`flush`.

        ``gain`` sets the row-TIA range on every tile the request
        touches: None runs at the native gain 1.0, ``"auto"``
        calibrates the range from the weights (the same rule on both
        the single-tile and the tiled path), and a positive float is
        applied as-is.
        """
        weights = np.asarray(weights, dtype=int)
        if weights.ndim != 2:
            raise ConfigurationError(
                f"weight matrix must be 2-D, got shape {weights.shape}"
            )
        x = np.asarray(x, dtype=float)
        out_features, in_features = weights.shape
        if x.shape != (in_features,):
            raise ConfigurationError(
                f"input must have shape ({in_features},), got {x.shape}"
            )
        gain = self._validated_gain(gain)
        if out_features <= self.rows and in_features <= self.columns:
            padded_w = np.zeros((self.rows, self.columns), dtype=int)
            padded_w[:out_features, :in_features] = weights
            padded_x = np.zeros(self.columns)
            padded_x[:in_features] = x
            if gain is None:
                gain = 1.0
            elif gain == "auto":
                gain = self._auto_gain(padded_w)
            ticket = self.scheduler.submit(padded_w, padded_x, gain=gain)
            return ServerTicket(out_features, ticket=ticket)
        return self._submit_tiled(weights, x, gain)

    def _submit_tiled(self, weights, x, gain: float | str | None) -> ServerTicket:
        max_weight = self.scheduler.core.max_weight
        if np.any(weights < 0) or np.any(weights > max_weight):
            raise ConfigurationError(
                f"weights must lie in [0, {max_weight}], got range "
                f"[{weights.min()}, {weights.max()}]"
            )
        if x.size and (x.min() < 0.0 or x.max() > 1.0):
            raise ConfigurationError(
                f"analog inputs must lie in [0, 1], got range "
                f"[{x.min():.6g}, {x.max():.6g}]"
            )
        # Requests batch per (program, gain): mixed gains against the
        # same weights must not share an evaluation.  None means native
        # gain 1.0 (matching the single-tile path); "auto" defers to
        # the grid's per-tile calibrated gains.
        gain = 1.0 if gain is None else gain
        key = (weight_key(weights), gain)
        group = self._tiled_pending.get(key)
        if group is None:
            group = {"weights": weights.copy(), "inputs": [], "tickets": [], "gain": gain}
            self._tiled_pending[key] = group
        ticket = ServerTicket(weights.shape[0])
        group["inputs"].append(x.copy())
        group["tickets"].append(ticket)
        self._tiled_requests += 1
        return ticket

    # -- conv route ----------------------------------------------------------
    def submit_conv(
        self, kernels, image, stride: int = 1, gain: float | None = None
    ) -> ConvTicket:
        """Queue one im2col convolution for the next :meth:`flush`.

        ``kernels`` is a float bank of shape (n, k, k) — or
        (n, channels, k, k) — quantized here into a differential conv
        program keyed on the quantized integers, so repeated banks hit
        the shared program cache; ``image`` is a non-negative (H, W) or
        (channels, H, W) intensity map.  ``gain`` is the row-TIA range
        setting applied to every tile (None = native 1.0); the per-tile
        ``"auto"`` calibration is not offered here because differential
        halves must digitize at one common gain to subtract exactly.
        """
        kernels = normalize_kernel_bank(kernels)
        gain = self._validated_gain(gain)
        if gain == "auto":
            raise ConfigurationError(
                "the conv route takes a numeric gain (or None for native 1.0)"
            )
        gain = 1.0 if gain is None else float(gain)
        kernel_size = kernels.shape[2]
        image = normalize_image(image, kernels.shape[1])

        flattened = kernels.reshape(kernels.shape[0], -1)
        q_positive, q_negative, weight_scale = quantize_weights_differential(
            flattened, self.scheduler.core.weight_bits
        )
        patches = im2col_channels(image, kernel_size, stride)
        out_rows, out_cols = output_shape(image.shape[1:], kernel_size, stride)
        encoded, scales = encode_patch_batch(patches)

        # Conv programs share the tiled LRU; the prefix keeps a kernel
        # bank from colliding with a plain weight matrix of equal bytes.
        key = b"conv:" + weight_key(np.concatenate([q_positive, q_negative]))
        group = self._conv_pending.get((key, gain))
        if group is None:
            group = {
                "q_positive": q_positive,
                "q_negative": q_negative,
                "segments": [],
                "tickets": [],
            }
            self._conv_pending[(key, gain)] = group
        ticket = ConvTicket(kernels.shape[0], out_rows, out_cols)
        group["segments"].append((encoded, scales, weight_scale))
        group["tickets"].append(ticket)
        self._conv_requests += 1
        return ticket

    def _conv_program(self, key: bytes, group: dict) -> ConvProgram:
        program = self.tiled_cache.get(key)
        if program is None:
            positive, negative = compile_differential_engines(
                group["q_positive"], group["q_negative"], self.scheduler.core
            )
            program = ConvProgram(positive=positive, negative=negative)
            self._tiled_energy_spent += program.weight_update_energy
            self.tiled_cache.put(key, program)
        else:
            self._tiled_energy_saved += program.weight_update_energy
        return program

    def flush(self) -> int:
        """Evaluate every pending request; returns resolved count."""
        resolved = self.scheduler.flush()
        try:
            for (key, _), group in self._tiled_pending.items():
                engine = self.tiled_cache.get(key)
                if engine is None:
                    engine = TiledMatmul(
                        group["weights"],
                        tile_rows=self.rows,
                        tile_columns=self.columns,
                        weight_bits=self.scheduler.core.weight_bits,
                        adc_bits=self.scheduler.core.row_adcs[0].bits,
                        technology=self.technology,
                        ladder_cache=self.scheduler.core.runtime_ladder_cache,
                    )
                    self._tiled_energy_spent += engine.weight_update_energy
                    self.tiled_cache.put(key, engine)
                else:
                    self._tiled_energy_saved += engine.weight_update_energy
                batch = np.stack(group["inputs"], axis=1)
                gain = None if group["gain"] == "auto" else group["gain"]
                estimates = engine.matmul(batch, gain=gain)
                for index, ticket in enumerate(group["tickets"]):
                    ticket._resolve(estimates[:, index])
                resolved += len(group["tickets"])
                # Tiles digitize concurrently: one ADC sample period per
                # input column, at tile_count times one tile's power.
                samples = batch.shape[1]
                period = 1.0 / self.scheduler.performance.sample_rate
                power = self.scheduler.performance.total_power * engine.tile_count
                self._tiled_batches += 1
                self._tiled_samples += samples
                self._tiled_analog_time += samples * period
                self._tiled_analog_energy += samples * period * power
            for (key, gain), group in self._conv_pending.items():
                program = self._conv_program(key, group)
                batch = np.concatenate(
                    [encoded for encoded, _, _ in group["segments"]], axis=1
                )
                raw = program.matmul(batch, gain=gain)
                offset = 0
                for (encoded, scales, weight_scale), ticket in zip(
                    group["segments"], group["tickets"]
                ):
                    count = encoded.shape[1]
                    maps = raw[:, offset : offset + count] * weight_scale * scales
                    ticket._resolve(maps)
                    offset += count
                resolved += len(group["tickets"])
                # Each patch column costs one ADC sample period per
                # analog pass (two passes for differential banks); the
                # active grid burns tile_count times one tile's power.
                patches = batch.shape[1]
                period = 1.0 / self.scheduler.performance.sample_rate
                power = self.scheduler.performance.total_power
                self._conv_patches += patches
                self._tiled_batches += 1
                self._tiled_samples += patches * program.passes
                self._tiled_analog_time += patches * period * program.passes
                self._tiled_analog_energy += (
                    patches * period * power * program.tile_count
                )
        finally:
            # Never leave a stale group behind: a failed evaluation must
            # not wedge every subsequent flush.
            self._tiled_pending.clear()
            self._conv_pending.clear()
        return resolved

    def stats(self) -> ServerStats:
        """Combined scheduler + tiled-path accounting."""
        return ServerStats(
            scheduler=self.scheduler.stats(),
            tiled_requests=self._tiled_requests,
            tiled_builds=self.tiled_cache.misses,
            tiled_hits=self.tiled_cache.hits,
            tiled_batches=self._tiled_batches,
            tiled_samples=self._tiled_samples,
            tiled_analog_time=self._tiled_analog_time,
            tiled_analog_energy=self._tiled_analog_energy,
            tiled_weight_energy_spent=self._tiled_energy_spent,
            tiled_weight_energy_saved=self._tiled_energy_saved,
            conv_requests=self._conv_requests,
            conv_patches=self._conv_patches,
        )


def synthetic_trace(
    tenants: int = 6,
    requests: int = 240,
    rows: int = 8,
    columns: int = 8,
    max_weight: int = 7,
    churn: float = 0.02,
    seed: int = 2025,
):
    """A repeatable multi-tenant request stream.

    Yields ``(tenant, weights, x)`` tuples.  Tenant shapes alternate
    between tile-native, smaller-than-tile and tiled (larger than one
    tile in both dimensions); popularity is Zipf-skewed so a few
    tenants dominate (good cache locality) and ``churn`` is the
    per-request probability the chosen tenant retrains its weights
    (forcing a fresh program compile).
    """
    if tenants < 1 or requests < 0:
        raise ConfigurationError("need at least one tenant and requests >= 0")
    rng = np.random.default_rng(seed)
    shapes = [
        (rows, columns),
        (max(rows // 2, 1), max(columns - 2, 1)),
        (rows + rows // 2, columns + columns // 2),
        (2 * rows + 1, columns),
    ]
    weights = [
        rng.integers(0, max_weight + 1, shapes[tenant % len(shapes)])
        for tenant in range(tenants)
    ]
    popularity = 1.0 / np.arange(1, tenants + 1)
    popularity /= popularity.sum()
    for _ in range(requests):
        tenant = int(rng.choice(tenants, p=popularity))
        if rng.uniform() < churn:
            weights[tenant] = rng.integers(0, max_weight + 1, weights[tenant].shape)
        x = rng.uniform(0.0, 1.0, weights[tenant].shape[1])
        yield tenant, weights[tenant], x


def run_serve_bench(
    requests: int = 240,
    rows: int = 8,
    columns: int = 8,
    flush_every: int = 32,
    cache_capacity: int = 4,
    seed: int = 2025,
    print_fn=print,
) -> dict:
    """Replay a synthetic trace through an :class:`InferenceServer`.

    Prints throughput (inferences/s of the compiled serving path),
    batch-fill and cache statistics; returns them as a dict so tests
    and benches can assert on the numbers.
    """
    if flush_every < 1:
        raise ConfigurationError(f"flush interval must be >= 1, got {flush_every}")
    server = InferenceServer(
        rows=rows,
        columns=columns,
        cache_capacity=cache_capacity,
        max_batch=flush_every,
    )
    tickets = []
    started = time.perf_counter()
    submitted = 0
    for _, weights, x in synthetic_trace(
        requests=requests, rows=rows, columns=columns, seed=seed
    ):
        tickets.append(server.submit(weights, x))
        submitted += 1
        if submitted % flush_every == 0:
            server.flush()
    server.flush()
    elapsed = time.perf_counter() - started

    if not all(ticket.done for ticket in tickets):
        raise ConfigurationError("serve bench left unresolved tickets")
    stats = server.stats()
    throughput = requests / elapsed if elapsed > 0 else float("inf")
    summary = {
        "requests": stats.requests,
        "elapsed_s": elapsed,
        "throughput_per_s": throughput,
        "batch_fill": stats.scheduler.batch_fill,
        "batches": stats.batches,
        "cache_hit_rate": stats.cache_hit_rate,
        "cache_hits": stats.scheduler.cache_hits + stats.tiled_hits,
        "cache_misses": stats.scheduler.cache_misses + stats.tiled_builds,
        "weight_energy_spent_pj": stats.weight_energy_spent * 1e12,
        "weight_energy_saved_pj": stats.weight_energy_saved * 1e12,
        "analog_latency_us": stats.total_latency * 1e6,
        "analog_energy_nj": stats.total_energy * 1e9,
    }
    lines = [
        f"tile              : {rows} x {columns} "
        f"(cache {cache_capacity} programs, flush every {flush_every})",
        f"requests          : {summary['requests']} "
        f"({stats.scheduler.requests} single-tile, {stats.tiled_requests} tiled)",
        f"wall-clock        : {elapsed * 1e3:.1f} ms "
        f"({throughput:,.0f} inferences/s)",
        f"batches           : {summary['batches']} "
        f"(single-tile batch fill {summary['batch_fill']:.0%})",
        f"program cache     : {summary['cache_hits']} hits / "
        f"{summary['cache_misses']} misses "
        f"({summary['cache_hit_rate']:.0%} hit rate)",
        f"weight energy     : {summary['weight_energy_spent_pj']:.1f} pJ spent, "
        f"{summary['weight_energy_saved_pj']:.1f} pJ saved by caching",
        f"analog latency    : {summary['analog_latency_us']:.3f} us modelled "
        f"({summary['analog_energy_nj']:.2f} nJ, both paths)",
    ]
    print_fn("\n".join(lines))
    return summary


def run_cnn_serve_bench(
    images: int = 48,
    rows: int = 8,
    columns: int = 9,
    kernels: int = 4,
    kernel_size: int = 3,
    flush_every: int = 16,
    seed: int = 2025,
    print_fn=print,
) -> dict:
    """Replay a CNN feature-extraction stream through the conv route.

    A stream of 8x8 procedural digit glyphs is convolved against one
    shared signed kernel bank via :meth:`InferenceServer.submit_conv`
    (im2col patches batched into compiled differential matmuls); the
    repeated bank exercises the conv program cache — one build, hits
    thereafter.  Prints image/patch throughput and cache/energy
    statistics; returns them as a dict for tests and benches.
    """
    from ..ml.datasets import procedural_digits

    if images < 1:
        raise ConfigurationError(f"need at least one image, got {images}")
    if flush_every < 1:
        raise ConfigurationError(f"flush interval must be >= 1, got {flush_every}")
    rng = np.random.default_rng(seed)
    bank = rng.normal(0.0, 1.0, (kernels, kernel_size, kernel_size))
    data, _ = procedural_digits(
        samples_per_class=-(-images // 10), noise=0.1, seed=seed, pooled=False
    )
    glyphs = data[:images].reshape(-1, 8, 8)

    server = InferenceServer(rows=rows, columns=columns)
    tickets = []
    started = time.perf_counter()
    for index, glyph in enumerate(glyphs):
        tickets.append(server.submit_conv(bank, glyph))
        if (index + 1) % flush_every == 0:
            server.flush()
    server.flush()
    elapsed = time.perf_counter() - started

    if not all(ticket.done for ticket in tickets):
        raise ConfigurationError("cnn serve bench left unresolved tickets")
    stats = server.stats()
    out_side = glyphs.shape[1] - kernel_size + 1
    summary = {
        "images": stats.conv_requests,
        "patches": stats.conv_patches,
        "kernels": kernels,
        "feature_map": [kernels, out_side, out_side],
        "elapsed_s": elapsed,
        "images_per_s": images / elapsed if elapsed > 0 else float("inf"),
        "patches_per_s": stats.conv_patches / elapsed if elapsed > 0 else float("inf"),
        "cache_hits": stats.tiled_hits,
        "cache_misses": stats.tiled_builds,
        "cache_hit_rate": stats.cache_hit_rate,
        "weight_energy_spent_pj": stats.weight_energy_spent * 1e12,
        "weight_energy_saved_pj": stats.weight_energy_saved * 1e12,
        "analog_latency_us": stats.analog_time * 1e6,
        "analog_energy_nj": stats.analog_energy * 1e9,
    }
    lines = [
        f"conv program      : {kernels} kernels {kernel_size}x{kernel_size} "
        f"on {rows} x {columns} tiles (flush every {flush_every})",
        f"images            : {summary['images']} "
        f"({summary['patches']} im2col patches)",
        f"wall-clock        : {elapsed * 1e3:.1f} ms "
        f"({summary['images_per_s']:,.0f} images/s, "
        f"{summary['patches_per_s']:,.0f} patches/s)",
        f"program cache     : {summary['cache_hits']} hits / "
        f"{summary['cache_misses']} misses "
        f"({summary['cache_hit_rate']:.0%} hit rate)",
        f"weight energy     : {summary['weight_energy_spent_pj']:.1f} pJ spent, "
        f"{summary['weight_energy_saved_pj']:.1f} pJ saved by caching",
        f"analog latency    : {summary['analog_latency_us']:.3f} us modelled "
        f"({summary['analog_energy_nj']:.2f} nJ)",
    ]
    print_fn("\n".join(lines))
    return summary
