"""Legacy serving shims and the multi-tenant traffic benchmarks.

The serving engine room moved to :class:`repro.api.PhotonicSession` —
the single front door owning the core, the scheduler, the shared
program cache and the flush policy, returning
:class:`~repro.api.futures.Future` handles.  This module keeps the
seed-era surface alive as thin deprecation shims:

* :class:`InferenceServer` — constructs a session with an explicit
  flush policy and forwards ``submit`` / ``submit_conv`` / ``flush`` /
  ``stats`` to it; tickets wrap the session's futures.
* :class:`ServerTicket` / :class:`ConvTicket` — future wrappers with
  the historical ``estimates`` / ``feature_maps`` accessors.
* ``ConvProgram`` — alias of
  :class:`~repro.runtime.tiling.DifferentialProgram`, which now lives
  with the tiling engines.

:func:`synthetic_trace` builds the repeatable multi-tenant workload the
``python -m repro serve-bench`` command replays — both
:func:`run_serve_bench` and :func:`run_cnn_serve_bench` now drive a
:class:`~repro.api.PhotonicSession` directly, with a ``max_batch``
flush policy standing in for the old hand-placed ``flush()`` calls.
:func:`run_cluster_serve_bench` replays the same trace through
:class:`~repro.api.PhotonicCluster` fleets of 1/2/4 cores under every
routing policy and emits ``BENCH_cluster.json``.
:func:`run_drift_serve_bench` replays it through sessions degrading
under :func:`drift_suite`, sweeping drift severity x probe cadence x
recalibration threshold, and emits ``BENCH_drift.json`` (recovery
curves included).
:func:`run_traffic_serve_bench` drives open-loop :mod:`repro.traffic`
arrival streams on the modelled clock — a >=1M-request sustained run,
SLO capacity curves per (core count, routing policy) and a max-batch
vs deadline-aware head-to-head — and emits ``BENCH_traffic.json``.
:func:`run_elastic_serve_bench` measures elastic fleets
(:mod:`repro.elastic`): cold vs warm scale-up through a persisted
:class:`~repro.elastic.ProgramStore` (bit-for-bit check included) and
diurnal/bursty tapes against static vs autoscaled fleets — and emits
``BENCH_elastic.json``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..config import Technology
from ..errors import ConfigurationError
from ..telemetry.profiling import wall_clock
from .scheduler import SchedulerStats
from .tiling import DifferentialProgram

# repro.api.session imports this package's scheduler/tiling modules, so
# the session and policy are imported lazily inside the shims/benches
# to keep the package import order cycle-free.

#: Historical name of the cached differential conv program.
ConvProgram = DifferentialProgram


#: Shim names that already announced their deprecation this process.
#: Each legacy surface warns exactly once — traffic through a shim must
#: not drown the log in one warning per request.
_WARNED: set[str] = set()


def _deprecated(old: str, new: str) -> None:
    if old in _WARNED:
        return
    _WARNED.add(old)
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class ServerTicket:
    """Deprecated handle for one dense request; wraps a session Future."""

    __slots__ = ("_future",)

    def __init__(self, future) -> None:
        _deprecated("ServerTicket", "repro.api.Future")
        self._future = future

    @property
    def future(self):
        """The underlying :class:`repro.api.Future`."""
        return self._future

    @property
    def done(self) -> bool:
        return self._future.done

    @property
    def estimates(self) -> np.ndarray:
        """Dequantized W @ x estimates (length out_features).  Raises
        :class:`~repro.errors.PendingFlushError` before the flush."""
        return self._future.value


class ConvTicket:
    """Deprecated handle for one conv request; wraps a session Future."""

    __slots__ = ("_future",)

    def __init__(self, future) -> None:
        _deprecated("ConvTicket", "repro.api.Future")
        self._future = future

    @property
    def future(self):
        """The underlying :class:`repro.api.Future`."""
        return self._future

    @property
    def shape(self) -> tuple:
        return self._future.shape

    @property
    def done(self) -> bool:
        return self._future.done

    @property
    def feature_maps(self) -> np.ndarray:
        """Dequantized (num_kernels, out_rows, out_cols) feature maps.
        Raises :class:`~repro.errors.PendingFlushError` before the
        flush."""
        return self._future.value


@dataclass
class ServerStats:
    """Combined serving statistics of both request paths."""

    scheduler: SchedulerStats
    tiled_requests: int
    tiled_builds: int
    tiled_hits: int
    tiled_batches: int
    #: Sequential ADC sample periods consumed on the tiled/conv paths
    #: — the time-slot count, so ``tiled_analog_time`` is exactly this
    #: many sample periods on both paths.  Tiles of one grid digitize
    #: in parallel and share a slot; a differential conv bank's two
    #: sequential array passes take two slots per patch column.
    tiled_samples: int
    tiled_analog_time: float
    tiled_analog_energy: float
    tiled_weight_energy_spent: float
    tiled_weight_energy_saved: float
    #: Conv-route traffic: requests are whole images; their per-patch
    #: ADC samples and energy are folded into the tiled_* accumulators
    #: (conv programs live in the same cache and grids).
    conv_requests: int = 0
    conv_patches: int = 0

    @property
    def requests(self) -> int:
        return self.scheduler.requests + self.tiled_requests + self.conv_requests

    @property
    def batches(self) -> int:
        return self.scheduler.batches + self.tiled_batches

    @property
    def cache_hit_rate(self) -> float:
        hits = self.scheduler.cache_hits + self.tiled_hits
        total = hits + self.scheduler.cache_misses + self.tiled_builds
        return hits / total if total else 0.0

    @property
    def analog_time(self) -> float:
        """Modelled ADC sampling time [s] across both request paths."""
        return self.scheduler.analog_time + self.tiled_analog_time

    @property
    def analog_energy(self) -> float:
        """Modelled analog compute energy [J] across both request paths."""
        return self.scheduler.analog_energy + self.tiled_analog_energy

    @property
    def weight_energy_spent(self) -> float:
        return self.scheduler.weight_energy_spent + self.tiled_weight_energy_spent

    @property
    def weight_energy_saved(self) -> float:
        return self.scheduler.weight_energy_saved + self.tiled_weight_energy_saved

    @property
    def total_latency(self) -> float:
        return self.scheduler.weight_time_spent + self.analog_time

    @property
    def total_energy(self) -> float:
        return self.weight_energy_spent + self.analog_energy


class InferenceServer:
    """Deprecated synchronous facade; thin shim over
    :class:`repro.api.PhotonicSession`.

    The historical surface is preserved — ``submit`` / ``submit_conv``
    return tickets resolved by a hand-called :meth:`flush` — but every
    request now flows through a session with an explicit flush policy.
    New code should construct the session directly and use futures.
    """

    def __init__(
        self,
        rows: int | None = None,
        columns: int | None = None,
        weight_bits: int | None = None,
        adc_bits: int | None = None,
        technology: Technology | None = None,
        cache_capacity: int = 8,
        tiled_cache_capacity: int = 4,
        max_batch: int = 256,
    ) -> None:
        from ..api.policy import FlushPolicy
        from ..api.session import PhotonicSession

        _deprecated("InferenceServer", "repro.api.PhotonicSession")
        self.session = PhotonicSession(
            technology=technology,
            rows=rows,
            columns=columns,
            weight_bits=weight_bits,
            adc_bits=adc_bits,
            cache_capacity=cache_capacity,
            tiled_cache_capacity=tiled_cache_capacity,
            max_batch=max_batch,
            flush_policy=FlushPolicy.explicit(),
        )

    @property
    def technology(self) -> Technology:
        return self.session.technology

    @property
    def scheduler(self):
        return self.session.scheduler

    @property
    def tiled_cache(self):
        return self.session.tiled_cache

    @property
    def rows(self) -> int:
        return self.session.rows

    @property
    def columns(self) -> int:
        return self.session.columns

    def submit(self, weights, x, gain: float | str | None = None) -> ServerTicket:
        """Queue one W @ x request for the next :meth:`flush`."""
        return ServerTicket(self.session.submit(weights, x, gain=gain))

    def submit_conv(
        self, kernels, image, stride: int = 1, gain: float | None = None
    ) -> ConvTicket:
        """Queue one im2col convolution for the next :meth:`flush`."""
        return ConvTicket(
            self.session.submit_conv(kernels, image, stride=stride, gain=gain)
        )

    def flush(self) -> int:
        """Evaluate every pending request; returns resolved count."""
        return self.session.flush()

    def stats(self) -> ServerStats:
        """Combined scheduler + tiled-path accounting."""
        return self.session.server_stats()


def synthetic_trace(
    tenants: int = 6,
    requests: int = 240,
    rows: int = 8,
    columns: int = 8,
    max_weight: int = 7,
    churn: float = 0.02,
    seed: int = 2025,
):
    """A repeatable multi-tenant request stream.

    Yields ``(tenant, weights, x)`` tuples.  Tenant shapes alternate
    between tile-native, smaller-than-tile and tiled (larger than one
    tile in both dimensions); popularity is Zipf-skewed so a few
    tenants dominate (good cache locality) and ``churn`` is the
    per-request probability the chosen tenant retrains its weights
    (forcing a fresh program compile).
    """
    if tenants < 1 or requests < 0:
        raise ConfigurationError("need at least one tenant and requests >= 0")
    rng = np.random.default_rng(seed)
    shapes = [
        (rows, columns),
        (max(rows // 2, 1), max(columns - 2, 1)),
        (rows + rows // 2, columns + columns // 2),
        (2 * rows + 1, columns),
    ]
    weights = [
        rng.integers(0, max_weight + 1, shapes[tenant % len(shapes)])
        for tenant in range(tenants)
    ]
    popularity = 1.0 / np.arange(1, tenants + 1)
    popularity /= popularity.sum()
    for _ in range(requests):
        tenant = int(rng.choice(tenants, p=popularity))
        if rng.uniform() < churn:
            weights[tenant] = rng.integers(0, max_weight + 1, weights[tenant].shape)
        x = rng.uniform(0.0, 1.0, weights[tenant].shape[1])
        yield tenant, weights[tenant], x


def run_serve_bench(
    requests: int = 240,
    rows: int = 8,
    columns: int = 8,
    flush_every: int = 32,
    cache_capacity: int = 4,
    seed: int = 2025,
    trace=None,
    print_fn=print,
) -> dict:
    """Replay a synthetic trace through a :class:`PhotonicSession`.

    The session's ``max_batch`` flush policy drains the queues every
    ``flush_every`` requests — no hand-called ``flush()`` in the
    submit loop.  Prints throughput (inferences/s of the compiled
    serving path), batch-fill and cache statistics; returns them as a
    dict so tests and benches can assert on the numbers.  ``trace``
    (a :class:`~repro.telemetry.TraceRecorder`) additionally records
    the modelled-clock span timeline and adds the end-to-end latency
    quantiles to the summary.
    """
    from ..api.policy import FlushPolicy
    from ..api.session import PhotonicSession

    if flush_every < 1:
        raise ConfigurationError(f"flush interval must be >= 1, got {flush_every}")
    session = PhotonicSession(
        grid=(rows, columns),
        cache_capacity=cache_capacity,
        max_batch=flush_every,
        flush_policy=FlushPolicy.max_batch(flush_every),
        trace=trace,
        label="serve-bench",
    )
    futures = []
    started = wall_clock()
    for _, weights, x in synthetic_trace(
        requests=requests, rows=rows, columns=columns, seed=seed
    ):
        futures.append(session.submit(weights, x))
    session.flush()
    elapsed = wall_clock() - started

    if not all(future.done for future in futures):
        raise ConfigurationError("serve bench left unresolved futures")
    stats = session.server_stats()
    throughput = requests / elapsed if elapsed > 0 else float("inf")
    summary = {
        "requests": stats.requests,
        "elapsed_s": elapsed,
        "throughput_per_s": throughput,
        "batch_fill": stats.scheduler.batch_fill,
        "batches": stats.batches,
        "flushes": session.flushes,
        "cache_hit_rate": stats.cache_hit_rate,
        "cache_hits": stats.scheduler.cache_hits + stats.tiled_hits,
        "cache_misses": stats.scheduler.cache_misses + stats.tiled_builds,
        "weight_energy_spent_pj": stats.weight_energy_spent * 1e12,
        "weight_energy_saved_pj": stats.weight_energy_saved * 1e12,
        "analog_latency_us": stats.total_latency * 1e6,
        "analog_energy_nj": stats.total_energy * 1e9,
    }
    if trace is not None:
        summary["latency_quantiles"] = session.report().latency_quantiles
    lines = [
        f"tile              : {rows} x {columns} "
        f"(cache {cache_capacity} programs, flush policy "
        f"{session.flush_policy.describe()})",
        f"requests          : {summary['requests']} "
        f"({stats.scheduler.requests} single-tile, {stats.tiled_requests} tiled)",
        f"wall-clock        : {elapsed * 1e3:.1f} ms "
        f"({throughput:,.0f} inferences/s)",
        f"batches           : {summary['batches']} "
        f"(single-tile batch fill {summary['batch_fill']:.0%})",
        f"program cache     : {summary['cache_hits']} hits / "
        f"{summary['cache_misses']} misses "
        f"({summary['cache_hit_rate']:.0%} hit rate)",
        f"weight energy     : {summary['weight_energy_spent_pj']:.1f} pJ spent, "
        f"{summary['weight_energy_saved_pj']:.1f} pJ saved by caching",
        f"analog latency    : {summary['analog_latency_us']:.3f} us modelled "
        f"({summary['analog_energy_nj']:.2f} nJ, both paths)",
    ]
    print_fn("\n".join(lines))
    return summary


#: Routing policies the cluster bench sweeps, in report order.
CLUSTER_BENCH_POLICIES = ("round_robin", "least_loaded", "cache_affinity")


def run_cluster_serve_bench(
    requests: int = 240,
    cores_sweep: tuple[int, ...] = (1, 2, 4),
    rows: int = 8,
    columns: int = 8,
    flush_every: int = 32,
    cache_capacity: int = 4,
    seed: int = 2025,
    trace=None,
    json_path=None,
    print_fn=print,
) -> dict:
    """Replay the multi-tenant trace through clusters of 1/2/4 cores.

    Every (core count, routing policy) pair replays the *same*
    Zipf-skewed :func:`synthetic_trace` through a
    :class:`~repro.api.PhotonicCluster`, so the sweep isolates what
    routing does to the fleet: ``cache_affinity`` pins each tenant's
    weight program to one core (misses stay ~one per program),
    ``round_robin`` recompiles every hot program on every core.
    Prints a per-configuration table and returns the summary dict;
    ``json_path`` additionally writes it (the ``serve-bench cluster``
    CLI and ``benchmarks/bench_cluster_scaling.py`` both point it at
    ``BENCH_cluster.json``).  ``trace`` (a
    :class:`~repro.telemetry.TraceRecorder`) records every
    configuration's modelled span timeline as its own trace process
    and adds the fleet latency quantiles to each policy record.
    """
    from ..api.cluster import PhotonicCluster
    from ..api.policy import FlushPolicy
    from ..api.routing import RoutingPolicy

    if flush_every < 1:
        raise ConfigurationError(f"flush interval must be >= 1, got {flush_every}")
    if not cores_sweep or any(cores < 1 for cores in cores_sweep):
        raise ConfigurationError(
            f"cores_sweep needs positive core counts, got {cores_sweep!r}"
        )
    workload = list(
        synthetic_trace(requests=requests, rows=rows, columns=columns, seed=seed)
    )
    sweep = []
    table_rows = []
    for cores in cores_sweep:
        policies = {}
        for policy_name in CLUSTER_BENCH_POLICIES:
            cluster = PhotonicCluster(
                cores=cores,
                grid=(rows, columns),
                cache_capacity=cache_capacity,
                max_batch=flush_every,
                flush_policy=FlushPolicy.max_batch(flush_every),
                routing=RoutingPolicy(kind=policy_name),
                trace=trace,
                label=f"{cores} cores / {policy_name}",
            )
            futures = []
            started = wall_clock()
            for _, weights, x in workload:
                futures.append(cluster.submit(weights, x))
            cluster.flush()
            elapsed = wall_clock() - started
            if not all(future.done for future in futures):
                raise ConfigurationError(
                    "cluster serve bench left unresolved futures"
                )
            report = cluster.report()
            fleet_latency = report.fleet_latency
            policies[policy_name] = {
                "elapsed_s": elapsed,
                "throughput_per_s": requests / elapsed if elapsed > 0 else float("inf"),
                # Cores digitize concurrently: the modelled fleet
                # makespan is the slowest core's latency, so this is
                # the number that scales with the core count.
                "modeled_throughput_per_s": (
                    requests / fleet_latency if fleet_latency > 0 else float("inf")
                ),
                "fleet_latency_us": fleet_latency * 1e6,
                "flushes": cluster.flushes,
                "cache_hits": report.total.cache_hits,
                "cache_misses": report.total.cache_misses,
                "cache_hit_rate": report.cache_hit_rate,
                "cache_evictions": report.total.cache_evictions,
                "weight_energy_spent_pj": report.total.weight_energy_spent * 1e12,
                "weight_energy_saved_pj": report.total.weight_energy_saved * 1e12,
                "routed": list(report.routed),
                "utilization": list(report.utilization),
                "imbalance": report.imbalance,
            }
            if trace is not None:
                policies[policy_name]["latency_quantiles"] = (
                    report.latency_quantiles
                )
            table_rows.append(
                f"{cores:>5}  {policy_name:<15} "
                f"{policies[policy_name]['throughput_per_s']:>12,.0f}  "
                f"{policies[policy_name]['modeled_throughput_per_s']:>14,.3g}  "
                f"{policies[policy_name]['cache_hit_rate']:>7.0%}  "
                f"{policies[policy_name]['cache_evictions']:>9}  "
                f"{policies[policy_name]['imbalance']:>8.2f}x"
            )
        sweep.append(
            {
                "cores": cores,
                # The headline scaling number rides the affinity policy
                # (the recommended default for skewed tenant traffic).
                "throughput_per_s": policies["cache_affinity"]["throughput_per_s"],
                "policies": policies,
            }
        )
    summary = {
        "requests": requests,
        "grid": [rows, columns],
        "flush_every": flush_every,
        "seed": seed,
        "cores_sweep": list(cores_sweep),
        "sweep": sweep,
    }
    if json_path is not None:
        import json
        from pathlib import Path

        Path(json_path).write_text(json.dumps(summary, indent=2) + "\n")
    lines = [
        f"cluster serve-bench: {requests} requests on {rows} x {columns} "
        f"tiles (flush policy max_batch={flush_every}, seed {seed})",
        f"{'cores':>5}  {'routing':<15} {'inferences/s':>12}  "
        f"{'modelled inf/s':>14}  {'hit rate':>8}  {'evictions':>9}  "
        f"{'imbalance':>9}",
        *table_rows,
    ]
    if json_path is not None:
        lines.append(f"summary written to: {json_path}")
    print_fn("\n".join(lines))
    return summary


#: The drift sweep axes of ``serve-bench drift``, in report order.
DRIFT_BENCH_SEVERITIES = (0.5, 1.5)
DRIFT_BENCH_CADENCES = (0, 1, 4)       # probe_every; 0 = unmonitored
DRIFT_BENCH_THRESHOLDS = (0.02, 0.2)   # code-error rate triggering recal


def drift_suite(severity: float = 1.0):
    """The serve-bench degradation suite, scaled by ``severity``.

    One of each modelled process: slow thermal wander of the ring
    resonances, exponential laser aging, TIA gain droop and
    comparator-offset aging — rates chosen so a ~minute of modelled
    traffic at severity 1 walks a visible fraction of the 3-bit probe
    codes.
    """
    from ..health import (
        ComparatorOffsetAging,
        LaserPowerDecay,
        ThermalDetuning,
        TiaGainDrift,
    )

    if severity <= 0.0:
        raise ConfigurationError(f"drift severity must be positive, got {severity}")
    return (
        ThermalDetuning(amplitude_kelvin=0.35 * severity, period_s=45.0),
        LaserPowerDecay(rate_per_s=1e-3 * severity),
        TiaGainDrift(drift_per_s=-8e-4 * severity),
        ComparatorOffsetAging(
            volts_per_inference=2e-4 * severity, saturation_volts=0.45
        ),
    )


def run_drift_serve_bench(
    requests: int = 240,
    rows: int = 8,
    columns: int = 8,
    flush_every: int = 32,
    cache_capacity: int = 4,
    seed: int = 2025,
    severities: tuple[float, ...] = DRIFT_BENCH_SEVERITIES,
    cadences: tuple[int, ...] = DRIFT_BENCH_CADENCES,
    thresholds: tuple[float, ...] = DRIFT_BENCH_THRESHOLDS,
    arrival_period_s: float = 0.25,
    probes: int = 8,
    trace=None,
    json_path=None,
    incident_path=None,
    print_fn=print,
) -> dict:
    """Sweep drift severity x probe cadence x recalibration threshold.

    Every configuration replays the *same* Zipf-skewed
    :func:`synthetic_trace` through a :class:`~repro.api.PhotonicSession`
    whose core degrades under :func:`drift_suite`; requests arrive
    ``arrival_period_s`` of modelled wall-clock apart, so the trace
    spans ``requests * arrival_period_s`` seconds of aging.  Cadence 0
    is the unmonitored control (no :class:`~repro.health.HealthPolicy`
    — the drift is only measured once, after the fact); positive
    cadences probe every N flushes and recalibrate past the threshold.
    Each record carries the final probe code-error rate, the
    recalibration count, the calibration energy/latency overhead and
    the per-probe recovery curve; ``json_path`` writes the summary
    (the CLI and ``benchmarks/bench_drift_recovery.py`` point it at
    ``BENCH_drift.json``).

    After the sweep, one extra *incident replay* runs the worst
    severity under a monitor-only policy with a
    :class:`~repro.obs.Observer` attached: the probe code-error rate
    climbs unchecked until the burn-rate rule pages, and the flight
    recorder dumps a bundle whose trailing spans are the offending
    flushes.  The replay's alerts and incident count land under
    ``summary["incident"]``; ``incident_path`` additionally writes the
    first bundle as standalone JSON (the CLI points it at
    ``INCIDENT_drift.json`` when ``--dashboard`` is on).
    """
    from ..api.policy import FlushPolicy
    from ..api.session import PhotonicSession
    from ..health import HealthPolicy

    if flush_every < 1:
        raise ConfigurationError(f"flush interval must be >= 1, got {flush_every}")
    if arrival_period_s < 0.0:
        raise ConfigurationError(
            f"arrival period must be non-negative, got {arrival_period_s}"
        )
    if not severities or not cadences:
        raise ConfigurationError("need at least one severity and one cadence")
    if any(cadence < 0 for cadence in cadences):
        raise ConfigurationError(f"cadences must be >= 0, got {cadences!r}")
    if any(cadence > 0 for cadence in cadences) and not thresholds:
        raise ConfigurationError(
            "monitored cadences need at least one recalibration threshold"
        )
    workload = list(
        synthetic_trace(requests=requests, rows=rows, columns=columns, seed=seed)
    )

    def replay(severity: float, policy, config_label: str) -> dict:
        session = PhotonicSession(
            grid=(rows, columns),
            cache_capacity=cache_capacity,
            max_batch=flush_every,
            flush_policy=FlushPolicy.max_batch(flush_every),
            drift=drift_suite(severity),
            health_policy=policy,
            trace=trace,
            label=f"severity {severity:g} / {config_label}",
        )
        # The unmonitored control still gets its monitor now, sized
        # like the monitored configs, so every final_code_error_rate
        # in the sweep is measured on the same probe program.
        session.ensure_monitor(HealthPolicy.monitor_only(probes=probes))
        started = wall_clock()
        futures = []
        for _, weights, x in workload:
            session.age(arrival_period_s)
            futures.append(session.submit(weights, x))
        session.flush()
        elapsed = wall_clock() - started
        if not all(future.done for future in futures):
            raise ConfigurationError("drift serve bench left unresolved futures")
        final = session.check_health()
        report = session.report()
        checks = session.health_history
        post_recal = [check for check in checks if check.recalibrated]
        result = {
            "final_code_error_rate": final.code_error_rate,
            "final_enob_loss": final.enob_loss,
            "attribution": dict(final.attribution),
            "recalibrations": report.recalibrations,
            "probe_runs": report.probe_runs,
            "recovered_bit_for_bit": bool(post_recal)
            and all(check.healthy for check in post_recal),
            "calibration_time_us": report.calibration_time * 1e6,
            "calibration_energy_nj": report.calibration_energy * 1e9,
            "analog_latency_us": report.total_latency * 1e6,
            "analog_energy_nj": report.total_energy * 1e9,
            "elapsed_s": elapsed,
            "recovery": [
                {
                    "flush": check.flush_index,
                    "code_error_rate": check.code_error_rate,
                    "recalibrated": check.recalibrated,
                }
                for check in checks
            ],
        }
        if trace is not None:
            result["latency_quantiles"] = report.latency_quantiles
        return result

    sweep = []
    table_rows = []
    for severity in severities:
        configs = []
        for cadence in cadences:
            if cadence == 0:
                policies = [("unmonitored", None, None)]
            else:
                policies = [
                    (
                        f"probe_every={cadence}, recal>{threshold:g}",
                        cadence,
                        threshold,
                    )
                    for threshold in thresholds
                ]
            for label, probe_every, threshold in policies:
                policy = (
                    None
                    if probe_every is None
                    else HealthPolicy(
                        probe_every=probe_every,
                        probes=probes,
                        recalibrate_threshold=threshold,
                    )
                )
                result = replay(severity, policy, label)
                configs.append(
                    {
                        "label": label,
                        "cadence": probe_every or 0,
                        "threshold": threshold,
                        **result,
                    }
                )
                table_rows.append(
                    f"{severity:>8.2g}  {label:<28} "
                    f"{result['final_code_error_rate']:>9.0%}  "
                    f"{result['recalibrations']:>6}  "
                    f"{result['calibration_energy_nj']:>10.2f}  "
                    f"{'yes' if result['recovered_bit_for_bit'] else 'no':>9}"
                )
        sweep.append({"severity": severity, "configs": configs})

    # -- induced incident replay (the repro.obs path, end to end) --------
    # One config past the sweep: the worst severity, probes on every
    # flush, no auto-recalibration — the probe code-error rate climbs
    # unchecked until the burn-rate rule pages on the modelled clock
    # and the flight recorder dumps the offending flush spans.
    from ..obs import FlightRecorder, Observer, ProbeErrorBurnRule
    from ..telemetry import TraceRecorder

    incident_trace = (
        trace if trace is not None else TraceRecorder(label="drift-incident")
    )
    incident_flush = max(2, min(flush_every, max(1, requests // 8)))
    incident_budget = min(thresholds) if thresholds else 0.05
    incident_severity = max(severities)
    flush_window_s = max(incident_flush * arrival_period_s, 1e-6)
    observer = Observer(
        rules=[
            ProbeErrorBurnRule(
                budget=incident_budget,
                window_s=6.0 * flush_window_s,
                short_window_s=2.0 * flush_window_s,
                threshold=1.0,
                severity="page",
            )
        ],
        recorder=FlightRecorder(trace=incident_trace, capacity=128),
    )
    incident_session = PhotonicSession(
        grid=(rows, columns),
        cache_capacity=cache_capacity,
        max_batch=incident_flush,
        flush_policy=FlushPolicy.max_batch(incident_flush),
        drift=drift_suite(incident_severity),
        health_policy=HealthPolicy.monitor_only(probe_every=1, probes=probes),
        trace=incident_trace,
        obs=observer,
        label=f"severity {incident_severity:g} / incident replay",
    )
    for _, weights, x in workload:
        incident_session.age(arrival_period_s)
        incident_session.submit(weights, x)
    incident_session.flush()
    fired = [alert for alert in observer.alerts if alert.state == "firing"]
    incident = {
        "severity": incident_severity,
        "flush_every": incident_flush,
        "budget": incident_budget,
        "window_s": 6.0 * flush_window_s,
        "short_window_s": 2.0 * flush_window_s,
        "fired_at": fired[0].fired_at if fired else None,
        "alerts": [alert.to_dict() for alert in observer.alerts],
        "incidents": len(observer.incidents),
        "incident_markers": [
            {"at": bundle.at, "trigger": {"kind": bundle.trigger.get("kind")}}
            for bundle in observer.incidents
        ],
    }
    if incident_path is not None and observer.incidents:
        from pathlib import Path

        incident["bundle_path"] = str(
            observer.incidents[0].save(Path(incident_path))
        )

    summary = {
        "requests": requests,
        "grid": [rows, columns],
        "flush_every": flush_every,
        "seed": seed,
        "arrival_period_s": arrival_period_s,
        "probes": probes,
        "severities": list(severities),
        "cadences": list(cadences),
        "thresholds": list(thresholds),
        "sweep": sweep,
        "incident": incident,
    }
    if json_path is not None:
        import json
        from pathlib import Path

        Path(json_path).write_text(json.dumps(summary, indent=2) + "\n")
    lines = [
        f"drift serve-bench: {requests} requests on {rows} x {columns} tiles, "
        f"{arrival_period_s:g} s modelled arrival spacing (seed {seed})",
        f"{'severity':>8}  {'health policy':<28} {'final err':>9}  "
        f"{'recals':>6}  {'cal nJ':>10}  {'recovered':>9}",
        *table_rows,
        (
            f"incident replay: probe-error burn alert fired at modelled "
            f"t={incident['fired_at']:.2f} s "
            f"({incident['incidents']} incident bundle(s))"
            if incident["fired_at"] is not None
            else "incident replay: no alert fired (drift too mild for the "
            "burn-rate rule)"
        ),
    ]
    if incident.get("bundle_path"):
        lines.append(f"incident bundle written to: {incident['bundle_path']}")
    if json_path is not None:
        lines.append(f"summary written to: {json_path}")
    print_fn("\n".join(lines))
    return summary


#: Routing policies the traffic capacity curve sweeps, in report order.
TRAFFIC_BENCH_POLICIES = ("round_robin", "least_loaded", "cache_affinity")


def run_traffic_serve_bench(
    requests: int = 1_000_000,
    cores_sweep: tuple[int, ...] = (1, 2, 4),
    rows: int = 8,
    columns: int = 8,
    tenants: int = 4,
    flush_every: int = 64,
    deadline_s: float = 1e-6,
    p99_slo_s: float = 2.5e-7,
    miss_budget: float = 0.01,
    base_rate: float = 4e9,
    trial_requests: int | None = None,
    probe_requests: int = 3000,
    head_requests: int = 20000,
    max_doublings: int = 16,
    seed: int = 2025,
    trace=None,
    json_path=None,
    print_fn=print,
) -> dict:
    """Open-loop traffic on the modelled clock: capacity under an SLO.

    Three measurements, all driven by :class:`~repro.traffic.TrafficEngine`
    (real sessions, modelled arrival + service clocks, zero host-clock
    dependence):

    1. **Sustained run** — ``requests`` (a million by default) Poisson
       arrivals at ~60% of the probed single-core capacity through one
       session under the SLO-derived flush policy; the headline
       modelled-throughput / p99 / miss-rate numbers.
    2. **Capacity curve** — for every (core count, routing policy)
       pair, :func:`~repro.traffic.find_capacity` binary-searches the
       offered load for the highest sustained req/s still meeting
       ``SLO(p99_slo_s, miss_budget)``.  Each trial's tape is sized
       from a per-core-count throughput probe so a queue growing past
       the p99 bound is actually observable within the tape
       (max measurable backlog = tape / capacity).
    3. **Head-to-head** — the same offered load (batch-fill time well
       past the deadline) under plain ``max_batch`` vs the
       deadline-aware SLO policy, demonstrating the early flush
       converting deadline misses into met deadlines.

    ``json_path`` writes the summary (the ``serve-bench traffic`` CLI
    points it at ``BENCH_traffic.json``).  ``trace`` records the
    sustained run's span timeline (capacity trials stay untraced —
    they run dozens of disposable targets).
    """
    from ..api.cluster import PhotonicCluster
    from ..api.policy import FlushPolicy
    from ..api.routing import RoutingPolicy
    from ..api.session import PhotonicSession
    from ..telemetry import MetricsRegistry, ModelClock
    from ..traffic import SLO, Poisson, TrafficEngine, WorkloadMix, find_capacity

    if flush_every < 1:
        raise ConfigurationError(f"flush interval must be >= 1, got {flush_every}")
    if requests < 1:
        raise ConfigurationError(f"traffic bench needs requests >= 1, got {requests}")
    if not cores_sweep or any(cores < 1 for cores in cores_sweep):
        raise ConfigurationError(
            f"cores_sweep needs positive core counts, got {cores_sweep!r}"
        )
    slo = SLO(p99_latency=p99_slo_s, deadline_miss_budget=miss_budget)
    mix = WorkloadMix.zipf(
        tenants=tenants, rows=rows, columns=columns, deadline_s=deadline_s
    )
    probe_mix = WorkloadMix.zipf(tenants=tenants, rows=rows, columns=columns)
    policy = slo.flush_policy(batch_limit=flush_every)

    def make_session(bench_trace=None):
        return PhotonicSession(
            grid=(rows, columns),
            max_batch=flush_every,
            flush_policy=policy,
            metrics=MetricsRegistry(),
            trace=bench_trace,
            clock=ModelClock(),
            label="traffic-bench",
        )

    def make_cluster(cores: int, routing: str):
        def factory():
            return PhotonicCluster(
                cores=cores,
                grid=(rows, columns),
                max_batch=flush_every,
                flush_policy=policy,
                routing=RoutingPolicy(kind=routing),
                metrics=MetricsRegistry(),
                clock=ModelClock(),
                label=f"traffic {cores}c/{routing}",
            )

        return factory

    def probe_capacity(factory) -> float:
        """Peak modelled throughput [req/s]: saturate a deadline-free
        workload (offered far past service) and read the goodput."""
        engine = TrafficEngine(
            factory(), probe_mix, Poisson(1e12), slo=None, seed=seed
        )
        return engine.run(probe_requests)["throughput_per_s"]

    # -- 1. sustained run ----------------------------------------------------
    single_capacity = probe_capacity(lambda: make_session())
    if single_capacity <= 0.0:
        raise ConfigurationError("capacity probe resolved no traffic")
    sustained_rate = 0.6 * single_capacity
    started = wall_clock()
    sustained = TrafficEngine(
        make_session(bench_trace=trace),
        mix,
        Poisson(sustained_rate),
        slo=slo,
        seed=seed,
    ).run(requests)
    sustained["wall_elapsed_s"] = wall_clock() - started
    sustained["wall_requests_per_s"] = (
        requests / sustained["wall_elapsed_s"]
        if sustained["wall_elapsed_s"] > 0
        else float("inf")
    )

    # -- 2. capacity curve ---------------------------------------------------
    curve = []
    for cores in cores_sweep:
        cores_capacity = probe_capacity(make_cluster(cores, "cache_affinity"))
        if trial_requests is None:
            # Tape long enough that backlog can overrun the p99 bound
            # ~2.5x over before the tape ends.
            tape = int(
                min(max(2.5 * cores_capacity * p99_slo_s, 2000), 40000)
            )
        else:
            tape = int(trial_requests)
        policies = {}
        for routing in TRAFFIC_BENCH_POLICIES:
            capacity = find_capacity(
                make_cluster(cores, routing),
                mix,
                Poisson(base_rate),
                slo,
                requests=tape,
                seed=seed,
                resolution=0.1,
                max_doublings=max_doublings,
            )
            policies[routing] = {
                "capacity_per_s": capacity["capacity_per_s"],
                "saturated": capacity["saturated"],
                "trials": capacity["trials"],
                "p99_e2e_s": (
                    capacity["sustained"]["p99_e2e_s"]
                    if capacity["sustained"] is not None
                    else None
                ),
                "miss_rate": (
                    capacity["sustained"]["miss_rate"]
                    if capacity["sustained"] is not None
                    else None
                ),
            }
        curve.append(
            {
                "cores": cores,
                "probe_capacity_per_s": cores_capacity,
                "trial_requests": tape,
                "policies": policies,
            }
        )

    # -- 3. head-to-head: max_batch vs deadline-aware ------------------------
    # Offer a rate whose batch-fill time is ~2x the deadline, so plain
    # max_batch rides most requests past their deadline while the
    # SLO-aware policy flushes early.
    head_rate = flush_every / (2.0 * deadline_s)
    head_to_head = {}
    for label, head_policy in (
        ("max_batch", FlushPolicy.max_batch(flush_every)),
        ("slo_aware", policy),
    ):
        target = PhotonicSession(
            grid=(rows, columns),
            max_batch=flush_every,
            flush_policy=head_policy,
            metrics=MetricsRegistry(),
            clock=ModelClock(),
            label=f"traffic head-to-head/{label}",
        )
        engine = TrafficEngine(
            target, mix, Poisson(head_rate), slo=slo, seed=seed
        )
        result = engine.run(head_requests)
        head_to_head[label] = {
            "flush_policy": result["flush_policy"],
            "p99_e2e_s": result["p99_e2e_s"],
            "deadline_misses": result["deadline_misses"],
            "miss_rate": result["miss_rate"],
            "slo_met": result["slo_met"],
        }

    summary = {
        "requests": requests,
        "grid": [rows, columns],
        "tenants": tenants,
        "flush_every": flush_every,
        "seed": seed,
        "slo": {
            "p99_latency_s": p99_slo_s,
            "deadline_miss_budget": miss_budget,
            "deadline_s": deadline_s,
        },
        "cores_sweep": list(cores_sweep),
        "sustained": sustained,
        "capacity_curve": curve,
        "head_to_head": head_to_head,
    }
    if json_path is not None:
        import json
        from pathlib import Path

        Path(json_path).write_text(json.dumps(summary, indent=2) + "\n")
    lines = [
        f"traffic serve-bench: {requests} sustained requests on "
        f"{rows} x {columns} tiles, SLO {slo.describe()} "
        f"(deadline {deadline_s:g} s, seed {seed})",
        f"sustained         : offered {sustained['offered_rate_per_s']:,.3g} req/s "
        f"modelled, p99 {(sustained['p99_e2e_s'] or 0) * 1e9:,.0f} ns, "
        f"{sustained['deadline_misses']} misses "
        f"({sustained['miss_rate']:.2%}), "
        f"SLO {'met' if sustained.get('slo_met') else 'VIOLATED'}",
        f"wall-clock        : {sustained['wall_elapsed_s']:.1f} s "
        f"({sustained['wall_requests_per_s']:,.0f} requests/s simulated)",
        f"{'cores':>5}  {'routing':<15} {'capacity req/s':>14}  "
        f"{'p99 ns':>8}  {'miss':>6}",
    ]
    for entry in curve:
        for routing in TRAFFIC_BENCH_POLICIES:
            record = entry["policies"][routing]
            p99 = record["p99_e2e_s"]
            miss = record["miss_rate"]
            lines.append(
                f"{entry['cores']:>5}  {routing:<15} "
                f"{record['capacity_per_s']:>14,.3g}  "
                f"{(p99 or 0) * 1e9:>8,.0f}  "
                f"{miss if miss is not None else 0:>6.2%}"
            )
    for label, record in head_to_head.items():
        lines.append(
            f"head-to-head      : {label:<10} p99 "
            f"{(record['p99_e2e_s'] or 0) * 1e9:,.0f} ns, "
            f"{record['deadline_misses']} misses ({record['miss_rate']:.2%})"
        )
    if json_path is not None:
        lines.append(f"summary written to: {json_path}")
    print_fn("\n".join(lines))
    return summary


def run_cnn_serve_bench(
    images: int = 48,
    rows: int = 8,
    columns: int = 9,
    kernels: int = 4,
    kernel_size: int = 3,
    flush_every: int = 16,
    seed: int = 2025,
    trace=None,
    print_fn=print,
) -> dict:
    """Replay a CNN feature-extraction stream through the conv route.

    A stream of 8x8 procedural digit glyphs is convolved against one
    shared signed kernel bank via :meth:`PhotonicSession.submit_conv`
    (im2col patches batched into compiled differential matmuls) with a
    ``max_batch`` flush policy draining every ``flush_every`` images;
    the repeated bank exercises the conv program cache — one build,
    hits thereafter.  Prints image/patch throughput and cache/energy
    statistics; returns them as a dict for tests and benches.
    """
    from ..api.policy import FlushPolicy
    from ..api.session import PhotonicSession
    from ..ml.datasets import procedural_digits

    if images < 1:
        raise ConfigurationError(f"need at least one image, got {images}")
    if flush_every < 1:
        raise ConfigurationError(f"flush interval must be >= 1, got {flush_every}")
    rng = np.random.default_rng(seed)
    bank = rng.normal(0.0, 1.0, (kernels, kernel_size, kernel_size))
    data, _ = procedural_digits(
        samples_per_class=-(-images // 10), noise=0.1, seed=seed, pooled=False
    )
    glyphs = data[:images].reshape(-1, 8, 8)

    session = PhotonicSession(
        grid=(rows, columns),
        flush_policy=FlushPolicy.max_batch(flush_every),
        trace=trace,
        label="cnn-bench",
    )
    futures = []
    started = wall_clock()
    for glyph in glyphs:
        futures.append(session.submit_conv(bank, glyph))
    session.flush()
    elapsed = wall_clock() - started

    if not all(future.done for future in futures):
        raise ConfigurationError("cnn serve bench left unresolved futures")
    stats = session.server_stats()
    out_side = glyphs.shape[1] - kernel_size + 1
    summary = {
        "images": stats.conv_requests,
        "patches": stats.conv_patches,
        "kernels": kernels,
        "feature_map": [kernels, out_side, out_side],
        "elapsed_s": elapsed,
        "images_per_s": images / elapsed if elapsed > 0 else float("inf"),
        "patches_per_s": stats.conv_patches / elapsed if elapsed > 0 else float("inf"),
        "cache_hits": stats.tiled_hits,
        "cache_misses": stats.tiled_builds,
        "cache_hit_rate": stats.cache_hit_rate,
        "weight_energy_spent_pj": stats.weight_energy_spent * 1e12,
        "weight_energy_saved_pj": stats.weight_energy_saved * 1e12,
        "analog_latency_us": stats.analog_time * 1e6,
        "analog_energy_nj": stats.analog_energy * 1e9,
    }
    if trace is not None:
        summary["latency_quantiles"] = session.report().latency_quantiles
    lines = [
        f"conv program      : {kernels} kernels {kernel_size}x{kernel_size} "
        f"on {rows} x {columns} tiles (flush policy "
        f"{session.flush_policy.describe()})",
        f"images            : {summary['images']} "
        f"({summary['patches']} im2col patches)",
        f"wall-clock        : {elapsed * 1e3:.1f} ms "
        f"({summary['images_per_s']:,.0f} images/s, "
        f"{summary['patches_per_s']:,.0f} patches/s)",
        f"program cache     : {summary['cache_hits']} hits / "
        f"{summary['cache_misses']} misses "
        f"({summary['cache_hit_rate']:.0%} hit rate)",
        f"weight energy     : {summary['weight_energy_spent_pj']:.1f} pJ spent, "
        f"{summary['weight_energy_saved_pj']:.1f} pJ saved by caching",
        f"analog latency    : {summary['analog_latency_us']:.3f} us modelled "
        f"({summary['analog_energy_nj']:.2f} nJ)",
    ]
    print_fn("\n".join(lines))
    return summary


#: The elastic bench's arrival tapes, in report order.
ELASTIC_BENCH_TAPES = ("diurnal", "bursty")


def run_elastic_serve_bench(
    requests: int = 200_000,
    rows: int = 8,
    columns: int = 8,
    tenants: int = 4,
    flush_every: int = 64,
    deadline_s: float = 1e-6,
    p99_slo_s: float = 1e-6,
    miss_budget: float = 0.02,
    min_cores: int = 1,
    max_cores: int = 4,
    warm_programs: int = 6,
    conv_kernels: int = 8,
    kernel_size: int = 3,
    probe_requests: int = 3000,
    tapes: tuple[str, ...] = ELASTIC_BENCH_TAPES,
    seed: int = 2025,
    trace=None,
    json_path=None,
    print_fn=print,
) -> dict:
    """Elastic fleets: warm scale-up from the program store, and
    autoscaled vs static capacity at equal SLO.

    Two measurements (see :mod:`repro.elastic`):

    1. **Cold vs warm scale-up** — ``warm_programs`` distinct CNN
       kernel banks served through a fresh
       :class:`~repro.api.PhotonicSession`, first against an empty
       :class:`~repro.elastic.ProgramStore` (cold compiles, written
       through) and then through a second fresh session against the
       populated store (warm read-back).  Records the host wall-clock
       for each, their ratio (the scale-up latency win a grown core
       sees), and verifies the restored programs reproduce the cold
       feature maps **bit for bit**.
    2. **Autoscaled vs static fleets** — each arrival tape in ``tapes``
       (a compressed diurnal day, an MMPP-2 flash crowd) replayed by
       :class:`~repro.traffic.TrafficEngine` through three fleets under
       the same SLO-derived flush policy: a static ``min_cores`` fleet,
       a static ``max_cores`` fleet, and a fleet that starts at
       ``min_cores`` with an :class:`~repro.elastic.Autoscaler` and a
       shared program store.  Records per-fleet SLO verdicts and
       ``core_seconds`` (the capacity integral actually paid), plus the
       core-seconds the autoscaled fleet saves against the static
       max-size fleet when both meet the SLO.

    ``p99_slo_s`` defaults to ``deadline_s``: with deadline shedding,
    the survivors' p99 caps just under the deadline once any shedding
    occurs, so a p99 bound below the deadline is unmeetable under
    overload — the ``miss_budget`` is the binding criterion.

    ``json_path`` writes the summary (the ``serve-bench elastic`` CLI
    points it at ``BENCH_elastic.json``).
    """
    import tempfile

    from ..api.cluster import PhotonicCluster
    from ..api.policy import FlushPolicy
    from ..api.session import PhotonicSession
    from ..elastic import Autoscaler, ProgramStore
    from ..ml.datasets import procedural_digits
    from ..telemetry import MetricsRegistry, ModelClock
    from ..traffic import SLO, Poisson, TrafficEngine, WorkloadMix
    from ..traffic.arrivals import Bursty, Diurnal

    if requests < 1:
        raise ConfigurationError(f"elastic bench needs requests >= 1, got {requests}")
    if not 1 <= min_cores <= max_cores:
        raise ConfigurationError(
            f"elastic bench needs 1 <= min_cores <= max_cores, "
            f"got {min_cores}..{max_cores}"
        )
    if warm_programs < 1:
        raise ConfigurationError(
            f"elastic bench needs warm_programs >= 1, got {warm_programs}"
        )
    unknown_tapes = [tape for tape in tapes if tape not in ELASTIC_BENCH_TAPES]
    if unknown_tapes:
        raise ConfigurationError(
            f"unknown elastic bench tape(s) {unknown_tapes}; "
            f"choose from {list(ELASTIC_BENCH_TAPES)}"
        )
    rng = np.random.default_rng(seed)
    slo = SLO(p99_latency=p99_slo_s, deadline_miss_budget=miss_budget)
    policy = slo.flush_policy(batch_limit=flush_every)
    mix = WorkloadMix.zipf(
        tenants=tenants, rows=rows, columns=columns, deadline_s=deadline_s
    )
    probe_mix = WorkloadMix.zipf(tenants=tenants, rows=rows, columns=columns)

    # -- 1. cold vs warm scale-up through the program store ------------------
    banks = rng.normal(0.0, 1.0, (warm_programs, conv_kernels, kernel_size, kernel_size))
    data, _ = procedural_digits(samples_per_class=1, noise=0.1, seed=seed, pooled=False)
    glyph = data[0].reshape(8, 8)

    def serve_programs(store: ProgramStore, label: str):
        """One fresh session serving every bank once; returns (host
        wall-clock of submit+flush, the resolved feature maps)."""
        session = PhotonicSession(
            grid=(rows, columns),
            flush_policy=FlushPolicy.explicit(),
            program_store=store,
            label=f"elastic-bench/{label}",
        )
        started = wall_clock()
        futures = [session.submit_conv(bank, glyph) for bank in banks]
        session.flush()
        elapsed = wall_clock() - started
        return elapsed, [future.result() for future in futures]

    with tempfile.TemporaryDirectory() as tmp:
        store = ProgramStore(tmp)
        cold_elapsed, cold_maps = serve_programs(store, "cold")
        warm_elapsed, warm_maps = serve_programs(store, "warm")
        bit_for_bit = all(
            np.array_equal(cold, warm)
            for cold, warm in zip(cold_maps, warm_maps)
        )
        warm_start = {
            "programs": int(warm_programs),
            "cold_s": cold_elapsed,
            "warm_s": warm_elapsed,
            "speedup": cold_elapsed / warm_elapsed if warm_elapsed > 0 else float("inf"),
            "bit_for_bit": bool(bit_for_bit),
            "store": store.describe(),
        }

    # -- 2. autoscaled vs static fleets under diurnal/bursty tapes -----------
    def probe_capacity() -> float:
        session = PhotonicSession(
            grid=(rows, columns),
            max_batch=flush_every,
            flush_policy=policy,
            metrics=MetricsRegistry(),
            clock=ModelClock(),
            label="elastic-probe",
        )
        engine = TrafficEngine(session, probe_mix, Poisson(1e12), slo=None, seed=seed)
        return engine.run(probe_requests)["throughput_per_s"]

    single_capacity = probe_capacity()
    if single_capacity <= 0.0:
        raise ConfigurationError("elastic capacity probe resolved no traffic")
    trough = 0.3 * single_capacity
    peak = 0.6 * max_cores * single_capacity
    mean_rate = (trough + peak) / 2.0
    tape_s = requests / mean_rate
    arrival_tapes = {
        "diurnal": Diurnal(trough, peak, period=tape_s / 2.0),
        "bursty": Bursty(
            quiet=trough,
            burst=peak,
            quiet_dwell=tape_s / 6.0,
            burst_dwell=tape_s / 12.0,
        ),
    }
    autoscaler = Autoscaler(
        min_cores=min_cores,
        max_cores=max_cores,
        watch_every=flush_every,
        scale_up_pending=float(flush_every),
        scale_down_pending=float(max(flush_every // 8, 1)),
        cooldown_s=tape_s / 50.0,
    )

    def run_fleet(
        arrivals, cores: int, fleet_autoscaler, store, label: str,
        fleet_trace=None,
    ) -> dict:
        cluster = PhotonicCluster(
            cores=cores,
            grid=(rows, columns),
            max_batch=flush_every,
            flush_policy=policy,
            autoscaler=fleet_autoscaler,
            program_store=store,
            trace=fleet_trace,
            metrics=MetricsRegistry(),
            clock=ModelClock(),
            label=f"elastic/{label}",
        )
        engine = TrafficEngine(cluster, mix, arrivals, slo=slo, seed=seed)
        result = engine.run(requests)
        report = cluster.report()
        return {
            "cores_start": cores,
            "cores_final": cluster.cores,
            "active_final": len(cluster.active_cores),
            "scale_ups": report.scale_ups,
            "scale_downs": report.scale_downs,
            "core_seconds": report.core_seconds,
            "warm_restores": store.restores if store is not None else 0,
            "p99_e2e_s": result["p99_e2e_s"],
            "miss_rate": result["miss_rate"],
            "slo_met": result["slo_met"],
            "throughput_per_s": result["throughput_per_s"],
            "makespan_s": result["makespan_s"],
        }

    tape_results = {}
    for tape in tapes:
        arrivals = arrival_tapes[tape]
        with tempfile.TemporaryDirectory() as tmp:
            fleets = {
                "static_min": run_fleet(
                    arrivals, min_cores, None, None, f"{tape}/static_min"
                ),
                "static_max": run_fleet(
                    arrivals, max_cores, None, None, f"{tape}/static_max"
                ),
                "autoscaled": run_fleet(
                    arrivals,
                    min_cores,
                    autoscaler,
                    ProgramStore(tmp),
                    f"{tape}/autoscaled",
                    # The scale-up / warm-start instants land on the
                    # --trace timeline for the autoscaled arm only.
                    fleet_trace=trace,
                ),
            }
        saved = fleets["static_max"]["core_seconds"] - fleets["autoscaled"]["core_seconds"]
        tape_results[tape] = {
            "arrivals": arrivals.describe(),
            "fleets": fleets,
            "core_seconds_saved": saved,
            "equal_slo": bool(
                fleets["autoscaled"]["slo_met"] == fleets["static_max"]["slo_met"]
            ),
        }

    summary = {
        "requests": int(requests),
        "grid": [rows, columns],
        "tenants": tenants,
        "flush_every": flush_every,
        "seed": seed,
        "slo": {
            "p99_latency_s": p99_slo_s,
            "deadline_miss_budget": miss_budget,
            "deadline_s": deadline_s,
        },
        "min_cores": min_cores,
        "max_cores": max_cores,
        "single_core_capacity_per_s": single_capacity,
        "autoscaler": autoscaler.describe(),
        "warm_start": warm_start,
        "tapes": tape_results,
    }
    if json_path is not None:
        import json
        from pathlib import Path

        Path(json_path).write_text(json.dumps(summary, indent=2) + "\n")
    lines = [
        f"elastic serve-bench: {requests} requests per tape on "
        f"{rows} x {columns} tiles, fleets {min_cores}..{max_cores} cores, "
        f"SLO {slo.describe()} (seed {seed})",
        f"warm scale-up     : {warm_start['programs']} programs, cold "
        f"{warm_start['cold_s'] * 1e3:.1f} ms vs warm "
        f"{warm_start['warm_s'] * 1e3:.1f} ms "
        f"({warm_start['speedup']:.1f}x), bit-for-bit "
        f"{'OK' if warm_start['bit_for_bit'] else 'MISMATCH'}",
        f"{'tape':>8}  {'fleet':<11} {'cores':>5}  {'ups/downs':>9}  "
        f"{'core-s':>9}  {'p99 ns':>8}  {'miss':>6}  SLO",
    ]
    for tape, record in tape_results.items():
        for name, fleet in record["fleets"].items():
            lines.append(
                f"{tape:>8}  {name:<11} "
                f"{fleet['active_final']:>5}  "
                f"{fleet['scale_ups']}/{fleet['scale_downs']:<7}  "
                f"{fleet['core_seconds']:>9.3g}  "
                f"{(fleet['p99_e2e_s'] or 0) * 1e9:>8,.0f}  "
                f"{fleet['miss_rate']:>6.2%}  "
                f"{'met' if fleet['slo_met'] else 'VIOLATED'}"
            )
        lines.append(
            f"{tape:>8}  core-seconds saved vs static max: "
            f"{record['core_seconds_saved']:.3g} "
            f"({'equal SLO' if record['equal_slo'] else 'SLO DIFFERS'})"
        )
    if json_path is not None:
        lines.append(f"summary written to: {json_path}")
    print_fn("\n".join(lines))
    return summary
