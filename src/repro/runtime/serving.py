"""Legacy serving shims and the multi-tenant traffic benchmarks.

The serving engine room moved to :class:`repro.api.PhotonicSession` —
the single front door owning the core, the scheduler, the shared
program cache and the flush policy, returning
:class:`~repro.api.futures.Future` handles.  This module keeps the
seed-era surface alive as thin deprecation shims:

* :class:`InferenceServer` — constructs a session with an explicit
  flush policy and forwards ``submit`` / ``submit_conv`` / ``flush`` /
  ``stats`` to it; tickets wrap the session's futures.
* :class:`ServerTicket` / :class:`ConvTicket` — future wrappers with
  the historical ``estimates`` / ``feature_maps`` accessors.
* ``ConvProgram`` — alias of
  :class:`~repro.runtime.tiling.DifferentialProgram`, which now lives
  with the tiling engines.

:func:`synthetic_trace` builds the repeatable multi-tenant workload the
``python -m repro serve-bench`` command replays — both
:func:`run_serve_bench` and :func:`run_cnn_serve_bench` now drive a
:class:`~repro.api.PhotonicSession` directly, with a ``max_batch``
flush policy standing in for the old hand-placed ``flush()`` calls.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

import numpy as np

from ..config import Technology
from ..errors import ConfigurationError
from .scheduler import SchedulerStats
from .tiling import DifferentialProgram

# repro.api.session imports this package's scheduler/tiling modules, so
# the session and policy are imported lazily inside the shims/benches
# to keep the package import order cycle-free.

#: Historical name of the cached differential conv program.
ConvProgram = DifferentialProgram


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class ServerTicket:
    """Deprecated handle for one dense request; wraps a session Future."""

    __slots__ = ("_future",)

    def __init__(self, future) -> None:
        self._future = future

    @property
    def future(self):
        """The underlying :class:`repro.api.Future`."""
        return self._future

    @property
    def done(self) -> bool:
        return self._future.done

    @property
    def estimates(self) -> np.ndarray:
        """Dequantized W @ x estimates (length out_features).  Raises
        :class:`~repro.errors.PendingFlushError` before the flush."""
        return self._future.value


class ConvTicket:
    """Deprecated handle for one conv request; wraps a session Future."""

    __slots__ = ("_future",)

    def __init__(self, future) -> None:
        self._future = future

    @property
    def future(self):
        """The underlying :class:`repro.api.Future`."""
        return self._future

    @property
    def shape(self) -> tuple:
        return self._future.shape

    @property
    def done(self) -> bool:
        return self._future.done

    @property
    def feature_maps(self) -> np.ndarray:
        """Dequantized (num_kernels, out_rows, out_cols) feature maps.
        Raises :class:`~repro.errors.PendingFlushError` before the
        flush."""
        return self._future.value


@dataclass
class ServerStats:
    """Combined serving statistics of both request paths."""

    scheduler: SchedulerStats
    tiled_requests: int
    tiled_builds: int
    tiled_hits: int
    tiled_batches: int
    #: Sequential ADC sample periods consumed on the tiled/conv paths
    #: — the time-slot count, so ``tiled_analog_time`` is exactly this
    #: many sample periods on both paths.  Tiles of one grid digitize
    #: in parallel and share a slot; a differential conv bank's two
    #: sequential array passes take two slots per patch column.
    tiled_samples: int
    tiled_analog_time: float
    tiled_analog_energy: float
    tiled_weight_energy_spent: float
    tiled_weight_energy_saved: float
    #: Conv-route traffic: requests are whole images; their per-patch
    #: ADC samples and energy are folded into the tiled_* accumulators
    #: (conv programs live in the same cache and grids).
    conv_requests: int = 0
    conv_patches: int = 0

    @property
    def requests(self) -> int:
        return self.scheduler.requests + self.tiled_requests + self.conv_requests

    @property
    def batches(self) -> int:
        return self.scheduler.batches + self.tiled_batches

    @property
    def cache_hit_rate(self) -> float:
        hits = self.scheduler.cache_hits + self.tiled_hits
        total = hits + self.scheduler.cache_misses + self.tiled_builds
        return hits / total if total else 0.0

    @property
    def analog_time(self) -> float:
        """Modelled ADC sampling time [s] across both request paths."""
        return self.scheduler.analog_time + self.tiled_analog_time

    @property
    def analog_energy(self) -> float:
        """Modelled analog compute energy [J] across both request paths."""
        return self.scheduler.analog_energy + self.tiled_analog_energy

    @property
    def weight_energy_spent(self) -> float:
        return self.scheduler.weight_energy_spent + self.tiled_weight_energy_spent

    @property
    def weight_energy_saved(self) -> float:
        return self.scheduler.weight_energy_saved + self.tiled_weight_energy_saved

    @property
    def total_latency(self) -> float:
        return self.scheduler.weight_time_spent + self.analog_time

    @property
    def total_energy(self) -> float:
        return self.weight_energy_spent + self.analog_energy


class InferenceServer:
    """Deprecated synchronous facade; thin shim over
    :class:`repro.api.PhotonicSession`.

    The historical surface is preserved — ``submit`` / ``submit_conv``
    return tickets resolved by a hand-called :meth:`flush` — but every
    request now flows through a session with an explicit flush policy.
    New code should construct the session directly and use futures.
    """

    def __init__(
        self,
        rows: int | None = None,
        columns: int | None = None,
        weight_bits: int | None = None,
        adc_bits: int | None = None,
        technology: Technology | None = None,
        cache_capacity: int = 8,
        tiled_cache_capacity: int = 4,
        max_batch: int = 256,
    ) -> None:
        from ..api.policy import FlushPolicy
        from ..api.session import PhotonicSession

        _deprecated("InferenceServer", "repro.api.PhotonicSession")
        self.session = PhotonicSession(
            technology=technology,
            rows=rows,
            columns=columns,
            weight_bits=weight_bits,
            adc_bits=adc_bits,
            cache_capacity=cache_capacity,
            tiled_cache_capacity=tiled_cache_capacity,
            max_batch=max_batch,
            flush_policy=FlushPolicy.explicit(),
        )

    @property
    def technology(self) -> Technology:
        return self.session.technology

    @property
    def scheduler(self):
        return self.session.scheduler

    @property
    def tiled_cache(self):
        return self.session.tiled_cache

    @property
    def rows(self) -> int:
        return self.session.rows

    @property
    def columns(self) -> int:
        return self.session.columns

    def submit(self, weights, x, gain: float | str | None = None) -> ServerTicket:
        """Queue one W @ x request for the next :meth:`flush`."""
        return ServerTicket(self.session.submit(weights, x, gain=gain))

    def submit_conv(
        self, kernels, image, stride: int = 1, gain: float | None = None
    ) -> ConvTicket:
        """Queue one im2col convolution for the next :meth:`flush`."""
        return ConvTicket(
            self.session.submit_conv(kernels, image, stride=stride, gain=gain)
        )

    def flush(self) -> int:
        """Evaluate every pending request; returns resolved count."""
        return self.session.flush()

    def stats(self) -> ServerStats:
        """Combined scheduler + tiled-path accounting."""
        return self.session.server_stats()


def synthetic_trace(
    tenants: int = 6,
    requests: int = 240,
    rows: int = 8,
    columns: int = 8,
    max_weight: int = 7,
    churn: float = 0.02,
    seed: int = 2025,
):
    """A repeatable multi-tenant request stream.

    Yields ``(tenant, weights, x)`` tuples.  Tenant shapes alternate
    between tile-native, smaller-than-tile and tiled (larger than one
    tile in both dimensions); popularity is Zipf-skewed so a few
    tenants dominate (good cache locality) and ``churn`` is the
    per-request probability the chosen tenant retrains its weights
    (forcing a fresh program compile).
    """
    if tenants < 1 or requests < 0:
        raise ConfigurationError("need at least one tenant and requests >= 0")
    rng = np.random.default_rng(seed)
    shapes = [
        (rows, columns),
        (max(rows // 2, 1), max(columns - 2, 1)),
        (rows + rows // 2, columns + columns // 2),
        (2 * rows + 1, columns),
    ]
    weights = [
        rng.integers(0, max_weight + 1, shapes[tenant % len(shapes)])
        for tenant in range(tenants)
    ]
    popularity = 1.0 / np.arange(1, tenants + 1)
    popularity /= popularity.sum()
    for _ in range(requests):
        tenant = int(rng.choice(tenants, p=popularity))
        if rng.uniform() < churn:
            weights[tenant] = rng.integers(0, max_weight + 1, weights[tenant].shape)
        x = rng.uniform(0.0, 1.0, weights[tenant].shape[1])
        yield tenant, weights[tenant], x


def run_serve_bench(
    requests: int = 240,
    rows: int = 8,
    columns: int = 8,
    flush_every: int = 32,
    cache_capacity: int = 4,
    seed: int = 2025,
    print_fn=print,
) -> dict:
    """Replay a synthetic trace through a :class:`PhotonicSession`.

    The session's ``max_batch`` flush policy drains the queues every
    ``flush_every`` requests — no hand-called ``flush()`` in the
    submit loop.  Prints throughput (inferences/s of the compiled
    serving path), batch-fill and cache statistics; returns them as a
    dict so tests and benches can assert on the numbers.
    """
    from ..api.policy import FlushPolicy
    from ..api.session import PhotonicSession

    if flush_every < 1:
        raise ConfigurationError(f"flush interval must be >= 1, got {flush_every}")
    session = PhotonicSession(
        grid=(rows, columns),
        cache_capacity=cache_capacity,
        max_batch=flush_every,
        flush_policy=FlushPolicy.max_batch(flush_every),
    )
    futures = []
    started = time.perf_counter()
    for _, weights, x in synthetic_trace(
        requests=requests, rows=rows, columns=columns, seed=seed
    ):
        futures.append(session.submit(weights, x))
    session.flush()
    elapsed = time.perf_counter() - started

    if not all(future.done for future in futures):
        raise ConfigurationError("serve bench left unresolved futures")
    stats = session.server_stats()
    throughput = requests / elapsed if elapsed > 0 else float("inf")
    summary = {
        "requests": stats.requests,
        "elapsed_s": elapsed,
        "throughput_per_s": throughput,
        "batch_fill": stats.scheduler.batch_fill,
        "batches": stats.batches,
        "flushes": session.flushes,
        "cache_hit_rate": stats.cache_hit_rate,
        "cache_hits": stats.scheduler.cache_hits + stats.tiled_hits,
        "cache_misses": stats.scheduler.cache_misses + stats.tiled_builds,
        "weight_energy_spent_pj": stats.weight_energy_spent * 1e12,
        "weight_energy_saved_pj": stats.weight_energy_saved * 1e12,
        "analog_latency_us": stats.total_latency * 1e6,
        "analog_energy_nj": stats.total_energy * 1e9,
    }
    lines = [
        f"tile              : {rows} x {columns} "
        f"(cache {cache_capacity} programs, flush policy "
        f"{session.flush_policy.describe()})",
        f"requests          : {summary['requests']} "
        f"({stats.scheduler.requests} single-tile, {stats.tiled_requests} tiled)",
        f"wall-clock        : {elapsed * 1e3:.1f} ms "
        f"({throughput:,.0f} inferences/s)",
        f"batches           : {summary['batches']} "
        f"(single-tile batch fill {summary['batch_fill']:.0%})",
        f"program cache     : {summary['cache_hits']} hits / "
        f"{summary['cache_misses']} misses "
        f"({summary['cache_hit_rate']:.0%} hit rate)",
        f"weight energy     : {summary['weight_energy_spent_pj']:.1f} pJ spent, "
        f"{summary['weight_energy_saved_pj']:.1f} pJ saved by caching",
        f"analog latency    : {summary['analog_latency_us']:.3f} us modelled "
        f"({summary['analog_energy_nj']:.2f} nJ, both paths)",
    ]
    print_fn("\n".join(lines))
    return summary


def run_cnn_serve_bench(
    images: int = 48,
    rows: int = 8,
    columns: int = 9,
    kernels: int = 4,
    kernel_size: int = 3,
    flush_every: int = 16,
    seed: int = 2025,
    print_fn=print,
) -> dict:
    """Replay a CNN feature-extraction stream through the conv route.

    A stream of 8x8 procedural digit glyphs is convolved against one
    shared signed kernel bank via :meth:`PhotonicSession.submit_conv`
    (im2col patches batched into compiled differential matmuls) with a
    ``max_batch`` flush policy draining every ``flush_every`` images;
    the repeated bank exercises the conv program cache — one build,
    hits thereafter.  Prints image/patch throughput and cache/energy
    statistics; returns them as a dict for tests and benches.
    """
    from ..api.policy import FlushPolicy
    from ..api.session import PhotonicSession
    from ..ml.datasets import procedural_digits

    if images < 1:
        raise ConfigurationError(f"need at least one image, got {images}")
    if flush_every < 1:
        raise ConfigurationError(f"flush interval must be >= 1, got {flush_every}")
    rng = np.random.default_rng(seed)
    bank = rng.normal(0.0, 1.0, (kernels, kernel_size, kernel_size))
    data, _ = procedural_digits(
        samples_per_class=-(-images // 10), noise=0.1, seed=seed, pooled=False
    )
    glyphs = data[:images].reshape(-1, 8, 8)

    session = PhotonicSession(
        grid=(rows, columns), flush_policy=FlushPolicy.max_batch(flush_every)
    )
    futures = []
    started = time.perf_counter()
    for glyph in glyphs:
        futures.append(session.submit_conv(bank, glyph))
    session.flush()
    elapsed = time.perf_counter() - started

    if not all(future.done for future in futures):
        raise ConfigurationError("cnn serve bench left unresolved futures")
    stats = session.server_stats()
    out_side = glyphs.shape[1] - kernel_size + 1
    summary = {
        "images": stats.conv_requests,
        "patches": stats.conv_patches,
        "kernels": kernels,
        "feature_map": [kernels, out_side, out_side],
        "elapsed_s": elapsed,
        "images_per_s": images / elapsed if elapsed > 0 else float("inf"),
        "patches_per_s": stats.conv_patches / elapsed if elapsed > 0 else float("inf"),
        "cache_hits": stats.tiled_hits,
        "cache_misses": stats.tiled_builds,
        "cache_hit_rate": stats.cache_hit_rate,
        "weight_energy_spent_pj": stats.weight_energy_spent * 1e12,
        "weight_energy_saved_pj": stats.weight_energy_saved * 1e12,
        "analog_latency_us": stats.analog_time * 1e6,
        "analog_energy_nj": stats.analog_energy * 1e9,
    }
    lines = [
        f"conv program      : {kernels} kernels {kernel_size}x{kernel_size} "
        f"on {rows} x {columns} tiles (flush policy "
        f"{session.flush_policy.describe()})",
        f"images            : {summary['images']} "
        f"({summary['patches']} im2col patches)",
        f"wall-clock        : {elapsed * 1e3:.1f} ms "
        f"({summary['images_per_s']:,.0f} images/s, "
        f"{summary['patches_per_s']:,.0f} patches/s)",
        f"program cache     : {summary['cache_hits']} hits / "
        f"{summary['cache_misses']} misses "
        f"({summary['cache_hit_rate']:.0%} hit rate)",
        f"weight energy     : {summary['weight_energy_spent_pj']:.1f} pJ spent, "
        f"{summary['weight_energy_saved_pj']:.1f} pJ saved by caching",
        f"analog latency    : {summary['analog_latency_us']:.3f} us modelled "
        f"({summary['analog_energy_nj']:.2f} nJ)",
    ]
    print_fn("\n".join(lines))
    return summary
