"""repro — reproduction of the DAC'25 mixed-signal photonic SRAM tensor
core with 1-hot electro-optic ADC (Kaiser et al., arXiv:2506.22705).

The package rebuilds the paper's full stack in Python:

* :mod:`repro.photonics` — silicon-photonics device substrate (rings,
  couplers, junctions, photodiodes, lasers, WDM, circuit evaluation).
* :mod:`repro.electronics` — drivers, TIAs, amplifiers, the ceiling
  ROM decoder, ADC metrics and power/energy ledgers.
* :mod:`repro.sim` — waveforms, mixed-signal transient engine, sweeps
  and Monte-Carlo variation analysis.
* :mod:`repro.core` — the contributions: pSRAM bitcell/array, WDM
  vector compute core, 1-hot eoADC, tensor core, performance model.
* :mod:`repro.baselines` — flash/TI ADC and electrical-IMC baselines,
  plus the published macros of Table I.
* :mod:`repro.ml` — neural-network inference through the tensor core.
* :mod:`repro.runtime` — batched/tiled/cached inference serving on top
  of the device models (compiled fast path, sharding, batching queue,
  weight-program cache, traffic bench).
* :mod:`repro.api` — the one front door: :class:`PhotonicSession`,
  declarative :class:`Model` graphs, futures-based auto-flush serving
  with pluggable :class:`FlushPolicy` and unified :class:`RunReport`;
  :class:`PhotonicCluster` scales it out over N core slots with routed
  schedulers (:class:`RoutingPolicy`), per-request QoS and replicated
  model endpoints rolled up in a :class:`ClusterReport`.
* :mod:`repro.elastic` — elastic fleets: content-addressed
  :class:`ProgramStore` persistence of compiled programs and
  calibration records for bit-for-bit warm starts, the
  :class:`Autoscaler` policy growing/parking cluster cores on pending
  depth, sheds and deadline misses, and per-slot :class:`CoreSpec`
  capabilities for heterogeneous fleets behind the cluster's
  capability-aware router (consistent-hash :class:`HashRing` affinity).
* :mod:`repro.health` — the calibration loop: :class:`DriftModel`
  processes aging a live core (:class:`DriftState`), probe-based
  :class:`HealthMonitor` checks against compile-time golden codes, and
  online recalibration driven by a :class:`HealthPolicy` (sessions
  re-trim in place; clusters drain the core, re-trim, restore).
* :mod:`repro.telemetry` — observability: modelled-clock Chrome
  tracing (:class:`TraceRecorder`), counters/gauges/latency-quantile
  histograms (:class:`MetricsRegistry`), cProfile hooks behind
  ``serve-bench --profile`` and the shared report export mixin.
* :mod:`repro.obs` — active observability on top of the telemetry
  streams: sliding-window :class:`AlertRule` evaluation on the
  modelled clock (multi-window SLO burn rates, latency-shift /
  cache-collapse / shed-spike / probe-error detectors), the
  :class:`FlightRecorder` ring dumping self-contained incident
  bundles, Prometheus text exposition and the single-file HTML
  dashboard behind ``serve-bench --dashboard`` / ``repro obs``.
* :mod:`repro.traffic` — modelled-time traffic simulation: seeded
  arrival processes (:class:`Poisson`, :class:`Diurnal`,
  :class:`Bursty`, :class:`Replay`), multi-tenant
  :class:`WorkloadMix` with :class:`TokenBucket` rate limits,
  per-request deadlines measured against an :class:`SLO`, the
  open-loop :class:`TrafficEngine` and the :func:`find_capacity`
  search behind ``serve-bench traffic``.
* :mod:`repro.analysis` — linearity fits and bench reporting.

Quickstart::

    import numpy as np
    from repro import Model, Dense, PhotonicSession

    session = PhotonicSession(grid=(4, 8))
    rng = np.random.default_rng(0)
    future = session.submit(rng.integers(0, 8, (4, 8)), rng.uniform(0, 1, 8))
    print(future.result(), future.codes)    # result() auto-flushes
"""

from .api import (
    AvgPool,
    ClusterReport,
    Conv2d,
    Dense,
    DeployedModel,
    Flatten,
    FlushPolicy,
    Future,
    HashRing,
    Model,
    PhotonicCluster,
    PhotonicSession,
    ReLU,
    ReplicatedModel,
    RoutingPolicy,
    RunReport,
)
from .config import Technology, default_technology
from .core import (
    EoAdc,
    PerformanceModel,
    PhotonicTensorCore,
    PsramArray,
    PsramBitcell,
    ShiftAddEoAdc,
    TimeInterleavedEoAdc,
    VectorComputeCore,
)
from .elastic import Autoscaler, CoreSpec, FleetSnapshot, ProgramStore
from .errors import (
    ClusterSaturatedError,
    DeadlineExceededError,
    PendingFlushError,
    ReproError,
)
from .health import (
    ComparatorOffsetAging,
    DriftModel,
    DriftState,
    HealthMonitor,
    HealthPolicy,
    HealthReport,
    LaserPowerDecay,
    Perturbation,
    ThermalDetuning,
    TiaGainDrift,
)
from .runtime import (
    BatchScheduler,
    CompiledCore,
    InferenceServer,
    TiledMatmul,
    WeightProgramCache,
)
from .telemetry import (
    Histogram,
    MetricsRegistry,
    ModelClock,
    Telemetry,
    TraceRecorder,
)
from .traffic import (
    SLO,
    Bursty,
    Diurnal,
    Poisson,
    Replay,
    Tenant,
    TokenBucket,
    TrafficEngine,
    WorkloadMix,
    find_capacity,
)

__version__ = "1.1.0"

__all__ = [
    "Autoscaler",
    "AvgPool",
    "BatchScheduler",
    "Bursty",
    "ClusterReport",
    "ClusterSaturatedError",
    "ComparatorOffsetAging",
    "CompiledCore",
    "Conv2d",
    "CoreSpec",
    "DeadlineExceededError",
    "default_technology",
    "Dense",
    "DeployedModel",
    "Diurnal",
    "DriftModel",
    "DriftState",
    "EoAdc",
    "Flatten",
    "FleetSnapshot",
    "FlushPolicy",
    "Future",
    "HashRing",
    "HealthMonitor",
    "HealthPolicy",
    "HealthReport",
    "Histogram",
    "InferenceServer",
    "LaserPowerDecay",
    "MetricsRegistry",
    "Model",
    "ModelClock",
    "PendingFlushError",
    "PerformanceModel",
    "Perturbation",
    "PhotonicCluster",
    "PhotonicSession",
    "PhotonicTensorCore",
    "Poisson",
    "ProgramStore",
    "PsramArray",
    "PsramBitcell",
    "ReLU",
    "Replay",
    "ReplicatedModel",
    "ReproError",
    "RoutingPolicy",
    "RunReport",
    "ShiftAddEoAdc",
    "SLO",
    "Technology",
    "Telemetry",
    "Tenant",
    "ThermalDetuning",
    "TiaGainDrift",
    "TiledMatmul",
    "TimeInterleavedEoAdc",
    "TokenBucket",
    "TraceRecorder",
    "TrafficEngine",
    "VectorComputeCore",
    "WeightProgramCache",
    "WorkloadMix",
    "find_capacity",
    "__version__",
]
