"""repro — reproduction of the DAC'25 mixed-signal photonic SRAM tensor
core with 1-hot electro-optic ADC (Kaiser et al., arXiv:2506.22705).

The package rebuilds the paper's full stack in Python:

* :mod:`repro.photonics` — silicon-photonics device substrate (rings,
  couplers, junctions, photodiodes, lasers, WDM, circuit evaluation).
* :mod:`repro.electronics` — drivers, TIAs, amplifiers, the ceiling
  ROM decoder, ADC metrics and power/energy ledgers.
* :mod:`repro.sim` — waveforms, mixed-signal transient engine, sweeps
  and Monte-Carlo variation analysis.
* :mod:`repro.core` — the contributions: pSRAM bitcell/array, WDM
  vector compute core, 1-hot eoADC, tensor core, performance model.
* :mod:`repro.baselines` — flash/TI ADC and electrical-IMC baselines,
  plus the published macros of Table I.
* :mod:`repro.ml` — neural-network inference through the tensor core.
* :mod:`repro.runtime` — batched/tiled/cached inference serving on top
  of the device models (compiled fast path, sharding, batching queue,
  weight-program cache, traffic bench).
* :mod:`repro.analysis` — linearity fits and bench reporting.

Quickstart::

    import numpy as np
    from repro import PhotonicTensorCore

    core = PhotonicTensorCore(rows=4, columns=8)
    core.load_weight_matrix(np.random.default_rng(0).integers(0, 8, (4, 8)))
    result = core.matvec(np.random.default_rng(1).uniform(0, 1, 8))
    print(result.codes, result.estimates)
"""

from .config import Technology, default_technology
from .core import (
    EoAdc,
    PerformanceModel,
    PhotonicTensorCore,
    PsramArray,
    PsramBitcell,
    ShiftAddEoAdc,
    TimeInterleavedEoAdc,
    VectorComputeCore,
)
from .errors import ReproError
from .runtime import (
    BatchScheduler,
    CompiledCore,
    InferenceServer,
    TiledMatmul,
    WeightProgramCache,
)

__version__ = "1.0.0"

__all__ = [
    "BatchScheduler",
    "CompiledCore",
    "default_technology",
    "EoAdc",
    "InferenceServer",
    "PerformanceModel",
    "PhotonicTensorCore",
    "PsramArray",
    "PsramBitcell",
    "ReproError",
    "ShiftAddEoAdc",
    "Technology",
    "TiledMatmul",
    "TimeInterleavedEoAdc",
    "VectorComputeCore",
    "WeightProgramCache",
    "__version__",
]
