"""ADC characterization: transfer curves, DNL, INL, missing codes, SQNR.

These are the analyses behind the paper's Fig. 10 (transfer function and
differential nonlinearity with no missing codes).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError


def transfer_function(
    converter: Callable[[float], int],
    v_min: float,
    v_max: float,
    points: int = 2001,
) -> tuple[np.ndarray, np.ndarray]:
    """Sweep ``converter`` over [v_min, v_max]; returns (voltages, codes)."""
    if points < 2:
        raise ConfigurationError(f"need at least 2 sweep points, got {points}")
    if v_max <= v_min:
        raise ConfigurationError("sweep range must be increasing")
    voltages = np.linspace(v_min, v_max, points)
    codes = np.array([converter(float(v)) for v in voltages], dtype=int)
    return voltages, codes


def code_transitions(voltages: np.ndarray, codes: np.ndarray) -> dict[int, float]:
    """Input voltages where the output code first reaches each value.

    Returns {code: transition voltage}; the transition to code k is the
    midpoint between the last sample of k-1 and the first sample of k.
    """
    voltages = np.asarray(voltages, dtype=float)
    codes = np.asarray(codes, dtype=int)
    if voltages.shape != codes.shape:
        raise ConfigurationError("voltages and codes must have matching shapes")
    transitions: dict[int, float] = {}
    for index in range(1, len(codes)):
        if codes[index] != codes[index - 1]:
            midpoint = 0.5 * (voltages[index] + voltages[index - 1])
            transitions.setdefault(int(codes[index]), midpoint)
    return transitions


def differential_nonlinearity(
    transitions: dict[int, float], lsb: float, levels: int
) -> np.ndarray:
    """DNL [LSB] per code from a transition map.

    DNL[k] = (T[k+1] - T[k]) / LSB - 1 for codes 1 .. levels-2 (the
    first and last bins are half-open and carry no DNL by convention);
    codes with a missing transition get DNL = -1 (missing code).
    """
    if lsb <= 0.0:
        raise ConfigurationError(f"LSB must be positive, got {lsb}")
    dnl = np.zeros(levels, dtype=float)
    for code in range(1, levels - 1):
        lower = transitions.get(code)
        upper = transitions.get(code + 1)
        if lower is None or upper is None:
            dnl[code] = -1.0
        else:
            dnl[code] = (upper - lower) / lsb - 1.0
    return dnl


def integral_nonlinearity(dnl: np.ndarray) -> np.ndarray:
    """INL [LSB] as the running sum of the DNL."""
    return np.cumsum(np.asarray(dnl, dtype=float))


def missing_codes(codes: Sequence[int], levels: int) -> list[int]:
    """Codes never produced during a full-scale ramp."""
    present = set(int(code) for code in codes)
    return [code for code in range(levels) if code not in present]


def is_monotonic(codes: Sequence[int]) -> bool:
    """True when the code sequence never decreases (ramp input)."""
    codes = np.asarray(codes, dtype=int)
    return bool(np.all(np.diff(codes) >= 0))


def sqnr_from_ramp(
    voltages: np.ndarray,
    codes: np.ndarray,
    lsb: float,
    v_min: float = 0.0,
) -> float:
    """Signal-to-quantization-noise ratio [dB] over a full-scale ramp.

    Reconstructs each code at its bin center and compares against the
    analog ramp; an ideal p-bit converter on a uniform ramp approaches
    the 6.02*p + 1.76 dB bound (with the sine/ramp crest-factor
    difference of ~1.76 dB folded in as is conventional for ramp tests).
    """
    voltages = np.asarray(voltages, dtype=float)
    codes = np.asarray(codes, dtype=int)
    reconstructed = v_min + (codes + 0.5) * lsb
    error = voltages - reconstructed
    noise_power = float(np.mean(error**2))
    if noise_power == 0.0:
        return float("inf")
    signal_power = float(np.mean((voltages - np.mean(voltages)) ** 2))
    return 10.0 * np.log10(signal_power / noise_power)


def effective_number_of_bits(sqnr_db: float) -> float:
    """ENOB from an SQNR measurement: (SQNR - 1.76) / 6.02."""
    return (sqnr_db - 1.76) / 6.02
