"""Voltage amplifiers: the cascaded gain stage after each eoADC TIA.

The paper amplifies the thresholding node's small swing to rail-to-rail
(B_p) before the ROM decoder; :class:`AmplifierChain` models that
cascade with an aggregate gain, a swing clamp and a power draw.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError


class VoltageAmplifier:
    """A single rail-clamped linear gain stage."""

    def __init__(
        self,
        gain: float,
        supply_voltage: float,
        bandwidth: float = 20e9,
        power: float = 0.0,
        label: str = "",
    ) -> None:
        if gain <= 0.0:
            raise ConfigurationError(f"gain must be positive, got {gain}")
        if supply_voltage <= 0.0:
            raise ConfigurationError(f"supply voltage must be positive, got {supply_voltage}")
        if bandwidth <= 0.0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
        if power < 0.0:
            raise ConfigurationError(f"power must be non-negative, got {power}")
        self.gain = gain
        self.supply_voltage = supply_voltage
        self.bandwidth = bandwidth
        self.power = power
        self.label = label

    def amplify(self, voltage: float, reference: float = 0.0) -> float:
        """Amplify ``voltage`` about ``reference``, clamped to the rails."""
        output = reference + self.gain * (voltage - reference)
        return min(max(output, 0.0), self.supply_voltage)

    @property
    def time_constant(self) -> float:
        return 1.0 / (2.0 * math.pi * self.bandwidth)


class AmplifierChain:
    """A cascade of identical amplifier stages."""

    def __init__(self, stages: list[VoltageAmplifier]) -> None:
        if not stages:
            raise ConfigurationError("amplifier chain needs at least one stage")
        self.stages = list(stages)

    @classmethod
    def eoadc_chain(
        cls,
        supply_voltage: float = 1.8,
        stage_gain: float = 8.0,
        stage_count: int = 2,
        total_power: float = 0.30e-3,
    ) -> "AmplifierChain":
        """The per-channel eoADC cascade (amplifier share of the
        calibrated 0.80 mW per-channel TIA+amplifier budget)."""
        stage_power = total_power / stage_count
        stages = [
            VoltageAmplifier(
                gain=stage_gain,
                supply_voltage=supply_voltage,
                power=stage_power,
                label=f"eoADC amp stage {index}",
            )
            for index in range(stage_count)
        ]
        return cls(stages)

    @property
    def total_gain(self) -> float:
        gain = 1.0
        for stage in self.stages:
            gain *= stage.gain
        return gain

    @property
    def power(self) -> float:
        return sum(stage.power for stage in self.stages)

    @property
    def time_constant(self) -> float:
        """Aggregate single-pole approximation of the cascade."""
        return sum(stage.time_constant for stage in self.stages)

    def amplify(self, voltage: float, reference: float = 0.0) -> float:
        """Run ``voltage`` through every stage about ``reference``."""
        output = voltage
        for stage in self.stages:
            output = stage.amplify(output, reference)
        return output
