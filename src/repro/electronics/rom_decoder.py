"""Ceiling-priority ROM decoder of the eoADC.

The decoder turns the (ideally 1-hot) channel activations B_1..B_{2^p}
into a p-bit binary code.  When the analog input sits at the boundary
between two adjacent code bins, *two* neighbouring channels fire (paper
Fig. 9: V_IN = 2.0 V activates B4 and B5); the decoder implements a
ceiling function between adjacent channels, resolving to the upper code
and avoiding the static decoder current a simultaneous two-code drive
would cause.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ConfigurationError, ConversionError


def code_to_bits(code: int, bits: int) -> tuple[int, ...]:
    """Binary expansion of ``code``, MSB first.

    >>> code_to_bits(4, 3)
    (1, 0, 0)
    """
    if bits < 1:
        raise ConfigurationError(f"need at least 1 bit, got {bits}")
    if not 0 <= code < 2**bits:
        raise ConfigurationError(f"code {code} does not fit in {bits} bits")
    return tuple((code >> shift) & 1 for shift in range(bits - 1, -1, -1))


class CeilingPriorityRomDecoder:
    """Priority decoder mapping channel activations to a binary code.

    Channel k (0-based) active alone yields code k; a contiguous run of
    active channels yields the highest index (the ceiling).  Activations
    that are not contiguous indicate a malfunction (two distant rings
    resonant at once) and raise :class:`ConversionError` unless
    ``strict`` is disabled, in which case the highest active channel
    still wins.
    """

    def __init__(self, bits: int, strict: bool = True, power: float = 0.0) -> None:
        if bits < 1:
            raise ConfigurationError(f"decoder needs at least 1 bit, got {bits}")
        self.bits = bits
        self.strict = strict
        #: Static decoder + clocking power [W] (for the ledger).
        self.power = power

    @property
    def channels(self) -> int:
        return 2**self.bits

    def decode(self, activations: Sequence[bool]) -> int:
        """Binary code for a channel-activation vector.

        Raises :class:`ConversionError` when nothing fired (the input
        fell in no ring's window — with the calibrated design this only
        happens outside the full-scale range) or, in strict mode, when
        non-adjacent channels fired simultaneously.
        """
        if len(activations) != self.channels:
            raise ConfigurationError(
                f"expected {self.channels} activations, got {len(activations)}"
            )
        active = [index for index, fired in enumerate(activations) if fired]
        if not active:
            raise ConversionError("no thresholding block fired; input outside every window")
        if self.strict:
            contiguous = active[-1] - active[0] == len(active) - 1
            if not contiguous:
                raise ConversionError(
                    f"non-adjacent channels fired simultaneously: {active}"
                )
        return active[-1]

    def decode_bits(self, activations: Sequence[bool]) -> tuple[int, ...]:
        """Binary code as an MSB-first bit tuple."""
        return code_to_bits(self.decode(activations), self.bits)

    def decode_or_hold(self, activations: Sequence[bool], held_code: int) -> int:
        """Decode, holding the previous code when nothing fired.

        Transient conversions sample mid-settling where, for a step
        input, no ring may have reached its window yet; real decoders
        simply keep their output latched.
        """
        try:
            return self.decode(activations)
        except ConversionError:
            return held_code
