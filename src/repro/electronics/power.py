"""Power and energy ledgers.

Every system-level number in the paper (0.5 pJ/write, 2.32 pJ/conv,
3.02 TOPS/W) is a sum of named contributions; the ledgers make each
contribution explicit, convert optical powers to wall-plug draw, and
render the breakdown tables printed by the benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import WALL_PLUG_EFFICIENCY
from ..errors import ConfigurationError


@dataclass(frozen=True)
class LedgerEntry:
    """One named contribution."""

    name: str
    value: float
    category: str
    raw_value: float

    def __post_init__(self) -> None:
        if self.value < 0.0 or self.raw_value < 0.0:
            raise ConfigurationError(f"ledger entry {self.name!r} must be non-negative")


class _Ledger:
    """Shared bookkeeping for power [W] or energy [J] contributions."""

    unit = ""

    def __init__(self, wall_plug_efficiency: float = WALL_PLUG_EFFICIENCY) -> None:
        if not 0.0 < wall_plug_efficiency <= 1.0:
            raise ConfigurationError(
                f"wall-plug efficiency must be in (0, 1], got {wall_plug_efficiency}"
            )
        self.wall_plug_efficiency = wall_plug_efficiency
        self._entries: list[LedgerEntry] = []

    def add_electrical(self, name: str, value: float) -> None:
        """Add an electrical contribution (already wall-referred)."""
        self._entries.append(LedgerEntry(name, value, "electrical", value))

    def add_optical(self, name: str, value: float) -> None:
        """Add an optical contribution; converted to wall-plug draw."""
        self._entries.append(
            LedgerEntry(name, value / self.wall_plug_efficiency, "optical", value)
        )

    @property
    def entries(self) -> list[LedgerEntry]:
        return list(self._entries)

    @property
    def total(self) -> float:
        """Total wall-plug value."""
        return sum(entry.value for entry in self._entries)

    def total_for(self, category: str) -> float:
        """Total wall-plug value of one category."""
        return sum(entry.value for entry in self._entries if entry.category == category)

    def breakdown(self) -> dict[str, float]:
        """{name: wall-plug value} in insertion order."""
        return {entry.name: entry.value for entry in self._entries}

    def report(self, scale: float = 1.0, unit: str | None = None) -> str:
        """Human-readable table; ``scale`` converts to display units."""
        unit = self.unit if unit is None else unit
        width = max((len(entry.name) for entry in self._entries), default=10)
        lines = [
            f"{entry.name:<{width}}  {entry.value * scale:12.4f} {unit}  [{entry.category}]"
            for entry in self._entries
        ]
        lines.append(f"{'TOTAL':<{width}}  {self.total * scale:12.4f} {unit}")
        return "\n".join(lines)


class PowerLedger(_Ledger):
    """Named power contributions [W] with optical wall-plug conversion."""

    unit = "W"

    def energy(self, duration: float) -> float:
        """Total wall-plug energy [J] over ``duration`` [s]."""
        if duration < 0.0:
            raise ConfigurationError(f"duration must be non-negative, got {duration}")
        return self.total * duration


class EnergyLedger(_Ledger):
    """Named energy contributions [J] with optical wall-plug conversion."""

    unit = "J"
