"""Electrical substrate: nodes, drivers, amplifiers, decoder, metrics.

Behavioural models of the electrical circuits the paper attaches to the
photonics: storage nodes, inverter drivers, the TIA and cascaded
voltage amplifier of the eoADC read chain, the ceiling-priority ROM
decoder, ADC characterization metrics and the power/energy ledger.
"""

from .adc_metrics import (
    code_transitions,
    differential_nonlinearity,
    integral_nonlinearity,
    missing_codes,
    sqnr_from_ramp,
    transfer_function,
)
from .amplifier import AmplifierChain, VoltageAmplifier
from .comparator import OptoElectricThresholder
from .driver import InverterDriver
from .elements import StorageNode
from .power import EnergyLedger, PowerLedger
from .rom_decoder import CeilingPriorityRomDecoder, code_to_bits
from .tia import Tia

__all__ = [
    "AmplifierChain",
    "CeilingPriorityRomDecoder",
    "code_to_bits",
    "code_transitions",
    "differential_nonlinearity",
    "EnergyLedger",
    "integral_nonlinearity",
    "InverterDriver",
    "missing_codes",
    "OptoElectricThresholder",
    "PowerLedger",
    "sqnr_from_ramp",
    "StorageNode",
    "Tia",
    "transfer_function",
    "VoltageAmplifier",
]
