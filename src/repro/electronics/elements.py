"""Basic electrical elements: the rail-clamped storage node.

The pSRAM storage nodes Q/QB and the eoADC thresholding midpoints Q_p
are capacitive nodes driven by photodiode currents and clamped by the
supply rails (the photodiodes cannot push a node beyond VDD or below
ground).  :class:`StorageNode` integrates charge with that clamping.
"""

from __future__ import annotations

from ..errors import ConfigurationError, SimulationError


class StorageNode:
    """A capacitive circuit node clamped between ground and VDD."""

    def __init__(
        self,
        capacitance: float,
        vdd: float,
        initial_voltage: float = 0.0,
        label: str = "",
    ) -> None:
        if capacitance <= 0.0:
            raise ConfigurationError(f"node capacitance must be positive, got {capacitance}")
        if vdd <= 0.0:
            raise ConfigurationError(f"VDD must be positive, got {vdd}")
        if not 0.0 <= initial_voltage <= vdd:
            raise ConfigurationError(
                f"initial voltage {initial_voltage} outside the rails [0, {vdd}]"
            )
        self.capacitance = capacitance
        self.vdd = vdd
        self._voltage = initial_voltage
        self.label = label

    @property
    def voltage(self) -> float:
        """Present node voltage [V]."""
        return self._voltage

    @voltage.setter
    def voltage(self, value: float) -> None:
        if not 0.0 <= value <= self.vdd:
            raise ConfigurationError(f"voltage {value} outside the rails [0, {self.vdd}]")
        self._voltage = value

    def integrate(self, net_current: float, dt: float) -> float:
        """Advance the node by ``dt`` [s] under ``net_current`` [A].

        Positive current charges the node toward VDD.  The result is
        clamped to the rails, modelling the photodiodes' inability to
        drive the node past the supplies.  Returns the new voltage.
        """
        if dt <= 0.0:
            raise SimulationError(f"time step must be positive, got {dt}")
        self._voltage += net_current * dt / self.capacitance
        self._voltage = min(max(self._voltage, 0.0), self.vdd)
        return self._voltage

    @property
    def logic_state(self) -> bool:
        """Digital reading of the node (True above VDD/2)."""
        return self._voltage > self.vdd / 2.0

    def stored_energy(self) -> float:
        """Energy held on the capacitor [J]."""
        return 0.5 * self.capacitance * self._voltage**2
