"""Inverter-based drivers D1/D2 of the pSRAM bitcell.

A driver senses a storage node and drives the paired ring's junction
rail-to-rail with a first-order delay, closing the cross-coupled
electro-optic feedback loop.  An optional logical inversion lets the
same model implement buffering (D1/D2 in the paper drive with the node
polarity) or inverting stages.
"""

from __future__ import annotations

from ..errors import ConfigurationError, SimulationError


class InverterDriver:
    """Rail-to-rail digital driver with a single-pole response."""

    def __init__(
        self,
        vdd: float,
        time_constant: float,
        inverting: bool = False,
        load_capacitance: float = 0.0,
        initial_output: float = 0.0,
        label: str = "",
    ) -> None:
        if vdd <= 0.0:
            raise ConfigurationError(f"VDD must be positive, got {vdd}")
        if time_constant <= 0.0:
            raise ConfigurationError(f"time constant must be positive, got {time_constant}")
        if load_capacitance < 0.0:
            raise ConfigurationError("load capacitance must be non-negative")
        self.vdd = vdd
        self.time_constant = time_constant
        self.inverting = inverting
        self.load_capacitance = load_capacitance
        self.label = label
        self._output = initial_output
        #: Total CV^2-type switching energy dissipated so far [J].
        self.switching_energy = 0.0

    @property
    def output(self) -> float:
        """Present driver output voltage [V]."""
        return self._output

    def target(self, input_voltage: float) -> float:
        """Rail the driver slews toward for a given input voltage."""
        high = input_voltage > self.vdd / 2.0
        if self.inverting:
            high = not high
        return self.vdd if high else 0.0

    def step(self, input_voltage: float, dt: float) -> float:
        """Advance the output by ``dt`` [s]; returns the new output."""
        if dt <= 0.0:
            raise SimulationError(f"time step must be positive, got {dt}")
        target = self.target(input_voltage)
        previous = self._output
        alpha = 1.0 - pow(2.718281828459045, -dt / self.time_constant)
        self._output += (target - self._output) * alpha
        delta = abs(self._output - previous)
        self.switching_energy += self.load_capacitance * delta * self.vdd
        return self._output

    def settle(self, input_voltage: float) -> float:
        """Snap the output to its final value (static analyses)."""
        self._output = self.target(input_voltage)
        return self._output
