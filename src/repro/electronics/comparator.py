"""The opto-electric thresholding block of the eoADC.

Each of the 2^p channels pairs a ring's thru port with a reference
power on a balanced photodiode stack whose midpoint Q_p charges toward
VDD (ring off-resonance, upper diode wins) or discharges toward ground
(ring on-resonance, reference diode wins).  An inverter-based TIA and a
cascaded amplifier regenerate the midpoint into the rail-to-rail
digital activation B_p.
"""

from __future__ import annotations

from ..config import PhotodiodeSpec
from ..errors import ConfigurationError
from ..photonics.photodiode import BalancedPhotodiodePair, Photodiode
from .amplifier import AmplifierChain
from .elements import StorageNode
from .tia import Tia


class OptoElectricThresholder:
    """Balanced-photodiode comparator with a TIA/amplifier read chain."""

    def __init__(
        self,
        reference_power: float,
        supply_voltage: float = 1.8,
        node_capacitance: float = 5e-15,
        photodiode_spec: PhotodiodeSpec | None = None,
        tia: Tia | None = None,
        amplifier: AmplifierChain | None = None,
        hysteresis_power: float = 0.0,
        label: str = "",
    ) -> None:
        if reference_power <= 0.0:
            raise ConfigurationError(f"reference power must be positive, got {reference_power}")
        if hysteresis_power < 0.0:
            raise ConfigurationError("hysteresis power must be non-negative")
        self.reference_power = reference_power
        self.supply_voltage = supply_voltage
        self.pair = BalancedPhotodiodePair(
            upper=Photodiode(photodiode_spec, label=f"{label}.upper"),
            lower=Photodiode(photodiode_spec, label=f"{label}.lower"),
        )
        self.node = StorageNode(
            capacitance=node_capacitance,
            vdd=supply_voltage,
            initial_voltage=supply_voltage,
            label=f"{label}.Qp",
        )
        self.tia = tia if tia is not None else Tia.inverter_based_eoadc(supply_voltage)
        self.amplifier = (
            amplifier if amplifier is not None else AmplifierChain.eoadc_chain(supply_voltage)
        )
        self.hysteresis_power = hysteresis_power
        self.label = label

    # -- static (settled) behaviour ---------------------------------------
    def is_active(self, thru_power: float) -> bool:
        """Settled activation: True when the ring notch drops the thru
        power below the reference and Q_p discharges toward ground."""
        return thru_power < self.reference_power - self.hysteresis_power

    def activation_voltage(self, thru_power: float) -> float:
        """Settled rail-to-rail B_p voltage for a static thru power."""
        active = self.is_active(thru_power)
        return self.supply_voltage if active else 0.0

    # -- transient behaviour ------------------------------------------------
    def net_node_current(self, thru_power: float) -> float:
        """Current charging the midpoint Q_p [A] (positive = toward VDD)."""
        return self.pair.net_current(thru_power, self.reference_power)

    def tia_rail_target(self, thru_power: float) -> float:
        """Rail the TIA + amplifier chain regenerates toward [V].

        The inverter TIA holds Q_p near its trip point and senses the
        balanced-pair current directly, so the activation (B_p = VDD)
        follows the current *sign* at the read chain's bandwidth rather
        than waiting for the node to slew across the rails — this is
        what buys the 8 GS/s conversion rate.
        """
        active = self.net_node_current(thru_power) < 0.0
        return self.supply_voltage if active else 0.0

    def step(self, thru_power: float, dt: float) -> float:
        """Advance the midpoint node one step (no-TIA signal path).

        Without the TIA the balanced pair must charge/discharge Q_p and
        the decoder's input capacitance across the rails with its own
        photocurrent; the hundreds-of-ps slew this takes is exactly why
        the TIA-less eoADC runs at 416.7 MS/s.  Returns the new Q_p.
        """
        return self.node.integrate(self.net_node_current(thru_power), dt)

    def node_rail_output(self) -> float:
        """Active-high B_p read directly off the midpoint (no-TIA path).

        A discharged Q_p means the reference diode won (channel active),
        which the decoder input senses inverted.
        """
        return self.supply_voltage - self.node.voltage

    @property
    def read_chain_power(self) -> float:
        """TIA + amplifier power of this channel [W]."""
        return self.tia.power + self.amplifier.power

    @property
    def read_chain_time_constant(self) -> float:
        """Aggregate settling time constant of the read chain [s]."""
        return self.tia.time_constant + self.amplifier.time_constant
