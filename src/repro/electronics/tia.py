"""Transimpedance amplifiers.

Two TIA classes appear in the paper: the inverter-based high-speed TIA
inside each eoADC thresholding chain (after ref. [46]) and the 28 nm
row TIA (ref. [52]) that converts the compute core's summed photodiode
current for the ADC.  Both are behavioural: a transimpedance gain, an
output swing limit, a single-pole bandwidth and a power draw.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError


class Tia:
    """Behavioural transimpedance amplifier."""

    def __init__(
        self,
        transimpedance: float,
        bandwidth: float,
        supply_voltage: float,
        power: float,
        label: str = "",
    ) -> None:
        if transimpedance <= 0.0:
            raise ConfigurationError(f"transimpedance must be positive, got {transimpedance}")
        if bandwidth <= 0.0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
        if supply_voltage <= 0.0:
            raise ConfigurationError(f"supply voltage must be positive, got {supply_voltage}")
        if power < 0.0:
            raise ConfigurationError(f"power must be non-negative, got {power}")
        self.transimpedance = transimpedance
        self.bandwidth = bandwidth
        self.supply_voltage = supply_voltage
        self.power = power
        self.label = label

    @classmethod
    def inverter_based_eoadc(cls, supply_voltage: float = 1.8, power: float = 0.4975e-3) -> "Tia":
        """The per-channel eoADC TIA (ref. [46]-style inverter TIA).

        Power is the TIA share of the calibrated 0.80 mW per-channel
        TIA+amplifier budget (DESIGN.md section 2).
        """
        return cls(
            transimpedance=20e3,
            bandwidth=12e9,
            supply_voltage=supply_voltage,
            power=power,
            label="eoADC inverter TIA",
        )

    @classmethod
    def row_tia_28nm(cls, supply_voltage: float = 1.8, power: float = 42e-3) -> "Tia":
        """The compute-row TIA after ref. [52] (42 GHz class, 28 nm)."""
        return cls(
            transimpedance=3e3,
            bandwidth=42e9,
            supply_voltage=supply_voltage,
            power=power,
            label="28nm row TIA",
        )

    def output_voltage(self, current: float) -> float:
        """Static output for an input ``current`` [A], swing-limited."""
        voltage = self.transimpedance * current
        return min(max(voltage, 0.0), self.supply_voltage)

    @property
    def time_constant(self) -> float:
        """Single-pole response time constant [s]."""
        return 1.0 / (2.0 * math.pi * self.bandwidth)

    def full_scale_current(self) -> float:
        """Input current that saturates the output swing [A]."""
        return self.supply_voltage / self.transimpedance

    def energy(self, duration: float) -> float:
        """Energy consumed over ``duration`` [s]."""
        if duration < 0.0:
            raise ConfigurationError(f"duration must be non-negative, got {duration}")
        return self.power * duration
