"""The scalable 2D mixed-signal photonic tensor core (paper Section III).

Each of the n rows holds a 1 x m vector-multiplication core (tiled from
4-wavelength macros), a row TIA mapping the summed photocurrent onto
the eoADC full scale, and one eoADC digitizing the row's dot product.
Matrix-vector multiplication runs all rows on the shared input vector
in one ADC sample period; matrix-matrix multiplication streams input
columns.

The digital outputs are p-bit codes; :meth:`matvec` also returns the
dequantized dot-product estimates so callers can chain layers (see
``repro.ml``).  Weight updates stream through the pSRAM arrays at the
20 GHz rate with energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Technology, default_technology
from ..errors import ConfigurationError
from ..health.drift import apply_read_out
from .compute_core import VectorComputeCore
from .eoadc import EoAdc
from .performance import PerformanceModel


@dataclass
class MatvecResult:
    """Digital result of one matrix-vector operation."""

    codes: np.ndarray
    estimates: np.ndarray
    currents: np.ndarray

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=int)
        self.estimates = np.asarray(self.estimates, dtype=float)
        self.currents = np.asarray(self.currents, dtype=float)


class PhotonicTensorCore:
    """An m-column x n-row photonic matrix multiplication engine."""

    def __init__(
        self,
        rows: int | None = None,
        columns: int | None = None,
        weight_bits: int | None = None,
        adc_bits: int | None = None,
        technology: Technology | None = None,
        label: str = "ptc",
    ) -> None:
        self.technology = technology if technology is not None else default_technology()
        tech = self.technology
        self.rows = tech.tensor.rows if rows is None else rows
        self.columns = tech.tensor.columns if columns is None else columns
        self.weight_bits = tech.tensor.weight_bits if weight_bits is None else weight_bits
        if self.rows < 1 or self.columns < 1:
            raise ConfigurationError("tensor core needs at least 1 row and 1 column")
        self.label = label

        self.row_cores = [
            VectorComputeCore(
                vector_length=self.columns,
                weight_bits=self.weight_bits,
                technology=tech,
                label=f"{label}.row{row}",
            )
            for row in range(self.rows)
        ]
        self.row_adcs = [
            EoAdc(tech, bits=adc_bits, label=f"{label}.adc{row}")
            for row in range(self.rows)
        ]
        self._weight_matrix = np.zeros((self.rows, self.columns), dtype=int)
        # Row TIA gain calibrated so the full-scale dot product lands at
        # the eoADC full scale.
        self._full_scale_current = self.row_cores[0].full_scale_current()
        self._tia_gain = (
            self.row_adcs[0].spec.full_scale_voltage / self._full_scale_current
        )
        #: Cross-compiler memo of bisected ADC code ladders (see
        #: :func:`repro.runtime.engine._row_ladders`): every runtime
        #: engine derived from this core — compiled programs, tiled
        #: grids, the dense/conv layer fast paths — shares it, so each
        #: distinct ADC trim is bisected once per core, not once per
        #: compile.
        self.runtime_ladder_cache: list = []
        #: Live degradation state of this core (a
        #: :class:`repro.health.DriftState`, attached by
        #: :class:`~repro.api.PhotonicSession` when drift is modelled;
        #: None = ideal ageless hardware).  The device loop and every
        #: engine compiled from this core read it at evaluation time.
        self.drift_state = None

    # -- weights -------------------------------------------------------------
    @property
    def max_weight(self) -> int:
        return 2**self.weight_bits - 1

    @property
    def weight_matrix(self) -> np.ndarray:
        return self._weight_matrix.copy()

    def load_weight_matrix(self, matrix) -> None:
        """Stream a weight matrix into the pSRAM arrays (20 GHz update)."""
        matrix = np.asarray(matrix, dtype=int)
        if matrix.shape != (self.rows, self.columns):
            raise ConfigurationError(
                f"weight matrix must be {self.rows}x{self.columns}, got {matrix.shape}"
            )
        for row, core in enumerate(self.row_cores):
            core.load_weights(matrix[row])
        self._weight_matrix = matrix

    def weight_update_time(self) -> float:
        """Time [s] to stream one full weight matrix at the update rate.

        Rows update in parallel (each row has its own WBL/WBLB pairs);
        within a row, words stream one 20 GHz cycle each.
        """
        return self.columns / self.technology.psram.update_rate

    def weight_update_energy(self) -> float:
        """Wall-plug energy [J] of all weight switches so far."""
        return sum(core.weight_update_energy() for core in self.row_cores)

    # -- calibration constants (used by the runtime compiler) ----------------
    @property
    def tia_gain(self) -> float:
        """Native row-TIA transimpedance [V/A] mapping the full-scale
        photocurrent onto the eoADC full scale."""
        return self._tia_gain

    @property
    def full_scale_current(self) -> float:
        """Row photocurrent [A] with all inputs at 1, all weights max."""
        return self._full_scale_current

    def invalidate_ladders(self) -> None:
        """Drop every cached ADC code ladder of this core.

        The cross-compiler ladder memo (and each row ADC's own
        boundary memo) assumes the converters never change after
        construction.  Changing ADC parameters in place afterwards —
        re-trimming during recalibration, mutating ``trim_errors`` or
        ``spec`` for a variation study — leaves engines compiling
        against stale ladders; call this first so the next compile
        re-bisects.  Engines compiled *before* the call keep their
        detached snapshots: recompile them (the serving caches do this
        lazily after :meth:`repro.api.PhotonicSession.recalibrate`).
        """
        self.runtime_ladder_cache.clear()
        for adc in self.row_adcs:
            adc.invalidate_boundaries()

    # -- compute -------------------------------------------------------------
    def _validated_vector(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape != (self.columns,):
            raise ConfigurationError(
                f"input must have shape ({self.columns},), got {x.shape}"
            )
        if np.any(x < 0.0) or np.any(x > 1.0):
            raise ConfigurationError(
                "analog inputs must lie in [0, 1], got range "
                f"[{x.min():.6g}, {x.max():.6g}]"
            )
        return x

    def matvec(self, x, gain: float = 1.0) -> MatvecResult:
        """One matrix-vector multiplication through the photonic path.

        ``gain`` models the programmable-gain setting of the row TIAs:
        workloads whose dot products use only part of the ADC range set
        gain > 1 so the codes resolve the active range, and the
        estimates are scaled back down accordingly (standard IMC ADC
        range calibration).
        """
        if gain <= 0.0:
            raise ConfigurationError(f"TIA gain must be positive, got {gain}")
        x = self._validated_vector(x)
        currents = np.array([core.compute(x) for core in self.row_cores])
        # The live hardware suffers whatever drift survives the current
        # trims; the read-out arithmetic is the same apply_read_out the
        # compiled fast path evaluates, so both agree code-for-code at
        # every age.
        residual = None
        if self.drift_state is not None and self.drift_state.active:
            residual = self.drift_state.residual()
        currents, voltages = apply_read_out(
            residual,
            currents,
            gain * self._tia_gain,
            self.row_adcs[0].spec.full_scale_voltage,
        )
        codes = np.array(
            [adc.convert(float(v)) for adc, v in zip(self.row_adcs, voltages)]
        )
        estimates = self.dequantize_codes(codes) / gain
        return MatvecResult(codes=codes, estimates=estimates, currents=currents)

    def matmul(self, matrix, gain: float = 1.0) -> np.ndarray:
        """Matrix-matrix product: photonic W @ X for X of shape
        (columns, batch).  Returns dequantized estimates
        (rows, batch).  ``gain`` is the row-TIA range setting applied to
        every column, exactly as in :meth:`matvec`."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != self.columns:
            raise ConfigurationError(
                f"input matrix must be ({self.columns}, batch), got shape {matrix.shape}"
            )
        outputs = [
            self.matvec(matrix[:, col], gain=gain).estimates
            for col in range(matrix.shape[1])
        ]
        return np.stack(outputs, axis=1)

    def dequantize_codes(self, codes) -> np.ndarray:
        """Map p-bit codes back to dot-product units (sum_i x_i * w_i)."""
        codes = np.asarray(codes, dtype=float)
        adc = self.row_adcs[0]
        voltage = (codes + 0.5) * adc.lsb
        current = voltage / self._tia_gain
        unit = self._full_scale_current / (
            self.columns * self.max_weight / 2.0**self.weight_bits
        )
        return current / unit * 2.0**self.weight_bits

    def ideal_matvec(self, x) -> np.ndarray:
        """Infinite-precision reference: W @ x."""
        x = self._validated_vector(x)
        return self._weight_matrix @ x

    def quantization_limited_matvec(self, x) -> np.ndarray:
        """Reference including only ADC quantization (no device effects).

        Separates photonic non-ideality from the p-bit output
        quantization that any implementation of this architecture pays.
        """
        x = self._validated_vector(x)
        ideal = self._weight_matrix @ x
        adc = self.row_adcs[0]
        full_scale_dot = self.columns * self.max_weight
        codes = np.clip(
            (ideal / full_scale_dot * adc.levels).astype(int), 0, adc.levels - 1
        )
        return (codes + 0.5) / adc.levels * full_scale_dot

    def compile(self):
        """Snapshot the loaded weights into a vectorized inference engine.

        Returns a :class:`repro.runtime.CompiledCore` that evaluates
        whole input batches as dense numpy products, agreeing with this
        device loop code-for-code.  The snapshot is detached: reloading
        weights afterwards does not disturb it.
        """
        from ..runtime.engine import CompiledCore

        return CompiledCore(self, ladder_cache=self.runtime_ladder_cache)

    # -- system analysis -----------------------------------------------------
    def performance(self) -> PerformanceModel:
        """Throughput/efficiency model of this core (Section IV-D)."""
        return PerformanceModel(
            technology=self.technology,
            rows=self.rows,
            columns=self.columns,
            weight_bits=self.weight_bits,
        )
