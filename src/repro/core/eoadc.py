"""The 1-hot encoding electro-optic ADC (paper Section II-C, Figs. 8-10).

2^p identical high-Q all-pass rings share the input light (200 uW per
channel at 1310.5 nm).  Ring k's junction sees V_pn = V_REF,k - V_IN
with the reference ladder at the code-bin centers; only the ring whose
reference is nearest the input reaches resonance, dropping its thru
power below the 18 uW reference of its balanced-photodiode
thresholding block.  The activated block discharges its midpoint, the
inverter TIA + cascaded amplifier regenerate a rail-to-rail B_p, and
the ceiling-priority ROM decoder emits the binary code — resolving the
bin-edge case where two adjacent channels fire (Fig. 9's 2.0 V input).

Static conversion, the full transient co-simulation (ring photon
lifetime, thresholding-node slew, read-chain settling) and the paper's
extension paths (time interleaving, shift-and-add cascading) are all
implemented here.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..config import Technology, default_technology
from ..electronics.comparator import OptoElectricThresholder
from ..electronics.power import PowerLedger
from ..electronics.rom_decoder import CeilingPriorityRomDecoder
from ..errors import ConfigurationError, ConversionError
from ..photonics.mrr import AllPassMRR
from ..photonics.pn_junction import DepletionTuner
from ..sim.transient import FirstOrderLag, Recorder, TransientEngine


@dataclass
class ConversionRecord:
    """Result of a transient conversion run."""

    sample_times: list[float]
    codes: list[int]
    recorder: Recorder

    @property
    def final_code(self) -> int:
        return self.codes[-1]


class EoAdc:
    """The mixed-signal 1-hot electro-optic analog-to-digital converter."""

    def __init__(
        self,
        technology: Technology | None = None,
        bits: int | None = None,
        use_read_chain: bool = True,
        trim_errors=None,
        strict_decoder: bool = True,
        label: str = "eoadc",
    ) -> None:
        self.technology = technology if technology is not None else default_technology()
        tech = self.technology
        spec = tech.eoadc
        if bits is not None and bits != spec.bits:
            spec = dataclasses.replace(spec, bits=bits)
        self.spec = spec
        self.use_read_chain = use_read_chain
        self.label = label

        self.reference_voltages = np.asarray(spec.reference_voltages())
        if trim_errors is None:
            # The trim budget tracks the LSB: a converter designed for
            # finer codes is trimmed proportionally tighter, so the DNL
            # *texture* (in LSB) is comparable across precisions.  Pass
            # explicit trim_errors to study absolute-trim limits.
            sigma = spec.trim_sigma * (
                spec.lsb_voltage / self.technology.eoadc.lsb_voltage
            )
            rng = np.random.default_rng(spec.trim_seed)
            trim_errors = rng.normal(0.0, sigma, spec.levels)
        trim_errors = np.asarray(trim_errors, dtype=float)
        if trim_errors.shape != (spec.levels,):
            raise ConfigurationError(
                f"need {spec.levels} trim errors, got shape {trim_errors.shape}"
            )
        self.trim_errors = trim_errors

        ring_spec = tech.adc_ring_spec()
        self.rings = [
            AllPassMRR(
                ring_spec,
                design_wavelength=tech.wavelength,
                design_voltage=0.0,
                waveguide=tech.waveguide,
                coupler=tech.coupler,
                tuner=DepletionTuner(tech.depletion),
                thermal=tech.thermal,
                trim_error=float(trim_errors[k]),
                label=f"{label}.M{k + 1}",
            )
            for k in range(spec.levels)
        ]
        reference_power = self._design_reference_power()
        self.thresholders = [
            OptoElectricThresholder(
                reference_power=reference_power,
                supply_voltage=spec.supply_voltage,
                photodiode_spec=tech.photodiode,
                label=f"{label}.B{k + 1}",
            )
            for k in range(spec.levels)
        ]
        # Non-strict decoding emits the highest active channel even for
        # non-adjacent activations (a mistrimmed part producing garbage
        # codes rather than halting) — used by variation stress benches.
        self.decoder = CeilingPriorityRomDecoder(
            spec.bits, strict=strict_decoder, power=self._decoder_power()
        )
        self._code_boundaries: np.ndarray | None = None

    # -- design rules ----------------------------------------------------------
    def _design_reference_power(self) -> float:
        """Reference power setting the activation window to ~LSB/2.

        For the paper's 3-bit design this is its stated 18 uW; for other
        precisions the same window rule (thru power at a half-LSB
        detuning, averaged over both junction flanks) re-derives the
        reference so each ring covers exactly its own bin.
        """
        spec = self.spec
        if spec.bits == self.technology.eoadc.bits:
            return spec.reference_power
        tech = self.technology
        probe = AllPassMRR(
            tech.adc_ring_spec(),
            design_wavelength=tech.wavelength,
            design_voltage=0.0,
            waveguide=tech.waveguide,
            coupler=tech.coupler,
            tuner=DepletionTuner(tech.depletion),
        )
        half_lsb = spec.lsb_voltage / 2.0
        window = 1.0264 * half_lsb  # keep the paper's ~2.6% bin-edge overlap
        t_upper = float(probe.thru_transmission(tech.wavelength, voltage=+window))
        t_lower = float(probe.thru_transmission(tech.wavelength, voltage=-window))
        return spec.channel_power * 0.5 * (t_upper + t_lower)

    def _decoder_power(self) -> float:
        """ROM decoder + clocking power, scaled from the paper's 3-bit
        macro (the non-TIA 42% share of 11 mW)."""
        base = self.technology.eoadc
        share = base.electrical_power * (1.0 - base.tia_amp_power_fraction)
        return share * self.spec.levels / base.levels

    # -- static behaviour --------------------------------------------------------
    @property
    def bits(self) -> int:
        return self.spec.bits

    @property
    def levels(self) -> int:
        return self.spec.levels

    @property
    def lsb(self) -> float:
        return self.spec.lsb_voltage

    @property
    def sample_rate(self) -> float:
        """Conversion rate [Hz]: 8 GS/s with the read chain, 416.7 MS/s
        without (the paper's low-power ablation)."""
        if self.use_read_chain:
            return self.spec.sample_rate
        return self.spec.sample_rate_no_tia

    def junction_voltages(self, v_in: float) -> np.ndarray:
        """V_pn per ring: reference ladder minus the analog input."""
        return self.reference_voltages - v_in

    def thru_powers(self, v_in: float) -> np.ndarray:
        """Settled thru-port power per ring [W] at the input voltage."""
        wavelength = self.technology.wavelength
        voltages = self.junction_voltages(v_in)
        powers = np.empty(self.levels)
        for index, ring in enumerate(self.rings):
            transmission = float(
                ring.thru_transmission(wavelength, voltage=float(voltages[index]))
            )
            powers[index] = self.spec.channel_power * transmission
        return powers

    def activations(self, v_in: float) -> list[bool]:
        """Settled thresholding-block outputs B_1 .. B_{2^p}."""
        powers = self.thru_powers(v_in)
        return [
            thresholder.is_active(float(power))
            for thresholder, power in zip(self.thresholders, powers)
        ]

    def convert(self, v_in: float, strict: bool = False) -> int:
        """Settled (static) conversion of ``v_in`` to a binary code.

        Trim residuals can open small dead zones between adjacent
        activation windows; there the dynamic-logic ROM decoder holds
        its last code, which for a monotonic input equals the highest
        reference already passed.  That ramp-hold semantic is the
        default; ``strict=True`` instead raises
        :class:`~repro.errors.ConversionError` when no block fires
        (useful for verifying pure 1-hot coverage of an ideally trimmed
        converter).
        """
        if not 0.0 <= v_in < self.spec.full_scale_voltage:
            raise ConversionError(
                f"input {v_in} V outside the [0, {self.spec.full_scale_voltage}) V "
                "full-scale range"
            )
        activations = self.activations(v_in)
        if any(activations) or strict:
            return self.decoder.decode(activations)
        below = np.nonzero(self.reference_voltages <= v_in)[0]
        return int(below[-1]) if below.size else 0

    def code_boundaries(self) -> np.ndarray:
        """Exact code-transition voltages of the settled converter.

        Entry k - 1 is the smallest representable input voltage whose
        static conversion reaches code ``k`` (k = 1 .. 2^p - 1), found
        by bisecting :meth:`convert` down to floating-point resolution.
        Because the settled transfer function is a non-decreasing
        staircase (ring activation windows ordered along the reference
        ladder, ceiling-priority decoding, ramp-hold in the trim dead
        zones), ``np.searchsorted(boundaries, v, side="right")``
        reproduces ``convert(v)`` exactly for every in-range ``v`` —
        this ladder is what the :mod:`repro.runtime` compiler bins whole
        batches against.  The result is cached; ring trims never change
        after construction.
        """
        if self._code_boundaries is not None:
            return self._code_boundaries
        upper_probe = self.spec.full_scale_voltage - 1e-9
        top_code = self.convert(upper_probe)
        boundaries = np.empty(self.levels - 1)
        lower = 0.0
        for code in range(1, self.levels):
            if code > top_code:
                # Unreachable code (severely mistrimmed part): park the
                # threshold at full scale so binning never emits it.
                boundaries[code - 1] = self.spec.full_scale_voltage
                continue
            low, high = lower, upper_probe
            if self.convert(low) >= code:
                boundaries[code - 1] = low
                continue
            # Invariant: convert(low) < code <= convert(high).
            while True:
                mid = 0.5 * (low + high)
                if not low < mid < high:
                    break
                if self.convert(mid) >= code:
                    high = mid
                else:
                    low = mid
            boundaries[code - 1] = high
            lower = low
        self._code_boundaries = boundaries
        return boundaries

    def invalidate_boundaries(self) -> None:
        """Drop the memoized code ladder so the next
        :meth:`code_boundaries` call re-bisects the converter.

        The memo assumes ring trims never change after construction;
        mutating ``trim_errors`` or ``spec`` in place (variation
        studies, recalibration re-trims) silently breaks that
        assumption — call this (or
        :meth:`~repro.core.tensor_core.PhotonicTensorCore.
        invalidate_ladders` on the owning core) afterwards.
        """
        self._code_boundaries = None

    def convert_clamped(self, v_in: float) -> int:
        """Conversion with the input clipped into the full-scale range."""
        margin = 1e-9
        clamped = min(max(v_in, 0.0), self.spec.full_scale_voltage - margin)
        return self.convert(clamped)

    # -- transient behaviour ----------------------------------------------------------

    def transient_convert(
        self,
        input_function,
        duration: float,
        time_step: float = 0.5e-12,
        sample_rate: float | None = None,
    ) -> ConversionRecord:
        """Co-simulate a conversion stream (paper Fig. 9).

        ``input_function(t)`` is the analog input; codes are latched at
        the end of every sample period (decode-or-hold: a mid-flight
        sample with no settled activation keeps the previous code).
        """
        sample_rate = self.sample_rate if sample_rate is None else sample_rate
        period = 1.0 / sample_rate
        if duration < period:
            raise ConfigurationError("duration must cover at least one sample period")

        wavelength = self.technology.wavelength
        vdd = self.spec.supply_voltage
        # The loaded cavity's energy (hence transmission notch) responds
        # on the photon lifetime.
        ring_lag = FirstOrderLag(np.ones(self.levels), self.rings[0].photon_lifetime)
        read_lag = FirstOrderLag(
            np.zeros(self.levels), self.thresholders[0].read_chain_time_constant
        )
        for thresholder in self.thresholders:
            thresholder.node.voltage = vdd

        sample_times: list[float] = []
        codes: list[int] = []
        held = {"code": 0}
        next_sample = {"t": period}

        def targets(v_in: float) -> np.ndarray:
            voltages = self.junction_voltages(v_in)
            return np.array(
                [
                    float(
                        ring.thru_transmission(wavelength, voltage=float(voltage))
                    )
                    for ring, voltage in zip(self.rings, voltages)
                ]
            )

        def step(time: float, dt: float) -> dict[str, float]:
            v_in = float(input_function(time))
            transmissions = ring_lag.step(targets(v_in), dt)
            rails = np.empty(self.levels)
            if self.use_read_chain:
                # TIA current sensing: rails regenerate from the sign of
                # the balanced-pair current at the read-chain bandwidth.
                rail_targets = np.array(
                    [
                        thresholder.tia_rail_target(
                            self.spec.channel_power * float(transmission)
                        )
                        for thresholder, transmission in zip(
                            self.thresholders, transmissions
                        )
                    ]
                )
                rails = read_lag.step(rail_targets, dt)
            else:
                # No TIA: the balanced pair slews the midpoint node (and
                # decoder load) directly — the paper's 416.7 MS/s mode.
                for index, thresholder in enumerate(self.thresholders):
                    power = self.spec.channel_power * float(transmissions[index])
                    thresholder.step(power, dt)
                    rails[index] = thresholder.node_rail_output()
            activations = [float(rail) > vdd / 2.0 for rail in rails]
            code = self.decoder.decode_or_hold(activations, held["code"])
            held["code"] = code
            if time + dt >= next_sample["t"] - 1e-15:
                sample_times.append(next_sample["t"])
                codes.append(code)
                next_sample["t"] += period
            signals = {"VIN": v_in, "code": float(code)}
            for index in range(self.levels):
                signals[f"B{index + 1}"] = float(rails[index])
            return signals

        engine = TransientEngine(time_step, duration)
        recorder = engine.run(step)
        if not codes:
            raise ConversionError("no sample instants inside the transient window")
        return ConversionRecord(sample_times=sample_times, codes=codes, recorder=recorder)

    # -- power / energy ------------------------------------------------------------
    def power_ledger(self) -> PowerLedger:
        """Optical + electrical power (paper: 7.58 mW + 11 mW at 3 bits)."""
        spec = self.spec
        ledger = PowerLedger(self.technology.wall_plug_efficiency)
        ledger.add_optical("input light (per-channel x 2^p)", spec.levels * spec.channel_power)
        ledger.add_optical(
            "reference light (per-channel x 2^p)",
            spec.levels * self.thresholders[0].reference_power,
        )
        if self.use_read_chain:
            read_power = sum(t.read_chain_power for t in self.thresholders)
            ledger.add_electrical("TIA + amplifier chains", read_power)
        ledger.add_electrical("ROM decoder + clocking", self.decoder.power)
        return ledger

    @property
    def total_power(self) -> float:
        return self.power_ledger().total

    @property
    def energy_per_conversion(self) -> float:
        """Wall-plug energy per conversion [J] (paper: 2.32 pJ)."""
        return self.total_power / self.sample_rate


class TimeInterleavedEoAdc:
    """K interleaved eoADC slices for a K-fold sample rate (paper's
    'time-interleaved structures to improve the operating speed').

    Interleaving reintroduces the classic lane mismatches the 1-hot
    design otherwise avoids: per-lane offset and clock skew are drawn
    from seeded distributions so benches can quantify the trade.
    """

    def __init__(
        self,
        lanes: int = 2,
        technology: Technology | None = None,
        offset_sigma: float = 2e-3,
        skew_sigma: float = 0.5e-12,
        seed: int = 7,
    ) -> None:
        if lanes < 2:
            raise ConfigurationError(f"interleaving needs >= 2 lanes, got {lanes}")
        self.technology = technology if technology is not None else default_technology()
        self.lanes = lanes
        rng = np.random.default_rng(seed)
        self.offsets = rng.normal(0.0, offset_sigma, lanes)
        self.skews = rng.normal(0.0, skew_sigma, lanes)
        self.slices = [
            EoAdc(self.technology, label=f"ti.lane{index}") for index in range(lanes)
        ]

    @property
    def sample_rate(self) -> float:
        return self.lanes * self.slices[0].sample_rate

    @property
    def total_power(self) -> float:
        return sum(adc.total_power for adc in self.slices)

    @property
    def energy_per_conversion(self) -> float:
        return self.total_power / self.sample_rate

    def convert_stream(self, input_function, count: int) -> list[int]:
        """Convert ``count`` samples of ``input_function(t)`` round-robin
        across lanes, including each lane's offset and skew errors."""
        if count < 1:
            raise ConfigurationError(f"need at least one sample, got {count}")
        period = 1.0 / self.sample_rate
        codes = []
        full_scale = self.slices[0].spec.full_scale_voltage
        for n in range(count):
            lane = n % self.lanes
            time = n * period + self.skews[lane]
            value = float(input_function(max(time, 0.0))) + self.offsets[lane]
            value = min(max(value, 0.0), full_scale - 1e-9)
            codes.append(self.slices[lane].convert(value))
        return codes


class ShiftAddEoAdc:
    """Two cascaded lower-bit eoADCs with shift-and-add recombination
    (the paper's higher-precision extension).

    The coarse stage resolves p bits; the residue is amplified by 2^p
    (with a configurable interstage gain error) and digitized by the
    fine stage, yielding 2p bits total.
    """

    def __init__(
        self,
        technology: Technology | None = None,
        gain_error: float = 0.0,
        label: str = "shiftadd",
    ) -> None:
        self.technology = technology if technology is not None else default_technology()
        self.coarse = EoAdc(self.technology, label=f"{label}.coarse")
        self.fine = EoAdc(self.technology, label=f"{label}.fine")
        self.gain_error = gain_error

    @property
    def bits(self) -> int:
        return self.coarse.bits + self.fine.bits

    @property
    def levels(self) -> int:
        return 2**self.bits

    @property
    def lsb(self) -> float:
        return self.coarse.spec.full_scale_voltage / self.levels

    def convert(self, v_in: float) -> int:
        """Full-precision conversion via coarse code + amplified residue."""
        coarse_code = self.coarse.convert(v_in)
        residue = v_in - coarse_code * self.coarse.lsb
        gain = self.coarse.levels * (1.0 + self.gain_error)
        amplified = residue * gain
        full_scale = self.fine.spec.full_scale_voltage
        amplified = min(max(amplified, 0.0), full_scale - 1e-9)
        fine_code = self.fine.convert(amplified)
        return (coarse_code << self.fine.bits) | fine_code

    @property
    def total_power(self) -> float:
        return self.coarse.total_power + self.fine.total_power

    @property
    def sample_rate(self) -> float:
        # The cascade is pipelined: throughput follows the single stage.
        return self.coarse.sample_rate

    @property
    def energy_per_conversion(self) -> float:
        return self.total_power / self.sample_rate
