"""The mixed-signal multi-bit WDM vector-multiplication core (Fig. 2).

An input vector rides a frequency comb (element i intensity-encoded on
wavelength lambda_i).  A cascade of 50/50 splitters produces binary-
scaled copies of the WDM bus (IN/2 ... IN/2^n); bit plane j of the
weight word drives one ring per channel on its own bus, and a
photodiode per plane converts the surviving light to current.  Equal-
gain electrical summation of the planes then yields

    I  ~  sum_i IN_i * w_i / 2^n ,

the vector-vector product.  Vectors longer than the per-macro channel
count (4 channels in a 9.36 nm FSR at 2.33 nm spacing) tile across
macros whose photocurrents sum.

Inter-channel crosstalk is included exactly: every ring's transfer
function is evaluated at every channel wavelength, reproducing the
paper's all-rings-in-testbench methodology; the per-channel PDK mode
(:meth:`compute_per_channel`) mirrors the paper's one-wavelength-at-a-
time workaround and agrees with the joint evaluation by linearity.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import Technology, default_technology
from ..electronics.power import PowerLedger
from ..errors import ConfigurationError
from ..photonics.coupler import BinaryScaledSplitterTree
from ..photonics.laser import FrequencyComb
from ..photonics.photodiode import Photodiode
from ..photonics.wdm import ChannelPlan
from .multiplier import OneBitPhotonicMultiplier
from .psram import PsramArray


class VectorComputeCore:
    """A 1 x m, n-bit photonic vector-multiplication engine."""

    def __init__(
        self,
        vector_length: int = 4,
        weight_bits: int | None = None,
        technology: Technology | None = None,
        label: str = "core",
    ) -> None:
        if vector_length < 1:
            raise ConfigurationError(f"vector length must be >= 1, got {vector_length}")
        self.technology = technology if technology is not None else default_technology()
        tech = self.technology
        self.vector_length = vector_length
        self.weight_bits = tech.compute.weight_bits if weight_bits is None else weight_bits
        if self.weight_bits < 1:
            raise ConfigurationError(f"weight bits must be >= 1, got {self.weight_bits}")
        self.label = label

        channels = tech.compute.wavelengths_per_macro
        self.channels_per_macro = channels
        self.macro_count = math.ceil(vector_length / channels)
        self.plan = ChannelPlan(
            base_wavelength=tech.wavelength,
            spacing=tech.compute.channel_spacing,
            count=channels,
        )
        self.comb = FrequencyComb(
            base_wavelength=tech.wavelength,
            spacing=tech.compute.channel_spacing,
            line_count=channels,
            power_per_line=tech.compute.channel_power,
            wall_plug_efficiency=tech.wall_plug_efficiency,
            label=f"{label}.comb",
        )
        self.splitter_tree = BinaryScaledSplitterTree(self.weight_bits)
        self.photodiode = Photodiode(tech.photodiode, label=f"{label}.pd")
        self.weight_memory = PsramArray(vector_length, self.weight_bits, tech)

        # multipliers[element][plane] — one ring per input element per
        # bit plane; the element's macro determines its channel index.
        self.multipliers: list[list[OneBitPhotonicMultiplier]] = []
        for element in range(vector_length):
            channel = element % channels
            planes = [
                OneBitPhotonicMultiplier(
                    channel_index=channel,
                    technology=tech,
                    label=f"{label}.w{element}.b{plane}",
                )
                for plane in range(self.weight_bits)
            ]
            self.multipliers.append(planes)

        self._weights = np.zeros(vector_length, dtype=int)
        self._transmission_cache: np.ndarray | None = None
        self.load_weights(self._weights)

    # -- weight handling ------------------------------------------------------
    @property
    def weights(self) -> np.ndarray:
        """Stored unsigned integer weights (copy)."""
        return self._weights.copy()

    @property
    def max_weight(self) -> int:
        return 2**self.weight_bits - 1

    def load_weights(self, weights) -> None:
        """Write a weight vector into the pSRAM planes and ring drives."""
        weights = np.asarray(weights, dtype=int)
        if weights.shape != (self.vector_length,):
            raise ConfigurationError(
                f"need {self.vector_length} weights, got shape {weights.shape}"
            )
        if np.any(weights < 0) or np.any(weights > self.max_weight):
            raise ConfigurationError(
                f"weights must lie in [0, {self.max_weight}] for {self.weight_bits} bits"
            )
        self.weight_memory.write_all(int(w) for w in weights)
        for element, planes in enumerate(self.multipliers):
            bits = self.weight_memory.word_bits(element)
            for plane, multiplier in enumerate(planes):
                multiplier.bit = bits[plane]
        self._weights = weights
        self._transmission_cache = self._build_transmission_cache()

    def _build_transmission_cache(self) -> np.ndarray:
        """Per-(macro, plane, channel) bus transmission with crosstalk.

        Entry [g, j, c] is the product of every ring transfer on macro
        g's plane-j bus, evaluated at channel c's wavelength.
        """
        wavelengths = self.plan.wavelengths
        cache = np.ones(
            (self.macro_count, self.weight_bits, self.channels_per_macro), dtype=float
        )
        for element, planes in enumerate(self.multipliers):
            macro = element // self.channels_per_macro
            for plane, multiplier in enumerate(planes):
                cache[macro, plane, :] *= multiplier.thru_transmission(wavelengths)
        return cache

    # -- evaluation ---------------------------------------------------------------
    def _validated_inputs(self, inputs) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        if inputs.shape != (self.vector_length,):
            raise ConfigurationError(
                f"need {self.vector_length} inputs, got shape {inputs.shape}"
            )
        if np.any(inputs < 0.0) or np.any(inputs > 1.0):
            raise ConfigurationError("analog inputs must lie in [0, 1]")
        return inputs

    def compute(self, inputs) -> float:
        """Photocurrent [A] of the full vector multiplication."""
        inputs = self._validated_inputs(inputs)
        fractions = np.asarray(self.splitter_tree.branch_fractions())
        power_per_channel = self.technology.compute.channel_power
        responsivity = self.photodiode.spec.responsivity

        current = 0.0
        for macro in range(self.macro_count):
            start = macro * self.channels_per_macro
            stop = min(start + self.channels_per_macro, self.vector_length)
            macro_inputs = np.zeros(self.channels_per_macro)
            macro_inputs[: stop - start] = inputs[start:stop]
            channel_powers = power_per_channel * macro_inputs
            # plane currents: R * sum_c P_c * frac_j * T[g, j, c]
            plane_powers = self._transmission_cache[macro] @ channel_powers
            current += responsivity * float(fractions @ plane_powers)
        return current

    def element_responses(self) -> np.ndarray:
        """Per-element photocurrent response [A per unit input intensity].

        Because the settled optical path is linear in the input
        intensities, ``compute(x)`` equals ``element_responses() @ x``
        for every valid ``x``.  Entry i folds the splitter-tree
        fractions, the bit-plane bus transmissions at element i's
        channel wavelength (including every other ring's crosstalk on
        the shared buses), the channel power and the photodiode
        responsivity into one coefficient.  This is the hook the
        :mod:`repro.runtime` compiler uses to turn the device loop into
        a dense matrix row; it is rebuilt implicitly on every
        :meth:`load_weights` via the transmission cache.
        """
        fractions = np.asarray(self.splitter_tree.branch_fractions())
        power_per_channel = self.technology.compute.channel_power
        responsivity = self.photodiode.spec.responsivity
        responses = np.empty(self.vector_length)
        for element in range(self.vector_length):
            macro = element // self.channels_per_macro
            channel = element % self.channels_per_macro
            responses[element] = (
                responsivity
                * power_per_channel
                * float(fractions @ self._transmission_cache[macro, :, channel])
            )
        return responses

    def compute_per_channel(self, inputs) -> float:
        """The paper's PDK workaround: one wavelength at a time, all
        rings present, photocurrents summed linearly."""
        inputs = self._validated_inputs(inputs)
        current = 0.0
        for element in range(self.vector_length):
            solo = np.zeros(self.vector_length)
            solo[element] = inputs[element]
            current += self.compute(solo)
        return current

    def ideal_dot_product(self, inputs) -> float:
        """Fixed-point reference: sum_i IN_i * w_i / 2^n."""
        inputs = self._validated_inputs(inputs)
        return float(inputs @ self._weights) / 2.0**self.weight_bits

    def full_scale_current(self) -> float:
        """Photocurrent with all inputs at 1 and all weights at max.

        Evaluated analytically (rings probed at the VDD drive) so this
        calibration probe does not spend pSRAM write energy.
        """
        wavelengths = self.plan.wavelengths
        vdd = self.technology.psram.vdd
        cache = np.ones(
            (self.macro_count, self.weight_bits, self.channels_per_macro), dtype=float
        )
        for element, planes in enumerate(self.multipliers):
            macro = element // self.channels_per_macro
            for plane, multiplier in enumerate(planes):
                cache[macro, plane, :] *= np.asarray(
                    multiplier.ring.thru_transmission(wavelengths, voltage=vdd),
                    dtype=float,
                )
        fractions = np.asarray(self.splitter_tree.branch_fractions())
        power_per_channel = self.technology.compute.channel_power
        responsivity = self.photodiode.spec.responsivity
        current = 0.0
        for macro in range(self.macro_count):
            start = macro * self.channels_per_macro
            stop = min(start + self.channels_per_macro, self.vector_length)
            macro_inputs = np.zeros(self.channels_per_macro)
            macro_inputs[: stop - start] = 1.0
            plane_powers = cache[macro] @ (power_per_channel * macro_inputs)
            current += responsivity * float(fractions @ plane_powers)
        return current

    def unit_current(self) -> float:
        """Current corresponding to one unit of the ideal dot product.

        Calibrated from the full-scale point so normalized outputs can
        be compared against :meth:`ideal_dot_product` directly.
        """
        full_scale_dot = self.vector_length * self.max_weight / 2.0**self.weight_bits
        return self.full_scale_current() / full_scale_dot

    def normalized_output(self, inputs) -> float:
        """compute() scaled into ideal-dot-product units."""
        return self.compute(inputs) / self.unit_current()

    # -- bookkeeping ------------------------------------------------------------
    def weight_update_energy(self) -> float:
        """Wall-plug energy spent on pSRAM switches so far [J]."""
        return self.weight_memory.write_energy()

    def power_ledger(self) -> PowerLedger:
        """Static optical/electrical power of this core."""
        ledger = PowerLedger(self.technology.wall_plug_efficiency)
        total_input = self.vector_length * self.technology.compute.channel_power
        ledger.add_optical("input comb", total_input)
        ledger.add_optical(
            "pSRAM hold bias",
            self.weight_memory.cell_count * self.technology.psram.bias_power,
        )
        ledger.add_electrical(
            "pSRAM drivers",
            self.weight_memory.cell_count * self.technology.psram.hold_electrical_power,
        )
        return ledger
