"""System-level throughput and power-efficiency analysis (Section IV-D).

The paper's 16x16, 3-bit tensor core computes 16 dot products of
1 x 16 vectors per eoADC sample: 16 rows x (16 multiplies + 16
accumulates) x 8 GS/s = 4.10 TOPS.  The power budget sums the eoADCs,
the pSRAM hold bias, the input combs, the row TIAs, the laser
wall-plug conversion and a calibrated control/thermal overhead,
landing at 3.02 TOPS/W (see DESIGN.md section 2 for the provenance of
each term).
"""

from __future__ import annotations

from ..config import Technology, default_technology
from ..electronics.power import PowerLedger
from ..errors import ConfigurationError


class PerformanceModel:
    """Throughput, power and efficiency of an m x n tensor core."""

    def __init__(
        self,
        technology: Technology | None = None,
        rows: int | None = None,
        columns: int | None = None,
        weight_bits: int | None = None,
        sample_rate: float | None = None,
    ) -> None:
        self.technology = technology if technology is not None else default_technology()
        tensor = self.technology.tensor
        self.rows = tensor.rows if rows is None else rows
        self.columns = tensor.columns if columns is None else columns
        self.weight_bits = tensor.weight_bits if weight_bits is None else weight_bits
        self.sample_rate = tensor.sample_rate if sample_rate is None else sample_rate
        if self.rows < 1 or self.columns < 1 or self.weight_bits < 1:
            raise ConfigurationError("rows, columns and weight bits must be >= 1")

    # -- throughput --------------------------------------------------------
    @property
    def ops_per_sample(self) -> int:
        """1 op = one n-bit multiply or accumulate (paper convention)."""
        return 2 * self.rows * self.columns

    @property
    def throughput_ops(self) -> float:
        """Operations per second."""
        return self.ops_per_sample * self.sample_rate

    @property
    def throughput_tops(self) -> float:
        """Tera-operations per second (paper: 4.10 TOPS)."""
        return self.throughput_ops / 1e12

    @property
    def psram_cell_count(self) -> int:
        """Paper: 768 bitcells for the 16x16, 3-bit core."""
        return self.rows * self.columns * self.weight_bits

    @property
    def weight_update_rate(self) -> float:
        """Per-cell memory update rate [Hz] (paper: 20 GHz)."""
        return self.technology.psram.update_rate

    # -- power --------------------------------------------------------------
    def power_ledger(self) -> PowerLedger:
        """Full system power breakdown."""
        tech = self.technology
        ledger = PowerLedger(tech.wall_plug_efficiency)

        adc = tech.eoadc
        adc_optical = adc.levels * (adc.channel_power + adc.reference_power)
        ledger.add_optical(f"eoADC input+reference light ({self.rows} rows)",
                           self.rows * adc_optical)
        ledger.add_electrical(f"eoADC electronics ({self.rows} rows)",
                              self.rows * adc.electrical_power)

        cells = self.psram_cell_count
        ledger.add_optical(f"pSRAM hold bias ({cells} cells)",
                           cells * tech.psram.bias_power)
        ledger.add_electrical(f"pSRAM drivers ({cells} cells)",
                              cells * tech.psram.hold_electrical_power)

        comb_power = self.rows * self.columns * tech.compute.channel_power
        ledger.add_optical("input frequency combs", comb_power)

        ledger.add_electrical(f"row TIAs ({self.rows} x)",
                              self.rows * tech.tensor.tia_power_per_row)
        ledger.add_electrical("control / clock / thermal overhead",
                              tech.tensor.control_overhead_power)
        return ledger

    @property
    def total_power(self) -> float:
        """Total wall-plug power [W]."""
        return self.power_ledger().total

    @property
    def tops_per_watt(self) -> float:
        """Power efficiency (paper: 3.02 TOPS/W)."""
        return self.throughput_tops / self.total_power

    @property
    def energy_per_op(self) -> float:
        """Energy per 3-bit multiply/accumulate [J]."""
        return self.total_power / self.throughput_ops

    # -- reporting -----------------------------------------------------------
    def table_row(self) -> dict[str, float]:
        """'This Work' row of the paper's Table I."""
        return {
            "throughput_tops": self.throughput_tops,
            "power_efficiency_tops_per_w": self.tops_per_watt,
            "weight_update_hz": self.weight_update_rate,
        }

    def summary(self) -> str:
        """Multi-line human-readable performance summary."""
        ledger = self.power_ledger()
        lines = [
            f"array                : {self.rows} x {self.columns}, "
            f"{self.weight_bits}-bit weights ({self.psram_cell_count} pSRAM cells)",
            f"sample rate          : {self.sample_rate / 1e9:.2f} GS/s",
            f"throughput           : {self.throughput_tops:.2f} TOPS",
            f"total power          : {self.total_power * 1e3:.1f} mW",
            f"power efficiency     : {self.tops_per_watt:.2f} TOPS/W",
            f"weight update rate   : {self.weight_update_rate / 1e9:.0f} GHz",
            "power breakdown:",
        ]
        for name, value in ledger.breakdown().items():
            lines.append(f"  {name:<45} {value * 1e3:9.2f} mW")
        return "\n".join(lines)
