"""The differential cross-coupled photonic SRAM bitcell (paper Fig. 1).

Topology: an input splitter PS1 feeds the hold bias to two identical
add-drop rings M1/M2.  M1's thru and drop ports terminate on the
photodiode stack P1 (VDD -> QB) / P2 (QB -> GND); M2's on P3
(VDD -> Q) / P4 (Q -> GND).  Driver D2 closes Q -> M1, driver D1
closes QB -> M2, forming the bistable electro-optic latch: the ring
driven high resonates (drop port wins, pulling its *opposite* node
down), the ring driven low passes light to the thru port (pulling its
node up).

Writes apply differential optical pulses on the WBL/WBLB waveguides;
WBL splits onto P3 and P2 (raising Q, dropping QB), WBLB onto P1 and
P4.  Absorbers A1/A2 terminate the unused bus ends.

The transient model co-simulates the electrical nodes (rail-clamped
capacitors), the drivers (single-pole), and the ring response (photon
lifetime + injection carrier lag) — Fig. 5's waveforms.  The energy
model reproduces the paper's 0.5 pJ per switching event at 20 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import Technology, default_technology
from ..electronics.driver import InverterDriver
from ..electronics.elements import StorageNode
from ..electronics.power import EnergyLedger, PowerLedger
from ..errors import ConfigurationError, SimulationError
from ..photonics.absorber import Absorber
from ..photonics.coupler import PowerSplitter
from ..photonics.mrr import AddDropMRR
from ..photonics.photodiode import Photodiode
from ..photonics.pn_junction import InjectionTuner
from ..sim.transient import FirstOrderLag, Recorder, TransientEngine
from ..sim.waveform import PulseTrain


@dataclass
class WriteResult:
    """Outcome of a pSRAM write transient."""

    target_bit: int
    success: bool
    recorder: Recorder
    energy: EnergyLedger

    @property
    def switch_energy(self) -> float:
        """Total wall-plug energy of the write event [J]."""
        return self.energy.total


class PsramBitcell:
    """One differential cross-coupled photonic SRAM bitcell."""

    def __init__(self, technology: Technology | None = None, label: str = "psram") -> None:
        self.technology = technology if technology is not None else default_technology()
        tech = self.technology
        spec = tech.psram
        self.spec = spec
        self.label = label

        ring_spec = tech.compute_ring_spec()
        # Rings are trimmed to resonate at the bias wavelength when their
        # drive is at VDD (paper Section II-A).
        self.m1 = AddDropMRR(
            ring_spec,
            design_wavelength=tech.wavelength,
            design_voltage=spec.vdd,
            waveguide=tech.waveguide,
            coupler=tech.coupler,
            tuner=InjectionTuner(tech.injection),
            thermal=tech.thermal,
            label=f"{label}.M1",
        )
        self.m2 = AddDropMRR(
            ring_spec,
            design_wavelength=tech.wavelength,
            design_voltage=spec.vdd,
            waveguide=tech.waveguide,
            coupler=tech.coupler,
            tuner=InjectionTuner(tech.injection),
            thermal=tech.thermal,
            label=f"{label}.M2",
        )
        self.ps1 = PowerSplitter(ratio=0.5, label=f"{label}.PS1")
        self.ps2 = PowerSplitter(ratio=0.5, label=f"{label}.PS2")
        self.ps3 = PowerSplitter(ratio=0.5, label=f"{label}.PS3")
        self.p1 = Photodiode(tech.photodiode, label=f"{label}.P1")
        self.p2 = Photodiode(tech.photodiode, label=f"{label}.P2")
        self.p3 = Photodiode(tech.photodiode, label=f"{label}.P3")
        self.p4 = Photodiode(tech.photodiode, label=f"{label}.P4")
        self.a1 = Absorber(label=f"{label}.A1")
        self.a2 = Absorber(label=f"{label}.A2")

        self.node_q = StorageNode(spec.node_capacitance, spec.vdd, 0.0, label=f"{label}.Q")
        self.node_qb = StorageNode(spec.node_capacitance, spec.vdd, spec.vdd, label=f"{label}.QB")
        self.driver_d1 = InverterDriver(
            spec.vdd, spec.driver_time_constant, initial_output=spec.vdd, label=f"{label}.D1"
        )
        self.driver_d2 = InverterDriver(
            spec.vdd, spec.driver_time_constant, initial_output=0.0, label=f"{label}.D2"
        )

        # Ring optical response lag: photon lifetime + injection carriers.
        ring_tau = self.m1.photon_lifetime + tech.injection.carrier_time_constant
        self._m1_response = FirstOrderLag(self._ring_targets(self.m1, 0.0), ring_tau)
        self._m2_response = FirstOrderLag(self._ring_targets(self.m2, spec.vdd), ring_tau)

    # -- structural helpers -------------------------------------------------
    def _ring_targets(self, ring: AddDropMRR, voltage: float):
        """Settled (thru, drop) transmissions at the bias wavelength."""
        wavelength = self.technology.wavelength
        return (
            float(ring.thru_transmission(wavelength, voltage=voltage)),
            float(ring.drop_transmission(wavelength, voltage=voltage)),
        )

    @property
    def state(self) -> int:
        """Stored bit: digital reading of node Q."""
        return int(self.node_q.logic_state)

    def set_state(self, bit: int) -> None:
        """Force the latch into a state (initial conditions)."""
        if bit not in (0, 1):
            raise ConfigurationError(f"bit must be 0 or 1, got {bit}")
        vdd = self.spec.vdd
        self.node_q.voltage = vdd * bit
        self.node_qb.voltage = vdd * (1 - bit)
        self.driver_d2.settle(self.node_q.voltage)
        self.driver_d1.settle(self.node_qb.voltage)
        self._m1_response.snap(self._ring_targets(self.m1, self.driver_d2.output))
        self._m2_response.snap(self._ring_targets(self.m2, self.driver_d1.output))

    # -- static analyses ------------------------------------------------------
    def hold_node_currents(self) -> tuple[float, float]:
        """Settled net currents (I_Q, I_QB) [A] in hold mode.

        For a stable latch the high node's current is positive (or the
        node is clamped at VDD) and the low node's negative.
        """
        bias = self.spec.bias_power / 2.0
        thru1, drop1 = self._ring_targets(self.m1, self.driver_d2.output)
        thru2, drop2 = self._ring_targets(self.m2, self.driver_d1.output)
        current_qb = self.p1.current(bias * thru1) - self.p2.current(bias * drop1)
        current_q = self.p3.current(bias * thru2) - self.p4.current(bias * drop2)
        return current_q, current_qb

    def is_hold_stable(self) -> bool:
        """True when hold currents reinforce the stored state."""
        current_q, current_qb = self.hold_node_currents()
        if self.state == 1:
            return current_q > 0.0 and current_qb < 0.0
        return current_q < 0.0 and current_qb > 0.0

    # -- transient co-simulation ------------------------------------------------
    def _step(self, wbl_power: float, wblb_power: float, dt: float) -> None:
        """One co-simulation step: drivers, rings, photodiodes, nodes."""
        v_m1 = self.driver_d2.step(self.node_q.voltage, dt)
        v_m2 = self.driver_d1.step(self.node_qb.voltage, dt)
        thru1, drop1 = self._m1_response.step(self._ring_targets(self.m1, v_m1), dt)
        thru2, drop2 = self._m2_response.step(self._ring_targets(self.m2, v_m2), dt)

        bias = self.spec.bias_power / 2.0
        # PS2 splits WBL onto P3 (raises Q) and P2 (drops QB); PS3 splits
        # WBLB onto P1 (raises QB) and P4 (drops Q).
        wbl_up, wbl_down = wbl_power * self.ps2.ratio, wbl_power * (1.0 - self.ps2.ratio)
        wblb_up, wblb_down = wblb_power * self.ps3.ratio, wblb_power * (1.0 - self.ps3.ratio)

        power_p1 = bias * thru1 + wblb_up
        power_p2 = bias * drop1 + wbl_down
        power_p3 = bias * thru2 + wbl_up
        power_p4 = bias * drop2 + wblb_down

        current_qb = self.p1.current(power_p1) - self.p2.current(power_p2)
        current_q = self.p3.current(power_p3) - self.p4.current(power_p4)
        self.node_q.integrate(current_q, dt)
        self.node_qb.integrate(current_qb, dt)

    def transient(
        self,
        duration: float,
        wbl: PulseTrain | None = None,
        wblb: PulseTrain | None = None,
        time_step: float = 0.25e-12,
    ) -> Recorder:
        """Co-simulate the latch; returns Q/QB/WBL/WBLB waveforms."""
        wbl = wbl if wbl is not None else PulseTrain()
        wblb = wblb if wblb is not None else PulseTrain()
        engine = TransientEngine(time_step, duration)

        def step(time: float, dt: float) -> dict[str, float]:
            wbl_power = wbl.level_at(time)
            wblb_power = wblb.level_at(time)
            self._step(wbl_power, wblb_power, dt)
            return {
                "Q": self.node_q.voltage,
                "QB": self.node_qb.voltage,
                "WBL": wbl_power,
                "WBLB": wblb_power,
            }

        return engine.run(step)

    def write(
        self,
        bit: int,
        settle_time: float | None = None,
        time_step: float = 0.25e-12,
    ) -> WriteResult:
        """Write ``bit`` with a differential optical pulse (paper Fig. 5).

        A 50 ps, 0 dBm pulse lands on WBL for bit=1 (on WBLB for
        bit=0); the transient runs one full 20 GHz update cycle plus a
        settle margin, then verifies the latch flipped and holds.
        """
        if bit not in (0, 1):
            raise ConfigurationError(f"bit must be 0 or 1, got {bit}")
        spec = self.spec
        cycle = 1.0 / spec.update_rate
        settle_time = 2.0 * cycle if settle_time is None else settle_time
        flipped = self.state != bit

        pulse_line = PulseTrain().add_pulse(0.0, spec.write_pulse_width, spec.write_power)
        quiet_line = PulseTrain()
        wbl, wblb = (pulse_line, quiet_line) if bit == 1 else (quiet_line, pulse_line)
        recorder = self.transient(cycle + settle_time, wbl, wblb, time_step)

        success = self.state == bit and self.is_hold_stable()
        energy = self.switching_energy_ledger(state_flipped=flipped)
        return WriteResult(target_bit=bit, success=success, recorder=recorder, energy=energy)

    # -- energy / power accounting ------------------------------------------------
    def switching_energy_ledger(self, state_flipped: bool = True) -> EnergyLedger:
        """Energy of one write event (paper: 0.5 pJ per switch).

        Optical terms are wall-plug converted with the 0.23 efficiency;
        the electrical term is the calibrated switched capacitance and
        is only spent when the latch actually flips.
        """
        spec = self.spec
        ledger = EnergyLedger(self.technology.wall_plug_efficiency)
        cycle = 1.0 / spec.update_rate
        ledger.add_optical("write pulse", spec.write_power * spec.write_pulse_width)
        ledger.add_optical("hold bias (1 cycle)", spec.bias_power * cycle)
        if state_flipped:
            ledger.add_electrical(
                "node/driver switching", spec.switched_capacitance * spec.vdd**2
            )
        return ledger

    def hold_power_ledger(self) -> PowerLedger:
        """Static power while holding a bit."""
        ledger = PowerLedger(self.technology.wall_plug_efficiency)
        ledger.add_optical("hold bias laser", self.spec.bias_power)
        ledger.add_electrical("driver leakage", self.spec.hold_electrical_power)
        return ledger


class PsramArray:
    """A behavioural array of pSRAM bitcells storing multi-bit weights.

    The bit-level physics is validated by :class:`PsramBitcell`; the
    array tracks stored bits, write scheduling at the 20 GHz update
    rate, and aggregate energy, which is what the tensor core needs.
    """

    def __init__(
        self,
        words: int,
        bits_per_word: int,
        technology: Technology | None = None,
    ) -> None:
        if words < 1 or bits_per_word < 1:
            raise ConfigurationError("array needs at least one word and one bit")
        self.technology = technology if technology is not None else default_technology()
        self.words = words
        self.bits_per_word = bits_per_word
        self._bits = [[0] * bits_per_word for _ in range(words)]
        self._write_events = 0
        self._switch_events = 0

    @property
    def cell_count(self) -> int:
        return self.words * self.bits_per_word

    def word(self, index: int) -> int:
        """Stored unsigned integer value of word ``index``."""
        bits = self._bits[index]
        value = 0
        for bit in bits:
            value = (value << 1) | bit
        return value

    def word_bits(self, index: int) -> tuple[int, ...]:
        """Stored bits of a word, MSB first."""
        return tuple(self._bits[index])

    def write_word(self, index: int, value: int) -> int:
        """Store ``value``; returns the number of bitcells that flipped."""
        if not 0 <= value < 2**self.bits_per_word:
            raise ConfigurationError(
                f"value {value} does not fit in {self.bits_per_word} bits"
            )
        new_bits = [
            (value >> shift) & 1 for shift in range(self.bits_per_word - 1, -1, -1)
        ]
        flips = sum(
            1 for old, new in zip(self._bits[index], new_bits) if old != new
        )
        self._bits[index] = new_bits
        self._write_events += self.bits_per_word
        self._switch_events += flips
        return flips

    def write_all(self, values) -> int:
        """Store one value per word; returns total flipped bitcells."""
        values = list(values)
        if len(values) != self.words:
            raise ConfigurationError(f"need {self.words} values, got {len(values)}")
        return sum(self.write_word(index, value) for index, value in enumerate(values))

    def update_time(self) -> float:
        """Time [s] to rewrite the full array, one bit per cell cycle.

        All cells in a word share the write cycle through parallel
        WBL/WBLB pairs, so a full-array update takes one 20 GHz cycle
        per word with row-sequential addressing.
        """
        return self.words / self.technology.psram.update_rate

    def write_energy(self) -> float:
        """Wall-plug energy [J] of all switch events so far (0.5 pJ each)."""
        template = PsramBitcell(self.technology)
        per_switch = template.switching_energy_ledger(state_flipped=True).total
        return self._switch_events * per_switch

    def hold_power(self) -> float:
        """Static hold power [W] of the whole array."""
        template = PsramBitcell(self.technology)
        return template.hold_power_ledger().total * self.cell_count

    @property
    def switch_events(self) -> int:
        return self._switch_events

    def check_retention(self) -> bool:
        """Spot-check that a representative bitcell holds both states."""
        cell = PsramBitcell(self.technology)
        for bit in (0, 1):
            cell.set_state(bit)
            if not cell.is_hold_stable():
                raise SimulationError(f"bitcell does not hold state {bit}")
        return True
