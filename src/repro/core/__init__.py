"""The paper's contributions: pSRAM, compute core, eoADC, tensor core.

Public API:

* :class:`PsramBitcell` / :class:`PsramArray` — the differential
  cross-coupled photonic SRAM (Section II-A, Fig. 5).
* :class:`OneBitPhotonicMultiplier` / :class:`VectorComputeCore` — the
  mixed-signal multi-bit WDM vector multiplier (Section II-B, Fig. 7).
* :class:`EoAdc` and its :class:`TimeInterleavedEoAdc` /
  :class:`ShiftAddEoAdc` extensions — the 1-hot electro-optic ADC
  (Section II-C, Figs. 8-10).
* :class:`PhotonicTensorCore` — the tiled 16x16 matrix engine
  (Section III, Fig. 4).
* :class:`PerformanceModel` — throughput/efficiency analysis
  (Section IV-D, Table I).
"""

from .compute_core import VectorComputeCore
from .eoadc import ConversionRecord, EoAdc, ShiftAddEoAdc, TimeInterleavedEoAdc
from .multiplier import OneBitPhotonicMultiplier
from .performance import PerformanceModel
from .psram import PsramArray, PsramBitcell, WriteResult
from .quantization import (
    decode_output,
    dequantize_weights,
    encode_inputs,
    quantize_weights,
    signed_matmul_correction,
)
from .tensor_core import PhotonicTensorCore

__all__ = [
    "ConversionRecord",
    "decode_output",
    "dequantize_weights",
    "encode_inputs",
    "EoAdc",
    "OneBitPhotonicMultiplier",
    "PerformanceModel",
    "PhotonicTensorCore",
    "PsramArray",
    "PsramBitcell",
    "quantize_weights",
    "ShiftAddEoAdc",
    "signed_matmul_correction",
    "TimeInterleavedEoAdc",
    "VectorComputeCore",
    "WriteResult",
]
