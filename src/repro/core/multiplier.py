"""The 1-bit mixed-signal multiplication unit (paper Fig. 2, inset).

One add-drop MRR, wavelength-assigned via the PDK ring-length
adjustment, driven rail-to-rail by a pSRAM storage node: with the bit
at 0 the ring is resonant and the channel's light is dropped (output
0); with the bit at 1 the injection tuner detunes the ring and the
light passes to the thru port (output = IN, minus insertion loss).
"""

from __future__ import annotations

import numpy as np

from ..config import Technology, default_technology
from ..errors import ConfigurationError
from ..photonics.mrr import AddDropMRR
from ..photonics.pn_junction import InjectionTuner


class OneBitPhotonicMultiplier:
    """An MRR whose drive voltage encodes one weight bit."""

    def __init__(
        self,
        channel_index: int = 0,
        technology: Technology | None = None,
        trim_error: float = 0.0,
        label: str = "mul",
    ) -> None:
        if channel_index < 0:
            raise ConfigurationError(f"channel index must be >= 0, got {channel_index}")
        self.technology = technology if technology is not None else default_technology()
        tech = self.technology
        self.channel_index = channel_index
        self.label = label
        # Ring resonant at its channel wavelength when driven low (w = 0
        # couples/drops the light, w = 1 passes it), wavelength-assigned
        # by the ring-length adjustment step (68 nm -> 2.33 nm/channel).
        self.ring = AddDropMRR(
            tech.compute_ring_spec(),
            design_wavelength=tech.wavelength,
            design_voltage=0.0,
            waveguide=tech.waveguide,
            coupler=tech.coupler,
            tuner=InjectionTuner(tech.injection),
            thermal=tech.thermal,
            length_adjust=channel_index * tech.compute.length_adjust_step,
            trim_error=trim_error,
            label=f"{label}.ring",
        )
        self._bit = 0
        self.ring.voltage = 0.0

    @property
    def channel_wavelength(self) -> float:
        """The channel wavelength this multiplier acts on [m]."""
        return self.technology.wavelength + self.ring.length_adjust_shift()

    @property
    def bit(self) -> int:
        """The stored weight bit driving the ring."""
        return self._bit

    @bit.setter
    def bit(self, value: int) -> None:
        if value not in (0, 1):
            raise ConfigurationError(f"weight bit must be 0 or 1, got {value}")
        self._bit = value
        self.ring.voltage = self.technology.psram.vdd * value

    def thru_transmission(self, wavelengths) -> np.ndarray:
        """Bus transmission at the given wavelengths under the set bit."""
        return np.asarray(self.ring.thru_transmission(wavelengths), dtype=float)

    def multiply(self, input_power: float) -> float:
        """Output power [W] at this multiplier's own channel wavelength."""
        if input_power < 0.0:
            raise ConfigurationError("input power must be non-negative")
        transmission = float(self.ring.thru_transmission(self.channel_wavelength))
        return input_power * transmission

    @property
    def on_transmission(self) -> float:
        """Channel transmission with the bit at 1 (insertion loss)."""
        return float(
            self.ring.thru_transmission(
                self.channel_wavelength, voltage=self.technology.psram.vdd
            )
        )

    @property
    def off_transmission(self) -> float:
        """Channel transmission with the bit at 0 (extinction floor)."""
        return float(self.ring.thru_transmission(self.channel_wavelength, voltage=0.0))

    @property
    def contrast_db(self) -> float:
        """On/off contrast of the multiplication [dB]."""
        return 10.0 * np.log10(self.on_transmission / self.off_transmission)
