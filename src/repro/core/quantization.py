"""Quantization and encoding between float workloads and the core.

The tensor core computes with analog inputs in [0, 1] and unsigned
n-bit weights.  These helpers map float matrices/vectors onto that
hardware representation and back, including the offset-binary trick
that recovers *signed* weight arithmetic digitally: storing
q = round(w/s) + 2^(n-1) and subtracting 2^(n-1) * sum(x) from the
result gives the signed product without signed optics.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


def quantize_weights(weights, bits: int, signed: bool = False):
    """Quantize float weights to unsigned ``bits``-bit integers.

    Returns ``(q, scale)`` with ``q`` integer arrays in [0, 2^bits - 1].
    Unsigned mode maps [0, max(w)]; signed mode uses offset-binary
    around 2^(bits-1) (pair with :func:`signed_matmul_correction`).
    """
    if bits < 1:
        raise ConfigurationError(f"need at least 1 bit, got {bits}")
    weights = np.asarray(weights, dtype=float)
    levels = 2**bits
    if signed:
        magnitude = float(np.max(np.abs(weights))) if weights.size else 0.0
        scale = magnitude / (levels / 2 - 1) if magnitude > 0.0 else 1.0
        offset = levels // 2
        q = np.clip(np.round(weights / scale).astype(int) + offset, 0, levels - 1)
    else:
        if np.any(weights < 0.0):
            raise ConfigurationError("unsigned quantization requires non-negative weights")
        magnitude = float(np.max(weights)) if weights.size else 0.0
        scale = magnitude / (levels - 1) if magnitude > 0.0 else 1.0
        q = np.clip(np.round(weights / scale).astype(int), 0, levels - 1)
    return q, scale


def dequantize_weights(quantized, scale: float, bits: int, signed: bool = False) -> np.ndarray:
    """Invert :func:`quantize_weights` to float weights."""
    if bits < 1:
        raise ConfigurationError(f"need at least 1 bit, got {bits}")
    quantized = np.asarray(quantized, dtype=float)
    if signed:
        return (quantized - 2 ** (bits - 1)) * scale
    return quantized * scale


def quantize_weights_differential(weights, bits: int):
    """Quantize signed weights as a difference of two unsigned arrays.

    Returns ``(q_pos, q_neg, scale)`` with W ~ (q_pos - q_neg) * scale.
    Each element lands in exactly one array (positive magnitudes in
    ``q_pos``, negative in ``q_neg``), the standard differential-column
    IMC mapping: it spends the full 2^bits - 1 range on the magnitude
    instead of offset-binary's half, and the subtraction happens on two
    small digital numbers instead of one large offset term.
    """
    if bits < 1:
        raise ConfigurationError(f"need at least 1 bit, got {bits}")
    weights = np.asarray(weights, dtype=float)
    levels = 2**bits
    magnitude = float(np.max(np.abs(weights))) if weights.size else 0.0
    scale = magnitude / (levels - 1) if magnitude > 0.0 else 1.0
    positive = np.clip(np.round(np.maximum(weights, 0.0) / scale).astype(int), 0, levels - 1)
    negative = np.clip(np.round(np.maximum(-weights, 0.0) / scale).astype(int), 0, levels - 1)
    return positive, negative, scale


def encode_inputs(values):
    """Scale a non-negative float vector into the [0, 1] analog range.

    Returns ``(encoded, scale)`` such that ``encoded * scale == values``.
    """
    values = np.asarray(values, dtype=float)
    if np.any(values < 0.0):
        raise ConfigurationError(
            "analog intensity encoding requires non-negative inputs; "
            "shift or split signed activations first"
        )
    peak = float(values.max()) if values.size else 0.0
    if peak == 0.0:
        return np.zeros_like(values), 1.0
    return values / peak, peak


def decode_output(estimates, input_scale: float, weight_scale: float) -> np.ndarray:
    """Undo the input/weight scalings on dot-product estimates."""
    return np.asarray(estimates, dtype=float) * input_scale * weight_scale


def signed_matmul_correction(unsigned_result, encoded_inputs, bits: int) -> np.ndarray:
    """Recover signed dot products from offset-binary weights.

    ``unsigned_result`` is W_q @ x computed photonically with
    offset-binary weights; subtracting 2^(bits-1) * sum(x) (a single
    digital accumulation of the input vector) yields the signed
    product in quantized units.
    """
    if bits < 1:
        raise ConfigurationError(f"need at least 1 bit, got {bits}")
    encoded_inputs = np.asarray(encoded_inputs, dtype=float)
    correction = 2 ** (bits - 1) * float(encoded_inputs.sum())
    return np.asarray(unsigned_result, dtype=float) - correction
