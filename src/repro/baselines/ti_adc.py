"""Electrical time-interleaved ADC baseline.

The paper dismisses TI-ADCs for their synchronization (skew/offset/gain
mismatch) burden and calibration power.  This behavioural model
quantifies that: K sub-ADC lanes at rate f/K with seeded lane
mismatches, plus a calibration-engine power tax that grows with lane
count (after the calibration surveys the paper cites, [42]-[43]).
"""

from __future__ import annotations

import numpy as np

from ..electronics.power import PowerLedger
from ..errors import ConfigurationError


class TimeInterleavedElectricalAdc:
    """K-lane interleaved converter with lane-mismatch errors."""

    def __init__(
        self,
        bits: int = 3,
        lanes: int = 8,
        aggregate_rate: float = 8e9,
        full_scale_voltage: float = 4.0,
        lane_power: float = 2.0e-3,
        calibration_power_per_lane: float = 0.4e-3,
        offset_sigma: float = 4e-3,
        gain_sigma: float = 0.004,
        skew_sigma: float = 1e-12,
        seed: int = 23,
    ) -> None:
        if lanes < 2:
            raise ConfigurationError(f"interleaving needs >= 2 lanes, got {lanes}")
        if bits < 1:
            raise ConfigurationError(f"need >= 1 bit, got {bits}")
        self.bits = bits
        self.lanes = lanes
        self.aggregate_rate = aggregate_rate
        self.full_scale_voltage = full_scale_voltage
        self.lane_power = lane_power
        self.calibration_power_per_lane = calibration_power_per_lane
        rng = np.random.default_rng(seed)
        self.offsets = rng.normal(0.0, offset_sigma, lanes)
        self.gains = 1.0 + rng.normal(0.0, gain_sigma, lanes)
        self.skews = rng.normal(0.0, skew_sigma, lanes)

    @property
    def levels(self) -> int:
        return 2**self.bits

    @property
    def lsb(self) -> float:
        return self.full_scale_voltage / self.levels

    @property
    def lane_rate(self) -> float:
        return self.aggregate_rate / self.lanes

    def _quantize(self, value: float) -> int:
        value = min(max(value, 0.0), self.full_scale_voltage - 1e-12)
        return int(value / self.lsb)

    def convert_stream(self, input_function, count: int) -> list[int]:
        """Round-robin conversion of ``input_function(t)`` with each
        lane's offset, gain and aperture-skew error applied."""
        if count < 1:
            raise ConfigurationError(f"need at least one sample, got {count}")
        period = 1.0 / self.aggregate_rate
        codes = []
        for n in range(count):
            lane = n % self.lanes
            time = max(n * period + self.skews[lane], 0.0)
            value = self.gains[lane] * float(input_function(time)) + self.offsets[lane]
            codes.append(self._quantize(value))
        return codes

    def mismatch_sndr_db(self, amplitude: float | None = None) -> float:
        """SNDR bound from offset/gain mismatch on a full-scale sine.

        Offset spurs carry mean(offset^2); gain spurs amplitude^2/2 *
        var(gain); quantization adds LSB^2/12.
        """
        amplitude = self.full_scale_voltage / 2.0 if amplitude is None else amplitude
        signal_power = amplitude**2 / 2.0
        offset_noise = float(np.mean(self.offsets**2))
        gain_noise = signal_power * float(np.var(self.gains))
        quantization = self.lsb**2 / 12.0
        noise = offset_noise + gain_noise + quantization
        return 10.0 * float(np.log10(signal_power / noise))

    def power_ledger(self) -> PowerLedger:
        ledger = PowerLedger()
        ledger.add_electrical(f"sub-ADC lanes ({self.lanes} x)", self.lanes * self.lane_power)
        ledger.add_electrical(
            "mismatch calibration engine",
            self.lanes * self.calibration_power_per_lane,
        )
        return ledger

    @property
    def total_power(self) -> float:
        return self.power_ledger().total

    @property
    def energy_per_conversion(self) -> float:
        return self.total_power / self.aggregate_rate
