"""Thermometer-coded flash ADC baseline.

A p-bit flash ADC runs 2^p - 1 continuously biased comparators against
a resistor-ladder reference and priority-encodes the thermometer code.
Every conversion exercises *every* comparator — the power structure the
paper's 1-hot eoADC avoids by activating a single thresholding block.
Comparator offsets (seeded) give the classic flash DNL behaviour for
comparison benches.
"""

from __future__ import annotations

import numpy as np

from ..electronics.power import PowerLedger
from ..errors import ConfigurationError, ConversionError


class FlashAdc:
    """Behavioural electrical flash ADC."""

    def __init__(
        self,
        bits: int = 3,
        full_scale_voltage: float = 4.0,
        sample_rate: float = 8e9,
        comparator_power: float = 0.7975e-3,
        ladder_power: float = 0.5e-3,
        encoder_power: float = 0.8e-3,
        offset_sigma: float = 0.0,
        seed: int = 11,
    ) -> None:
        if bits < 1:
            raise ConfigurationError(f"flash ADC needs >= 1 bit, got {bits}")
        if full_scale_voltage <= 0.0 or sample_rate <= 0.0:
            raise ConfigurationError("full scale and sample rate must be positive")
        self.bits = bits
        self.full_scale_voltage = full_scale_voltage
        self.sample_rate = sample_rate
        self.comparator_power = comparator_power
        self.ladder_power = ladder_power
        self.encoder_power = encoder_power
        rng = np.random.default_rng(seed)
        self.offsets = rng.normal(0.0, offset_sigma, self.comparator_count)

    @property
    def levels(self) -> int:
        return 2**self.bits

    @property
    def comparator_count(self) -> int:
        """2^p - 1 comparators, all active every conversion."""
        return self.levels - 1

    @property
    def lsb(self) -> float:
        return self.full_scale_voltage / self.levels

    def thresholds(self) -> np.ndarray:
        """Ladder tap voltages including comparator offsets."""
        ideal = self.lsb * np.arange(1, self.levels)
        return ideal + self.offsets

    def convert(self, v_in: float) -> int:
        """Thermometer comparison + priority encoding."""
        if not 0.0 <= v_in < self.full_scale_voltage:
            raise ConversionError(
                f"input {v_in} V outside [0, {self.full_scale_voltage}) V"
            )
        thermometer = v_in >= self.thresholds()
        return int(np.count_nonzero(thermometer))

    def power_ledger(self) -> PowerLedger:
        ledger = PowerLedger()
        ledger.add_electrical(
            f"comparators ({self.comparator_count} always on)",
            self.comparator_count * self.comparator_power,
        )
        ledger.add_electrical("reference ladder", self.ladder_power)
        ledger.add_electrical("thermometer encoder", self.encoder_power)
        return ledger

    @property
    def total_power(self) -> float:
        return self.power_ledger().total

    @property
    def energy_per_conversion(self) -> float:
        return self.total_power / self.sample_rate

    @property
    def active_blocks_per_conversion(self) -> int:
        """All comparators toggle/evaluate each cycle (vs. 1 for the
        1-hot eoADC) — the headline structural difference."""
        return self.comparator_count
