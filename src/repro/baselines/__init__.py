"""Baseline systems the paper argues against.

Executable comparators for the paper's design arguments:

* :class:`FlashAdc` — the thermometer-coded flash ADC whose per-cycle
  all-comparator activation motivates the 1-hot eoADC.
* :class:`TimeInterleavedElectricalAdc` — the TI-ADC whose lane
  mismatch/synchronization costs the paper cites.
* :class:`ElectricalImcMacro` — an electrical SRAM in-memory-compute
  macro with interconnect-RC-limited updates (the Section I motivation).
* :mod:`photonic_macros` — the published photonic IMC macros of
  Table I as reference records.
"""

from .electrical_imc import ElectricalImcMacro
from .flash_adc import FlashAdc
from .photonic_macros import MacroRecord, format_table_one, table_one
from .ti_adc import TimeInterleavedElectricalAdc

__all__ = [
    "ElectricalImcMacro",
    "FlashAdc",
    "format_table_one",
    "MacroRecord",
    "table_one",
    "TimeInterleavedElectricalAdc",
]
