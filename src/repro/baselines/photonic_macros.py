"""Published photonic IMC macros compared in the paper's Table I.

These are literature records, not simulations: throughput, power
efficiency and weight-update speed as reported by each work (and as
quoted by the paper).  'This Work' is computed live from the
:class:`~repro.core.performance.PerformanceModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.performance import PerformanceModel


@dataclass(frozen=True)
class MacroRecord:
    """One row of Table I."""

    name: str
    reference: str
    throughput_tops: float | None
    tops_per_watt: float | None
    weight_update_hz: float | None
    update_note: str = ""

    def formatted(self) -> tuple[str, str, str, str]:
        def fmt(value: float | None, pattern: str) -> str:
            return "-" if value is None else pattern.format(value)

        update = "-"
        if self.weight_update_hz is not None:
            hz = self.weight_update_hz
            if hz >= 1e9:
                update = f"{hz / 1e9:g} GHz"
            elif hz >= 1e6:
                update = f"{hz / 1e6:g} MHz"
            else:
                update = f"{hz:g} Hz"
        return (
            self.name,
            fmt(self.throughput_tops, "{:.2f}"),
            fmt(self.tops_per_watt, "{:.2f}"),
            update + (f" {self.update_note}" if self.update_note else ""),
        )


def table_one(performance: PerformanceModel | None = None) -> list[MacroRecord]:
    """All rows of the paper's Table I, 'This Work' computed live."""
    performance = performance if performance is not None else PerformanceModel()
    records = [
        MacroRecord(
            name="TFLN tensor core [33]",
            reference="Lin et al., Nat. Commun. 2024",
            throughput_tops=0.12,
            tops_per_watt=None,
            weight_update_hz=60e9,
        ),
        MacroRecord(
            name="Parallel PPU [48]",
            reference="Du et al., Photonics Res. 2024",
            throughput_tops=0.93,
            tops_per_watt=0.83,
            weight_update_hz=0.5e9,
            update_note="(< , FPGA-controlled DC supply)",
        ),
        MacroRecord(
            name="Conv accelerator [49]",
            reference="Xu et al., Nature 2021",
            throughput_tops=11.0,
            tops_per_watt=None,
            weight_update_hz=2.0,
            update_note="(WaveShaper, 500 ms settling)",
        ),
        MacroRecord(
            name="PCM dot-product [50]",
            reference="Zhou et al., Nat. Commun. 2023",
            throughput_tops=None,
            tops_per_watt=10.0,
            weight_update_hz=1e9,
            update_note="(~, PCM write speed)",
        ),
        MacroRecord(
            name="Reconfig. tensor core [51]",
            reference="Ouyang et al., Opt. Express 2024",
            throughput_tops=3.98,
            tops_per_watt=1.97,
            weight_update_hz=0.5e9,
            update_note="(< , FPGA-controlled DC supply)",
        ),
        MacroRecord(
            name="This Work",
            reference="reproduced system",
            throughput_tops=round(performance.throughput_tops, 2),
            tops_per_watt=round(performance.tops_per_watt, 2),
            weight_update_hz=performance.weight_update_rate,
        ),
    ]
    return records


def format_table_one(performance: PerformanceModel | None = None) -> str:
    """ASCII rendering of Table I."""
    headers = ("Reference", "Throughput (TOPS)", "Power Eff. (TOPS/W)", "Weight Update")
    rows = [record.formatted() for record in table_one(performance)]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) for col in range(4)
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
