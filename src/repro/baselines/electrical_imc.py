"""Electrical SRAM in-memory-compute macro baseline.

Section I of the paper motivates photonics by the scaling pain of
electrical IMC: bitline/wordline capacitance and wire resistance bound
both the compute cycle and the write (update) rate.  This behavioural
macro exposes those RC limits with representative 45 nm-class numbers
(after the SRAM-IMC references [8], [22], [23]) so benches can compare
throughput, efficiency and — the paper's headline — weight-update rate.
"""

from __future__ import annotations

from ..electronics.power import PowerLedger
from ..errors import ConfigurationError


class ElectricalImcMacro:
    """A rows x columns analog SRAM IMC macro with RC-limited timing."""

    def __init__(
        self,
        rows: int = 16,
        columns: int = 16,
        weight_bits: int = 3,
        supply_voltage: float = 0.9,
        cell_bitline_capacitance: float = 2e-15,
        wire_resistance_per_cell: float = 18.0,
        mac_energy: float = 30e-15,
        adc_energy_per_conversion: float = 300e-15,
        write_cycle: float = 1e-9,
    ) -> None:
        if rows < 1 or columns < 1 or weight_bits < 1:
            raise ConfigurationError("rows, columns and weight bits must be >= 1")
        self.rows = rows
        self.columns = columns
        self.weight_bits = weight_bits
        self.supply_voltage = supply_voltage
        self.cell_bitline_capacitance = cell_bitline_capacitance
        self.wire_resistance_per_cell = wire_resistance_per_cell
        self.mac_energy = mac_energy
        self.adc_energy_per_conversion = adc_energy_per_conversion
        self.write_cycle = write_cycle

    # -- RC-limited timing -------------------------------------------------
    @property
    def bitline_capacitance(self) -> float:
        """Total bitline capacitance seen by one column [F]."""
        return self.rows * self.cell_bitline_capacitance

    @property
    def bitline_resistance(self) -> float:
        """Total bitline wire resistance of one column [ohm]."""
        return self.rows * self.wire_resistance_per_cell

    @property
    def access_time(self) -> float:
        """Distributed-RC settling (Elmore, ~0.38 R C per segment chain)
        plus sense margin; bounds the analog accumulate cycle [s]."""
        elmore = 0.38 * self.bitline_resistance * self.bitline_capacitance
        sense_margin = 150e-12
        return elmore + sense_margin

    @property
    def compute_rate(self) -> float:
        """Analog MAC cycles per second."""
        return 1.0 / self.access_time

    @property
    def weight_update_rate(self) -> float:
        """Per-cell write rate [Hz] (paper motivation: ~1 GHz vs the
        pSRAM's 20 GHz)."""
        return 1.0 / self.write_cycle

    # -- throughput / power ---------------------------------------------------
    @property
    def ops_per_cycle(self) -> int:
        return 2 * self.rows * self.columns

    @property
    def throughput_tops(self) -> float:
        return self.ops_per_cycle * self.compute_rate / 1e12

    def power_ledger(self) -> PowerLedger:
        macs_per_second = self.rows * self.columns * self.compute_rate
        conversions_per_second = self.rows * self.compute_rate
        ledger = PowerLedger()
        ledger.add_electrical("MAC array", macs_per_second * self.mac_energy)
        ledger.add_electrical(
            "column ADCs", conversions_per_second * self.adc_energy_per_conversion
        )
        leakage = 0.5e-6 * self.rows * self.columns * self.weight_bits
        ledger.add_electrical("SRAM leakage", leakage)
        return ledger

    @property
    def total_power(self) -> float:
        return self.power_ledger().total

    @property
    def tops_per_watt(self) -> float:
        return self.throughput_tops / self.total_power
