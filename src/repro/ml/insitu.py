"""In-situ training on the photonic tensor core.

The paper's conclusion: the architecture's multi-GHz memory updates
make it 'suitable for large-scale datasets and in-situ training'.  This
module closes that loop for a linear classifier: the *forward pass runs
photonically* (analog matmul + eoADC readout), the gradient is computed
digitally from the quantized outputs, and every weight update streams
back into the pSRAM arrays at the 20 GHz rate — with the update-energy
ledger that the fast pSRAM write makes affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.quantization import encode_inputs, quantize_weights_differential
from ..core.tensor_core import PhotonicTensorCore
from ..errors import ConfigurationError
from .mapping import MatrixTiler


@dataclass
class TrainingLog:
    """Per-epoch record of an in-situ training run."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    weight_switch_events: list[int] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.losses)


class InSituTrainer:
    """Photonic-forward / digital-backward trainer for a linear layer.

    Maintains float master weights (the standard quantization-aware
    scheme); each step quantizes them to the differential pSRAM format,
    streams them into the core, runs the forward pass photonically, and
    applies a softmax-regression gradient computed from the *measured*
    (eoADC-quantized) scores.
    """

    def __init__(
        self,
        core: PhotonicTensorCore,
        in_features: int,
        classes: int,
        learning_rate: float = 0.1,
        gain: float = 1.0,
        seed: int = 11,
    ) -> None:
        if in_features < 1 or classes < 2:
            raise ConfigurationError("need >= 1 feature and >= 2 classes")
        if learning_rate <= 0.0:
            raise ConfigurationError("learning rate must be positive")
        self.core = core
        self.tiler = MatrixTiler(core)
        self.learning_rate = learning_rate
        self.gain = gain
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0.0, 0.1, (classes, in_features))
        self.bias = np.zeros(classes)
        self._energy_baseline = core.weight_update_energy()
        self._switch_baseline = self._total_switches()

    def _total_switches(self) -> int:
        return sum(core.weight_memory.switch_events for core in self.core.row_cores)

    def photonic_scores(self, x: np.ndarray) -> np.ndarray:
        """Forward one sample through the core with current weights."""
        q_pos, q_neg, scale = quantize_weights_differential(
            self.weights, self.core.weight_bits
        )
        encoded, input_scale = encode_inputs(x)
        positive = self.tiler.matvec(q_pos, encoded, gain=self.gain)
        negative = self.tiler.matvec(q_neg, encoded, gain=self.gain)
        return (positive - negative) * scale * input_scale + self.bias

    @staticmethod
    def _softmax(scores: np.ndarray) -> np.ndarray:
        shifted = scores - scores.max()
        exp = np.exp(shifted)
        return exp / exp.sum()

    def train_epoch(self, features: np.ndarray, labels: np.ndarray) -> float:
        """One pass over the data; returns the mean cross-entropy loss."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if len(features) != len(labels):
            raise ConfigurationError("features and labels must align")
        total_loss = 0.0
        for x, label in zip(features, labels):
            scores = self.photonic_scores(x)
            probabilities = self._softmax(scores)
            total_loss -= float(np.log(probabilities[label] + 1e-12))
            gradient = probabilities.copy()
            gradient[label] -= 1.0
            self.weights -= self.learning_rate * np.outer(gradient, x)
            self.bias -= self.learning_rate * gradient
        return total_loss / len(labels)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Photonic-inference accuracy with the current weights."""
        predictions = [
            int(np.argmax(self.photonic_scores(x))) for x in np.asarray(features)
        ]
        return float(np.mean(np.asarray(predictions) == np.asarray(labels)))

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 5,
    ) -> TrainingLog:
        """Run ``epochs`` of in-situ training; returns the log."""
        if epochs < 1:
            raise ConfigurationError("need at least one epoch")
        log = TrainingLog()
        for _ in range(epochs):
            loss = self.train_epoch(features, labels)
            log.losses.append(loss)
            log.accuracies.append(self.accuracy(features, labels))
            log.weight_switch_events.append(self._total_switches() - self._switch_baseline)
        return log

    def update_energy(self) -> float:
        """Wall-plug energy [J] of this trainer's weight re-streaming."""
        return self.core.weight_update_energy() - self._energy_baseline

    def updates_per_second_bound(self) -> float:
        """Weight-matrix re-streams per second the 20 GHz pSRAM allows.

        This is the paper's 'frequent, rapid updates' headline: the
        whole matrix rewrites in columns/update-rate seconds.
        """
        return 1.0 / self.core.weight_update_time()
