"""Tiling arbitrary matrix multiplies onto a fixed-size tensor core.

A W (out x in) @ x multiply larger than the physical rows x columns
array is split into row/column blocks; column blocks are accumulated
digitally (partial-sum addition), row blocks map to separate passes.
This is the standard IMC tiling flow the paper's scalability section
implies (replicating the 1 x m macro and the m x n array).
"""

from __future__ import annotations

import numpy as np

from ..core.tensor_core import PhotonicTensorCore
from ..errors import MappingError


def tile_grid(
    out_features: int, in_features: int, tile_rows: int, tile_columns: int
) -> tuple[int, int]:
    """(row_tiles, column_tiles) covering an (out, in) matrix."""
    if out_features < 1 or in_features < 1:
        raise MappingError("matrix dimensions must be >= 1")
    if tile_rows < 1 or tile_columns < 1:
        raise MappingError("tile dimensions must be >= 1")
    return -(-out_features // tile_rows), -(-in_features // tile_columns)


def iter_tile_blocks(
    out_features: int, in_features: int, tile_rows: int, tile_columns: int
):
    """Iterate the tile assignments of an (out, in) matrix.

    Yields ``(row_tile, col_tile, (row_start, row_stop), (col_start,
    col_stop))`` in row-major order; edge tiles are ragged (their stop
    bounds clip to the matrix), and callers zero-pad the remainder.
    Shared by the device-loop :class:`MatrixTiler` and the compiled
    :class:`repro.runtime.TiledMatmul` so the two paths cannot diverge
    on tiling geometry.
    """
    row_tiles, col_tiles = tile_grid(out_features, in_features, tile_rows, tile_columns)
    for row_tile in range(row_tiles):
        row_start = row_tile * tile_rows
        row_stop = min(row_start + tile_rows, out_features)
        for col_tile in range(col_tiles):
            col_start = col_tile * tile_columns
            col_stop = min(col_start + tile_columns, in_features)
            yield row_tile, col_tile, (row_start, row_stop), (col_start, col_stop)


class MatrixTiler:
    """Executes large quantized matmuls on one physical tensor core."""

    def __init__(self, core: PhotonicTensorCore) -> None:
        self.core = core

    def tile_counts(self, out_features: int, in_features: int) -> tuple[int, int]:
        """(row_tiles, column_tiles) needed for a W of that shape."""
        return tile_grid(out_features, in_features, self.core.rows, self.core.columns)

    def matvec(
        self, weight_matrix: np.ndarray, x: np.ndarray, gain: float = 1.0
    ) -> np.ndarray:
        """Photonic W @ x for arbitrary shapes via tiling.

        ``weight_matrix`` holds unsigned integer weights within the
        core's range; ``x`` holds analog intensities in [0, 1].  Column
        tiles are accumulated digitally; zero padding fills partial
        tiles.  ``gain`` is the per-call row-TIA range setting (see
        :meth:`repro.core.tensor_core.PhotonicTensorCore.matvec`).
        """
        weight_matrix = np.asarray(weight_matrix, dtype=int)
        x = np.asarray(x, dtype=float)
        if weight_matrix.ndim != 2:
            raise MappingError("weight matrix must be 2-D")
        out_features, in_features = weight_matrix.shape
        if x.shape != (in_features,):
            raise MappingError(
                f"input length {x.shape} does not match matrix columns {in_features}"
            )
        if np.any(weight_matrix < 0) or np.any(weight_matrix > self.core.max_weight):
            raise MappingError(
                f"weights must lie in [0, {self.core.max_weight}] for this core"
            )
        result = np.zeros(out_features)
        for _, _, (row_start, row_stop), (col_start, col_stop) in iter_tile_blocks(
            out_features, in_features, self.core.rows, self.core.columns
        ):
            block = np.zeros((self.core.rows, self.core.columns), dtype=int)
            block[: row_stop - row_start, : col_stop - col_start] = weight_matrix[
                row_start:row_stop, col_start:col_stop
            ]
            chunk = np.zeros(self.core.columns)
            chunk[: col_stop - col_start] = x[col_start:col_stop]

            self.core.load_weight_matrix(block)
            partial = self.core.matvec(chunk, gain=gain).estimates
            result[row_start:row_stop] += partial[: row_stop - row_start]
        return result

    def matmul(self, weight_matrix: np.ndarray, batch: np.ndarray) -> np.ndarray:
        """Photonic W @ X for X of shape (in_features, samples)."""
        batch = np.asarray(batch, dtype=float)
        if batch.ndim != 2:
            raise MappingError("batch must be 2-D (in_features, samples)")
        columns = [self.matvec(weight_matrix, batch[:, i]) for i in range(batch.shape[1])]
        return np.stack(columns, axis=1)
