"""A small MLP: float training in numpy, photonic quantized inference.

Training stays in software (the paper's core is an inference engine
with fast weight updates); inference maps every dense layer onto the
photonic tensor core via :class:`~repro.ml.layers.PhotonicDense`.
"""

from __future__ import annotations

import numpy as np

from ..core.tensor_core import PhotonicTensorCore
from ..errors import ConfigurationError
from .layers import PhotonicDense, relu


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _one_hot(labels: np.ndarray, classes: int) -> np.ndarray:
    encoded = np.zeros((len(labels), classes))
    encoded[np.arange(len(labels)), labels] = 1.0
    return encoded


class MLP:
    """One-hidden-layer perceptron trained with plain SGD."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        classes: int,
        seed: int = 17,
    ) -> None:
        if min(in_features, hidden_features, classes) < 1:
            raise ConfigurationError("all layer sizes must be >= 1")
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / in_features)
        scale2 = np.sqrt(2.0 / hidden_features)
        self.w1 = rng.normal(0.0, scale1, (hidden_features, in_features))
        self.b1 = np.zeros(hidden_features)
        self.w2 = rng.normal(0.0, scale2, (classes, hidden_features))
        self.b2 = np.zeros(classes)

    def forward(self, batch: np.ndarray) -> np.ndarray:
        """Float logits for a (samples, in_features) batch."""
        hidden = relu(batch @ self.w1.T + self.b1)
        return hidden @ self.w2.T + self.b2

    def train(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 60,
        learning_rate: float = 0.05,
        batch_size: int = 32,
        seed: int = 19,
    ) -> list[float]:
        """Cross-entropy SGD; returns the per-epoch training loss."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        classes = self.w2.shape[0]
        targets = _one_hot(labels, classes)
        rng = np.random.default_rng(seed)
        losses = []
        for _ in range(epochs):
            order = rng.permutation(len(labels))
            epoch_loss = 0.0
            for start in range(0, len(labels), batch_size):
                index = order[start : start + batch_size]
                x, t = features[index], targets[index]
                hidden_pre = x @ self.w1.T + self.b1
                hidden = relu(hidden_pre)
                logits = hidden @ self.w2.T + self.b2
                probabilities = _softmax(logits)
                epoch_loss += -float(
                    np.sum(t * np.log(probabilities + 1e-12))
                )
                grad_logits = (probabilities - t) / len(index)
                grad_w2 = grad_logits.T @ hidden
                grad_b2 = grad_logits.sum(axis=0)
                grad_hidden = (grad_logits @ self.w2) * (hidden_pre > 0.0)
                grad_w1 = grad_hidden.T @ x
                grad_b1 = grad_hidden.sum(axis=0)
                self.w2 -= learning_rate * grad_w2
                self.b2 -= learning_rate * grad_b2
                self.w1 -= learning_rate * grad_w1
                self.b1 -= learning_rate * grad_b1
            losses.append(epoch_loss / len(labels))
        return losses

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Float-inference accuracy."""
        predictions = np.argmax(self.forward(np.asarray(features, dtype=float)), axis=1)
        return float(np.mean(predictions == np.asarray(labels)))


class PhotonicMLP:
    """The trained MLP deployed on a photonic tensor core.

    ``calibration_batch`` (a slice of the training inputs) sets each
    layer's row-TIA gain so its activations fill the eoADC range — the
    per-layer range calibration standard in analog IMC deployments.
    ``runtime=True`` serves both layers through the compiled
    :mod:`repro.runtime` fast path instead of the per-sample device
    loop (same physics, batched evaluation).
    """

    def __init__(
        self,
        mlp: MLP,
        core: PhotonicTensorCore,
        calibration_batch: np.ndarray | None = None,
        runtime: bool = False,
    ) -> None:
        self.layer1 = PhotonicDense(mlp.w1, core, bias=mlp.b1, signed=True, runtime=runtime)
        self.layer2 = PhotonicDense(mlp.w2, core, bias=mlp.b2, signed=True, runtime=runtime)
        if calibration_batch is not None:
            batch = np.asarray(calibration_batch, dtype=float)
            self.layer1.calibrate_gain(batch)
            hidden = relu(batch @ mlp.w1.T + mlp.b1)
            self.layer2.calibrate_gain(hidden)

    def forward(self, batch: np.ndarray) -> np.ndarray:
        """Photonic logits: both dense layers run on the core."""
        hidden = relu(self.layer1.forward(batch))
        return self.layer2.forward(hidden)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Photonic-inference accuracy."""
        predictions = np.argmax(self.forward(np.asarray(features, dtype=float)), axis=1)
        return float(np.mean(predictions == np.asarray(labels)))
