"""Networks: float training in numpy, photonic quantized inference.

Training stays in software (the paper's core is an inference engine
with fast weight updates); inference maps every dense layer onto the
photonic tensor core via :class:`~repro.ml.layers.PhotonicDense` and
every convolution via :class:`~repro.ml.convolution.PhotonicConv2d`.
:class:`PhotonicCNN` composes conv + ReLU + average pooling + flatten
+ an MLP head — the im2col CNN workload the photonic-tensor-core
literature targets — with ``runtime=True`` serving every stage through
the compiled batched fast path.

These classes are the compile targets of the declarative front door:
:meth:`repro.api.Model.from_mlp` / :meth:`~repro.api.Model.from_cnn`
lift a trained model into a graph that
:meth:`repro.api.PhotonicSession.compile` deploys, and each class here
offers ``to_model()`` for the reverse trip — including any calibrated
per-layer TIA gains, so a tuned deployment moves onto a session
without recalibrating.
"""

from __future__ import annotations

import numpy as np

from ..core.tensor_core import PhotonicTensorCore
from ..errors import ConfigurationError
from .convolution import (
    PhotonicConv2d,
    avg_pool2d,
    im2col_channels,
    normalize_kernel_bank,
    output_shape,
)
from .layers import PhotonicDense, relu


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _one_hot(labels: np.ndarray, classes: int) -> np.ndarray:
    encoded = np.zeros((len(labels), classes))
    encoded[np.arange(len(labels)), labels] = 1.0
    return encoded


class MLP:
    """One-hidden-layer perceptron trained with plain SGD."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        classes: int,
        seed: int = 17,
    ) -> None:
        if min(in_features, hidden_features, classes) < 1:
            raise ConfigurationError("all layer sizes must be >= 1")
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / in_features)
        scale2 = np.sqrt(2.0 / hidden_features)
        self.w1 = rng.normal(0.0, scale1, (hidden_features, in_features))
        self.b1 = np.zeros(hidden_features)
        self.w2 = rng.normal(0.0, scale2, (classes, hidden_features))
        self.b2 = np.zeros(classes)

    def forward(self, batch: np.ndarray) -> np.ndarray:
        """Float logits for a (samples, in_features) batch."""
        hidden = relu(batch @ self.w1.T + self.b1)
        return hidden @ self.w2.T + self.b2

    def train(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 60,
        learning_rate: float = 0.05,
        batch_size: int = 32,
        seed: int = 19,
    ) -> list[float]:
        """Cross-entropy SGD; returns the per-epoch training loss."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        classes = self.w2.shape[0]
        targets = _one_hot(labels, classes)
        rng = np.random.default_rng(seed)
        losses = []
        for _ in range(epochs):
            order = rng.permutation(len(labels))
            epoch_loss = 0.0
            for start in range(0, len(labels), batch_size):
                index = order[start : start + batch_size]
                x, t = features[index], targets[index]
                hidden_pre = x @ self.w1.T + self.b1
                hidden = relu(hidden_pre)
                logits = hidden @ self.w2.T + self.b2
                probabilities = _softmax(logits)
                epoch_loss += -float(
                    np.sum(t * np.log(probabilities + 1e-12))
                )
                grad_logits = (probabilities - t) / len(index)
                grad_w2 = grad_logits.T @ hidden
                grad_b2 = grad_logits.sum(axis=0)
                grad_hidden = (grad_logits @ self.w2) * (hidden_pre > 0.0)
                grad_w1 = grad_hidden.T @ x
                grad_b1 = grad_hidden.sum(axis=0)
                self.w2 -= learning_rate * grad_w2
                self.b2 -= learning_rate * grad_b2
                self.w1 -= learning_rate * grad_w1
                self.b1 -= learning_rate * grad_b1
            losses.append(epoch_loss / len(labels))
        return losses

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Float-inference accuracy."""
        predictions = np.argmax(self.forward(np.asarray(features, dtype=float)), axis=1)
        return float(np.mean(predictions == np.asarray(labels)))

    def to_model(self):
        """This network as a declarative :class:`repro.api.Model`
        (Dense + ReLU + Dense), ready for
        :meth:`repro.api.PhotonicSession.compile`."""
        from ..api.graph import Model

        return Model.from_mlp(self)


class PhotonicMLP:
    """The trained MLP deployed on a photonic tensor core.

    ``calibration_batch`` (a slice of the training inputs) sets each
    layer's row-TIA gain so its activations fill the eoADC range — the
    per-layer range calibration standard in analog IMC deployments.
    ``runtime=True`` serves both layers through the compiled
    :mod:`repro.runtime` fast path instead of the per-sample device
    loop (same physics, batched evaluation).
    """

    def __init__(
        self,
        mlp: MLP,
        core: PhotonicTensorCore,
        calibration_batch: np.ndarray | None = None,
        runtime: bool = False,
    ) -> None:
        self.layer1 = PhotonicDense(mlp.w1, core, bias=mlp.b1, signed=True, runtime=runtime)
        self.layer2 = PhotonicDense(mlp.w2, core, bias=mlp.b2, signed=True, runtime=runtime)
        if calibration_batch is not None:
            batch = np.asarray(calibration_batch, dtype=float)
            self.layer1.calibrate_gain(batch)
            hidden = relu(batch @ mlp.w1.T + mlp.b1)
            self.layer2.calibrate_gain(hidden)

    def forward(self, batch: np.ndarray) -> np.ndarray:
        """Photonic logits: both dense layers run on the core."""
        hidden = relu(self.layer1.forward(batch))
        return self.layer2.forward(hidden)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Photonic-inference accuracy."""
        predictions = np.argmax(self.forward(np.asarray(features, dtype=float)), axis=1)
        return float(np.mean(predictions == np.asarray(labels)))

    def to_model(self):
        """This deployment as a declarative :class:`repro.api.Model`,
        carrying each dense layer's calibrated TIA gain so a session
        compile reproduces this exact configuration."""
        from ..api.graph import Dense, Model, ReLU

        return Model.sequential(
            Dense(self.layer1.float_weights, bias=self.layer1.bias,
                  gain=self.layer1.gain),
            ReLU(),
            Dense(self.layer2.float_weights, bias=self.layer2.bias,
                  gain=self.layer2.gain),
        )


def cnn_float_features(
    kernels: np.ndarray, images: np.ndarray, pool: int = 2, stride: int = 1
) -> np.ndarray:
    """Float conv + ReLU + average-pool + flatten feature extraction.

    This is the exact software counterpart of the photonic feature
    stage of :class:`PhotonicCNN` (no quantization, no photonics) —
    use it to train the MLP head before deploying, the same float-
    train/photonic-infer split as :class:`PhotonicMLP`.  ``images`` has
    shape (batch, H, W) or (batch, channels, H, W); returns
    (batch, features).
    """
    kernels = normalize_kernel_bank(kernels)
    flattened = kernels.reshape(kernels.shape[0], -1)
    kernel_size = kernels.shape[2]
    images = np.asarray(images, dtype=float)
    if images.ndim not in (3, 4):
        raise ConfigurationError(
            f"image batch must be 3-D or 4-D, got shape {images.shape}"
        )
    features = []
    for image in images:
        if image.ndim == 2:
            image = image[np.newaxis]
        patches = im2col_channels(image, kernel_size, stride)
        rows, cols = output_shape(image.shape[1:], kernel_size, stride)
        maps = (flattened @ patches).reshape(kernels.shape[0], rows, cols)
        features.append(avg_pool2d(relu(maps), pool).ravel())
    return np.stack(features)


class PhotonicCNN:
    """A CNN deployed on the photonic tensor core.

    Composition: :class:`~repro.ml.convolution.PhotonicConv2d` feature
    extraction (im2col matmuls on the core), digital ReLU + average
    pooling + flatten, then a :class:`PhotonicMLP` head.  The float
    ``kernels`` are quantized into differential pSRAM programs; the
    ``mlp`` head is float-trained on :func:`cnn_float_features` of the
    training images.  ``calibration_images`` sets the head layers' TIA
    gains from representative feature activations; ``runtime=True``
    serves the conv and both dense layers through the compiled
    :mod:`repro.runtime` fast path (same physics, dense batched
    evaluation).
    """

    def __init__(
        self,
        kernels: np.ndarray,
        mlp: MLP,
        core: PhotonicTensorCore,
        pool: int = 2,
        stride: int = 1,
        conv_gain: float = 1.0,
        calibration_images: np.ndarray | None = None,
        runtime: bool = False,
    ) -> None:
        self.conv = PhotonicConv2d(
            kernels, core, stride=stride, gain=conv_gain, runtime=runtime
        )
        self.pool = pool
        calibration_batch = None
        if calibration_images is not None:
            calibration_batch = cnn_float_features(
                kernels, calibration_images, pool=pool, stride=stride
            )
        if calibration_batch is not None and mlp.w1.shape[1] != calibration_batch.shape[1]:
            raise ConfigurationError(
                f"MLP head expects {mlp.w1.shape[1]} features, but the conv "
                f"stage produces {calibration_batch.shape[1]}"
            )
        self.head = PhotonicMLP(
            mlp, core, calibration_batch=calibration_batch, runtime=runtime
        )

    def features(self, images: np.ndarray) -> np.ndarray:
        """Photonic conv + ReLU + pool + flatten: (batch, features)."""
        maps = self.conv.forward_batch(images)
        pooled = avg_pool2d(relu(maps), self.pool)
        return pooled.reshape(len(pooled), -1)

    def forward(self, images: np.ndarray) -> np.ndarray:
        """Photonic logits for an image batch."""
        return self.head.forward(self.features(images))

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Photonic-inference accuracy."""
        predictions = np.argmax(self.forward(images), axis=1)
        return float(np.mean(predictions == np.asarray(labels)))

    def to_model(self):
        """This deployment as a declarative :class:`repro.api.Model`
        (conv + ReLU + pool + flatten + dense head), carrying the conv
        gain and each head layer's calibrated TIA gain."""
        from ..api.graph import AvgPool, Conv2d, Flatten, Model, ReLU

        head = self.head.to_model()
        return Model.sequential(
            Conv2d(self.conv.kernels, stride=self.conv.stride,
                   gain=self.conv.gain),
            ReLU(),
            AvgPool(self.pool),
            Flatten(),
            *head.layers,
        )
