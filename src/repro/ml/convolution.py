"""Convolution on the photonic tensor core via im2col.

The photonic-tensor-core literature the paper builds on (its refs [30],
[49]) runs convolutions by unrolling image patches into columns and
kernels into rows, turning conv2d into the matrix multiply the WDM core
natively executes.  This module implements that mapping: patches are
intensity-encoded per sample, kernels are quantized (differential
mapping for signed kernels) into the pSRAM weights once, and every
patch dot product flows through the analog path and the eoADC.
"""

from __future__ import annotations

import numpy as np

from ..core.quantization import encode_inputs, quantize_weights_differential
from ..core.tensor_core import PhotonicTensorCore
from ..errors import ConfigurationError
from .mapping import MatrixTiler


def im2col(image: np.ndarray, kernel_size: int, stride: int = 1) -> np.ndarray:
    """Unroll sliding windows of ``image`` into columns.

    Returns an array of shape (kernel_size^2, num_patches), patches in
    row-major output order.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ConfigurationError("im2col expects a 2-D image")
    if kernel_size < 1 or kernel_size > min(image.shape):
        raise ConfigurationError(
            f"kernel size {kernel_size} incompatible with image {image.shape}"
        )
    if stride < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride}")
    rows = (image.shape[0] - kernel_size) // stride + 1
    cols = (image.shape[1] - kernel_size) // stride + 1
    patches = np.empty((kernel_size * kernel_size, rows * cols))
    index = 0
    for r in range(rows):
        for c in range(cols):
            window = image[
                r * stride : r * stride + kernel_size,
                c * stride : c * stride + kernel_size,
            ]
            patches[:, index] = window.ravel()
            index += 1
    return patches


def output_shape(image_shape, kernel_size: int, stride: int = 1) -> tuple[int, int]:
    """Spatial output dimensions of a valid convolution."""
    rows = (image_shape[0] - kernel_size) // stride + 1
    cols = (image_shape[1] - kernel_size) // stride + 1
    if rows < 1 or cols < 1:
        raise ConfigurationError("kernel does not fit inside the image")
    return rows, cols


class PhotonicConv2d:
    """Valid 2-D convolution executed on the photonic tensor core.

    ``kernels`` has shape (num_kernels, k, k) with float (signed)
    taps.  The kernels are quantized once into differential pSRAM
    weight rows; :meth:`forward` then streams every image patch through
    the analog matmul path.
    """

    def __init__(
        self,
        kernels: np.ndarray,
        core: PhotonicTensorCore,
        stride: int = 1,
        gain: float = 1.0,
    ) -> None:
        kernels = np.asarray(kernels, dtype=float)
        if kernels.ndim != 3 or kernels.shape[1] != kernels.shape[2]:
            raise ConfigurationError("kernels must have shape (n, k, k)")
        if gain <= 0.0:
            raise ConfigurationError(f"gain must be positive, got {gain}")
        self.kernels = kernels
        self.kernel_size = kernels.shape[1]
        self.stride = stride
        self.core = core
        self.gain = gain
        flattened = kernels.reshape(kernels.shape[0], -1)
        self.q_positive, self.q_negative, self.weight_scale = (
            quantize_weights_differential(flattened, core.weight_bits)
        )
        self.tiler = MatrixTiler(core)

    @property
    def num_kernels(self) -> int:
        return self.kernels.shape[0]

    def forward(self, image: np.ndarray) -> np.ndarray:
        """Convolve ``image``; returns (num_kernels, out_rows, out_cols).

        Image intensities must be non-negative (they ride on optical
        carrier powers); each patch is peak-normalized for encoding and
        rescaled digitally after the eoADC.
        """
        image = np.asarray(image, dtype=float)
        if np.any(image < 0.0):
            raise ConfigurationError("image intensities must be non-negative")
        patches = im2col(image, self.kernel_size, self.stride)
        rows, cols = output_shape(image.shape, self.kernel_size, self.stride)
        outputs = np.empty((self.num_kernels, patches.shape[1]))
        for index in range(patches.shape[1]):
            encoded, input_scale = encode_inputs(patches[:, index])
            positive = self.tiler.matvec(self.q_positive, encoded, gain=self.gain)
            negative = self.tiler.matvec(self.q_negative, encoded, gain=self.gain)
            outputs[:, index] = (positive - negative) * self.weight_scale * input_scale
        return outputs.reshape(self.num_kernels, rows, cols)

    def forward_float(self, image: np.ndarray) -> np.ndarray:
        """Exact reference convolution (no photonics)."""
        image = np.asarray(image, dtype=float)
        patches = im2col(image, self.kernel_size, self.stride)
        rows, cols = output_shape(image.shape, self.kernel_size, self.stride)
        flattened = self.kernels.reshape(self.num_kernels, -1)
        return (flattened @ patches).reshape(self.num_kernels, rows, cols)

    def patch_throughput(self) -> float:
        """Patches per second: one eoADC sample per patch per kernel
        row, all kernels in parallel across core rows."""
        return self.core.row_adcs[0].sample_rate


def sobel_kernels() -> np.ndarray:
    """The classic horizontal/vertical edge kernels, for demos/tests."""
    sobel_x = np.array([[1.0, 0.0, -1.0], [2.0, 0.0, -2.0], [1.0, 0.0, -1.0]])
    sobel_y = sobel_x.T
    return np.stack([sobel_x, sobel_y])
