"""Convolution on the photonic tensor core via im2col.

The photonic-tensor-core literature the paper builds on (its refs [30],
[49]) runs convolutions by unrolling image patches into columns and
kernels into rows, turning conv2d into the matrix multiply the WDM core
natively executes.  This module implements that mapping: patches are
intensity-encoded per sample, kernels are quantized (differential
mapping for signed kernels) into the pSRAM weights once, and every
patch dot product flows through the analog path and the eoADC.

Two execution paths share that mapping.  The device-loop path streams
one patch at a time through :class:`~repro.ml.mapping.MatrixTiler`
(faithful, slow); ``runtime=True`` shards the flattened kernel matrix
onto compiled :class:`~repro.runtime.tiling.TiledMatmul` grids and
evaluates every patch of an image — or a whole image batch — as one
dense matmul, code-for-code equal to the loop.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..core.quantization import encode_inputs, quantize_weights_differential
from ..core.tensor_core import PhotonicTensorCore
from ..errors import ConfigurationError
from .mapping import MatrixTiler, tile_grid


def im2col(image: np.ndarray, kernel_size: int, stride: int = 1) -> np.ndarray:
    """Unroll sliding windows of ``image`` into columns.

    Returns an array of shape (kernel_size^2, num_patches), patches in
    row-major output order.  Extraction is a strided view + reshape —
    no Python window loop — but the columns are value-for-value the
    windows' row-major ravels.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ConfigurationError("im2col expects a 2-D image")
    _validate_window(image.shape, kernel_size, stride)
    windows = sliding_window_view(image, (kernel_size, kernel_size))
    windows = windows[::stride, ::stride]
    return windows.reshape(-1, kernel_size * kernel_size).T


def im2col_channels(volume: np.ndarray, kernel_size: int, stride: int = 1) -> np.ndarray:
    """Multi-channel im2col: (channels, H, W) -> (channels * k^2, patches).

    Column p holds patch p's (channels, k, k) window flattened
    channel-major, matching ``kernels.reshape(n, -1)`` of a
    (n, channels, k, k) kernel bank.
    """
    volume = np.asarray(volume, dtype=float)
    if volume.ndim != 3:
        raise ConfigurationError("im2col_channels expects a (channels, H, W) volume")
    _validate_window(volume.shape[1:], kernel_size, stride)
    windows = sliding_window_view(volume, (kernel_size, kernel_size), axis=(1, 2))
    windows = windows[:, ::stride, ::stride]
    channels = volume.shape[0]
    # (channels, rows, cols, k, k) -> (patches, channels * k^2) -> transpose.
    patches = windows.transpose(1, 2, 0, 3, 4).reshape(
        -1, channels * kernel_size * kernel_size
    )
    return patches.T


def _validate_window(image_shape, kernel_size: int, stride: int) -> None:
    if kernel_size < 1 or kernel_size > min(image_shape):
        raise ConfigurationError(
            f"kernel size {kernel_size} incompatible with image {tuple(image_shape)}"
        )
    if stride < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride}")


def output_shape(image_shape, kernel_size: int, stride: int = 1) -> tuple[int, int]:
    """Spatial output dimensions of a valid convolution."""
    rows = (image_shape[0] - kernel_size) // stride + 1
    cols = (image_shape[1] - kernel_size) // stride + 1
    if rows < 1 or cols < 1:
        raise ConfigurationError("kernel does not fit inside the image")
    return rows, cols


def encode_patch_batch(patches: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized per-column :func:`~repro.core.quantization.encode_inputs`.

    Each patch column is peak-normalized into the [0, 1] analog range
    with its own scale, exactly as the per-patch loop does: column p of
    the result times ``scales[p]`` reproduces ``patches[:, p]``.
    """
    patches = np.asarray(patches, dtype=float)
    if np.any(patches < 0.0):
        raise ConfigurationError(
            "analog intensity encoding requires non-negative inputs; "
            "shift or split signed activations first"
        )
    peaks = patches.max(axis=0, initial=0.0)
    scales = np.where(peaks > 0.0, peaks, 1.0)
    return patches / scales, scales


def normalize_kernel_bank(kernels) -> np.ndarray:
    """Validate a float kernel bank and promote it to 4-D.

    Accepts (num_kernels, k, k) — promoted to one input channel — or
    (num_kernels, channels, k, k) with square taps.  Shared by the conv
    layer, the float feature extractor and the serving conv route so
    the accepted shapes cannot drift apart.
    """
    kernels = np.asarray(kernels, dtype=float)
    if kernels.ndim == 3:
        kernels = kernels[:, np.newaxis]
    if kernels.ndim != 4 or kernels.shape[2] != kernels.shape[3]:
        raise ConfigurationError(
            "kernels must have shape (n, k, k) or (n, channels, k, k)"
        )
    return kernels


def normalize_image(
    image, channels: int, require_non_negative: bool = True
) -> np.ndarray:
    """Validate an input image and promote it to (channels, H, W).

    A 2-D image is promoted to one channel; a 3-D volume must match
    ``channels``.  Non-negativity is enforced by default (intensities
    ride on optical carrier powers); the float reference path turns it
    off.  Shared by the conv layer and the serving conv route.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim == 2:
        image = image[np.newaxis]
    if image.ndim != 3 or image.shape[0] != channels:
        raise ConfigurationError(
            f"image must be (H, W) or ({channels}, H, W), got shape {image.shape}"
        )
    if require_non_negative and np.any(image < 0.0):
        raise ConfigurationError("image intensities must be non-negative")
    return image


def avg_pool2d(maps: np.ndarray, size: int = 2) -> np.ndarray:
    """Non-overlapping average pooling over the trailing two axes.

    Accepts any leading shape (..., H, W); trailing rows/columns that
    do not fill a full window are cropped, the standard floor-mode
    pooling convention.
    """
    maps = np.asarray(maps, dtype=float)
    if size < 1:
        raise ConfigurationError(f"pool size must be >= 1, got {size}")
    if maps.ndim < 2:
        raise ConfigurationError("avg_pool2d expects at least a 2-D array")
    rows, cols = maps.shape[-2] // size, maps.shape[-1] // size
    if rows < 1 or cols < 1:
        raise ConfigurationError(
            f"pool size {size} does not fit feature map {maps.shape[-2:]}"
        )
    cropped = maps[..., : rows * size, : cols * size]
    shape = maps.shape[:-2] + (rows, size, cols, size)
    return cropped.reshape(shape).mean(axis=(-3, -1))


class PhotonicConv2d:
    """Valid 2-D convolution executed on the photonic tensor core.

    ``kernels`` has shape (num_kernels, k, k) — or (num_kernels,
    in_channels, k, k) for multi-channel inputs — with float (signed)
    taps.  The kernels are quantized once into differential pSRAM
    weight rows; :meth:`forward` then streams every image patch through
    the analog matmul path.

    ``runtime=True`` switches the forward passes onto the compiled
    :class:`~repro.runtime.tiling.TiledMatmul` fast path: the flattened
    kernel matrix is sharded once onto compiled tile grids (same tile
    shape, weight/ADC bits and technology as ``core``) and all patches
    of an image — or of a whole batch via :meth:`forward_batch` —
    evaluate as dense matmuls, matching the loop path code-for-code.
    """

    def __init__(
        self,
        kernels: np.ndarray,
        core: PhotonicTensorCore,
        stride: int = 1,
        gain: float = 1.0,
        runtime: bool = False,
    ) -> None:
        kernels = normalize_kernel_bank(kernels)
        if gain <= 0.0:
            raise ConfigurationError(f"gain must be positive, got {gain}")
        self.kernels = kernels
        self.kernel_size = kernels.shape[2]
        self.stride = stride
        self.core = core
        self.gain = gain
        flattened = kernels.reshape(kernels.shape[0], -1)
        self.q_positive, self.q_negative, self.weight_scale = (
            quantize_weights_differential(flattened, core.weight_bits)
        )
        self.tiler = MatrixTiler(core)
        self.runtime = runtime
        self._runtime_positive = None
        self._runtime_negative = None

    @property
    def num_kernels(self) -> int:
        return self.kernels.shape[0]

    @property
    def in_channels(self) -> int:
        return self.kernels.shape[1]

    @property
    def taps(self) -> int:
        """Flattened kernel length: in_channels * kernel_size^2."""
        return self.in_channels * self.kernel_size * self.kernel_size

    # -- geometry ------------------------------------------------------------
    def _shaped_image(self, image) -> np.ndarray:
        return normalize_image(image, self.in_channels, require_non_negative=False)

    def _validated_image(self, image) -> np.ndarray:
        return normalize_image(image, self.in_channels)

    def _patches(self, image: np.ndarray) -> np.ndarray:
        return im2col_channels(image, self.kernel_size, self.stride)

    # -- evaluation ----------------------------------------------------------
    def forward(self, image: np.ndarray) -> np.ndarray:
        """Convolve ``image``; returns (num_kernels, out_rows, out_cols).

        Image intensities must be non-negative (they ride on optical
        carrier powers); each patch is peak-normalized for encoding and
        rescaled digitally after the eoADC.
        """
        image = self._validated_image(image)
        patches = self._patches(image)
        rows, cols = output_shape(image.shape[1:], self.kernel_size, self.stride)
        outputs = self._forward_patches(patches)
        return outputs.reshape(self.num_kernels, rows, cols)

    def forward_batch(self, images: np.ndarray) -> np.ndarray:
        """Convolve a whole image batch.

        ``images`` has shape (batch, H, W) or (batch, channels, H, W);
        returns (batch, num_kernels, out_rows, out_cols).  On the
        runtime path every patch of every image lands in one dense
        compiled matmul.
        """
        images = np.asarray(images, dtype=float)
        if images.ndim not in (3, 4) or len(images) == 0:
            raise ConfigurationError(
                f"image batch must be non-empty 3-D or 4-D, got shape {images.shape}"
            )
        stack = [self._validated_image(image) for image in images]
        rows, cols = output_shape(stack[0].shape[1:], self.kernel_size, self.stride)
        patches = np.concatenate([self._patches(image) for image in stack], axis=1)
        outputs = self._forward_patches(patches)
        return outputs.reshape(self.num_kernels, len(stack), rows, cols).transpose(
            1, 0, 2, 3
        )

    def _forward_patches(self, patches: np.ndarray) -> np.ndarray:
        """(taps, patches) -> (num_kernels, patches) dot products."""
        if self.runtime:
            return self._forward_patches_runtime(patches)
        has_negative = bool(np.any(self.q_negative))
        outputs = np.empty((self.num_kernels, patches.shape[1]))
        for index in range(patches.shape[1]):
            encoded, input_scale = encode_inputs(patches[:, index])
            raw = self.tiler.matvec(self.q_positive, encoded, gain=self.gain)
            if has_negative:
                raw = raw - self.tiler.matvec(self.q_negative, encoded, gain=self.gain)
            outputs[:, index] = raw * self.weight_scale * input_scale
        return outputs

    def _forward_patches_runtime(self, patches: np.ndarray) -> np.ndarray:
        positive_engine, negative_engine = self.runtime_engines()
        encoded, scales = encode_patch_batch(patches)
        raw = positive_engine.matmul(encoded, gain=self.gain)
        if negative_engine is not None:
            raw = raw - negative_engine.matmul(encoded, gain=self.gain)
        return raw * self.weight_scale * scales

    def runtime_engines(self):
        """Compiled (positive, negative) tile grids for the quantized
        kernel arrays, compiling lazily on first use.  Session compiles
        pre-bind cached engines via :meth:`attach_engines`."""
        from .layers import compile_differential_engines

        if self._runtime_positive is None:
            self._runtime_positive, self._runtime_negative = (
                compile_differential_engines(self.q_positive, self.q_negative, self.core)
            )
        return self._runtime_positive, self._runtime_negative

    def attach_engines(self, positive, negative) -> None:
        """Bind pre-compiled tile engines (e.g. a cached conv program
        from a :class:`~repro.api.PhotonicSession` cache) so the
        runtime forward skips its lazy compile."""
        self._runtime_positive = positive
        self._runtime_negative = negative

    def invalidate_runtime(self) -> None:
        """Drop compiled runtime engines so the next runtime forward
        recompiles from the current quantized arrays — call after
        mutating ``q_positive``/``q_negative`` in place, exactly as
        :meth:`PhotonicDense.invalidate_runtime` on the dense layer."""
        self._runtime_positive = None
        self._runtime_negative = None

    def forward_float(self, image: np.ndarray) -> np.ndarray:
        """Exact reference convolution (no photonics)."""
        image = self._shaped_image(image)
        patches = self._patches(image)
        rows, cols = output_shape(image.shape[1:], self.kernel_size, self.stride)
        flattened = self.kernels.reshape(self.num_kernels, -1)
        return (flattened @ patches).reshape(self.num_kernels, rows, cols)

    # -- accounting ----------------------------------------------------------
    @property
    def analog_passes(self) -> int:
        """Sequential analog passes per patch.

        The (num_kernels, taps) kernel matrix covers a grid of
        row/column tiles, each needing its own pass on the physical
        core; a signed kernel bank additionally runs the negative
        differential array, doubling the passes.  An all-non-negative
        bank skips that second array entirely.
        """
        row_tiles, column_tiles = tile_grid(
            self.num_kernels, self.taps, self.core.rows, self.core.columns
        )
        arrays = 2 if np.any(self.q_negative) else 1
        return row_tiles * column_tiles * arrays

    def patch_throughput(self) -> float:
        """Patches per second at the eoADC sample rate.

        One ADC sample period buys one analog pass; a patch needs
        :attr:`analog_passes` of them (tile-grid passes times the
        differential arrays), so throughput is the sample rate divided
        by that pass count.
        """
        return self.core.row_adcs[0].sample_rate / self.analog_passes


def sobel_kernels() -> np.ndarray:
    """The classic horizontal/vertical edge kernels, for demos/tests."""
    sobel_x = np.array([[1.0, 0.0, -1.0], [2.0, 0.0, -2.0], [1.0, 0.0, -1.0]])
    sobel_y = sobel_x.T
    return np.stack([sobel_x, sobel_y])
