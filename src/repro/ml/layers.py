"""Neural-network layers executing on the photonic tensor core.

:class:`PhotonicDense` owns a float weight matrix, quantizes it to the
core's unsigned n-bit format, and runs every forward matmul through the
simulated photonics — analog intensity inputs, pSRAM-stored weights,
WDM multiplication, eoADC readout — then undoes the scalings digitally.

Signed weights use the *differential-column* mapping: W = (W+ - W-)
with the positive and negative magnitudes stored in separate passes and
subtracted digitally.  Each layer also carries a programmable row-TIA
gain (:meth:`PhotonicDense.calibrate_gain`) so its dot-product range
fills the eoADC full scale — the ADC range calibration every analog IMC
deployment performs.
"""

from __future__ import annotations

import numpy as np

from ..core.quantization import (
    encode_inputs,
    quantize_weights,
    quantize_weights_differential,
)
from ..core.tensor_core import PhotonicTensorCore
from ..errors import ConfigurationError
from .mapping import MatrixTiler


def relu(values: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(values, 0.0)


def compile_differential_engines(q_positive, q_negative, core: PhotonicTensorCore):
    """Compile a differential weight pair onto tiled runtime grids.

    Returns ``(positive_engine, negative_engine)`` — the negative
    engine is None when every negative tap is zero, so purely
    non-negative programs never spend the second analog pass.  Every
    quantization-relevant setting of ``core`` (tile shape, weight bits,
    a non-default ADC precision, technology) is mirrored so the
    compiled tiles digitize exactly as the device loop would.  Shared
    by :class:`PhotonicDense` and
    :class:`~repro.ml.convolution.PhotonicConv2d`.
    """
    from ..runtime.tiling import TiledMatmul

    tile_settings = {
        "tile_rows": core.rows,
        "tile_columns": core.columns,
        "weight_bits": core.weight_bits,
        "adc_bits": core.row_adcs[0].bits,
        "technology": core.technology,
        "gain": 1.0,
        "ladder_cache": core.runtime_ladder_cache,
        "drift_state": core.drift_state,
    }
    positive = TiledMatmul(q_positive, **tile_settings)
    negative = (
        TiledMatmul(q_negative, **tile_settings) if np.any(q_negative) else None
    )
    return positive, negative


class PhotonicDense:
    """A dense layer whose matmul runs on the photonic tensor core.

    ``runtime=True`` switches :meth:`forward` onto the compiled
    :class:`repro.runtime.TiledMatmul` fast path: the quantized weight
    arrays are sharded once onto dedicated compiled tile grids (same
    tile shape and technology as ``core``) and every batch evaluates as
    dense numpy products instead of the per-sample device loop.  The
    physics is identical — the engines are compiled from the same
    device models — so the outputs match the loop path.
    """

    def __init__(
        self,
        weights: np.ndarray,
        core: PhotonicTensorCore,
        bias: np.ndarray | None = None,
        signed: bool = True,
        runtime: bool = False,
    ) -> None:
        self.core = core
        self.signed = signed
        self.tiler = MatrixTiler(core)
        #: Programmable row-TIA gain (ADC range setting); 1.0 = native.
        self.gain = 1.0
        self.runtime = runtime
        self._runtime_positive = None
        self._runtime_negative = None
        self.bias = None
        self.set_weights(weights, bias=bias)

    @property
    def out_features(self) -> int:
        return self.float_weights.shape[0]

    @property
    def in_features(self) -> int:
        return self.float_weights.shape[1]

    def set_weights(self, weights, bias: np.ndarray | None = None) -> None:
        """Replace the float weights (and optionally the bias).

        Requantizes into the pSRAM representation and invalidates any
        compiled runtime engines, so the next runtime forward recompiles
        against the new program instead of silently serving stale
        weights.  With ``bias=None`` the existing bias is kept when its
        shape still fits, otherwise it resets to zeros.
        """
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise ConfigurationError("dense weights must be 2-D (out, in)")
        if bias is None:
            keep = self.bias is not None and self.bias.shape == (weights.shape[0],)
            bias = self.bias if keep else np.zeros(weights.shape[0])
        bias = np.asarray(bias, dtype=float)
        if bias.shape != (weights.shape[0],):
            raise ConfigurationError("bias shape must match output features")
        self.float_weights = weights
        self.bias = bias
        if self.signed:
            self.q_positive, self.q_negative, self.weight_scale = (
                quantize_weights_differential(weights, self.core.weight_bits)
            )
        else:
            self.q_positive, self.weight_scale = quantize_weights(
                weights, self.core.weight_bits, signed=False
            )
            self.q_negative = np.zeros_like(self.q_positive)
        self.invalidate_runtime()

    def invalidate_runtime(self) -> None:
        """Drop compiled runtime engines so the next runtime forward
        recompiles from the current quantized arrays.  Called by
        :meth:`set_weights`; call it directly after mutating
        ``float_weights``/``q_positive``/``q_negative`` in place."""
        self._runtime_positive = None
        self._runtime_negative = None

    def calibrate_gain(self, batch: np.ndarray, headroom: float = 1.25) -> float:
        """Pick the TIA gain from a representative input batch.

        Estimates the largest quantized-array dot product the batch
        produces and sets the gain so it lands at ``1/headroom`` of the
        ADC full scale.  Returns the chosen gain.
        """
        batch = np.asarray(batch, dtype=float)
        if batch.ndim != 2 or batch.shape[1] != self.in_features:
            raise ConfigurationError(
                f"calibration batch must be (samples, {self.in_features})"
            )
        peak = 0.0
        for sample in batch:
            encoded, _ = encode_inputs(sample)
            peak = max(
                peak,
                float((self.q_positive @ encoded).max(initial=0.0)),
                float((self.q_negative @ encoded).max(initial=0.0)),
            )
        full_scale = self.core.columns * self.core.max_weight
        if peak <= 0.0:
            self.gain = 1.0
        else:
            self.gain = max(full_scale / (peak * headroom), 1.0)
        return self.gain

    def forward_sample(self, x: np.ndarray) -> np.ndarray:
        """One sample through the photonic matmul (float in, float out)."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.in_features,):
            raise ConfigurationError(f"input must have length {self.in_features}")
        encoded, input_scale = encode_inputs(x)
        positive = self.tiler.matvec(self.q_positive, encoded, gain=self.gain)
        if self.signed and np.any(self.q_negative):
            negative = self.tiler.matvec(self.q_negative, encoded, gain=self.gain)
        else:
            negative = 0.0
        raw = positive - negative
        return raw * self.weight_scale * input_scale + self.bias

    def runtime_engines(self):
        """Compiled (positive, negative) tile grids for the quantized
        weight arrays, compiling lazily on first use.  The negative
        engine is None for an all-non-negative program.  Session
        compiles pre-bind cached engines via :meth:`attach_engines`."""
        if self._runtime_positive is None:
            self._runtime_positive, self._runtime_negative = (
                compile_differential_engines(self.q_positive, self.q_negative, self.core)
            )
        return self._runtime_positive, self._runtime_negative

    def attach_engines(self, positive, negative) -> None:
        """Bind pre-compiled tile engines (e.g. a cached
        :class:`~repro.runtime.tiling.DifferentialProgram` pair from a
        :class:`~repro.api.PhotonicSession` program cache) so the
        runtime forward skips its lazy compile."""
        self._runtime_positive = positive
        self._runtime_negative = negative

    def _forward_runtime(self, batch: np.ndarray) -> np.ndarray:
        """Batched compiled-engine forward (one matmul per weight array)."""
        positive_engine, negative_engine = self.runtime_engines()
        samples = batch.shape[0]
        encoded = np.empty((self.in_features, samples))
        input_scales = np.empty(samples)
        for index, sample in enumerate(batch):
            encoded[:, index], input_scales[index] = encode_inputs(sample)
        raw = positive_engine.matmul(encoded, gain=self.gain)
        if negative_engine is not None:
            raw = raw - negative_engine.matmul(encoded, gain=self.gain)
        return raw.T * self.weight_scale * input_scales[:, np.newaxis] + self.bias

    def forward(self, batch: np.ndarray) -> np.ndarray:
        """Batch forward: batch of shape (samples, in_features)."""
        batch = np.asarray(batch, dtype=float)
        if batch.ndim != 2 or batch.shape[1] != self.in_features:
            raise ConfigurationError(
                f"batch must be (samples, {self.in_features}), got {batch.shape}"
            )
        if self.runtime:
            return self._forward_runtime(batch)
        return np.stack([self.forward_sample(sample) for sample in batch])

    def forward_float(self, batch: np.ndarray) -> np.ndarray:
        """Float reference forward (no photonics, no quantization)."""
        batch = np.asarray(batch, dtype=float)
        return batch @ self.float_weights.T + self.bias
