"""Synthetic datasets (no network access: everything is generated).

Two workloads exercise the examples and benches:

* :func:`gaussian_blobs` — separable Gaussian clusters, the smallest
  classification task that still shows quantization effects.
* :func:`procedural_digits` — 8x8 glyphs of the digits 0-9 rendered
  from stroke templates with noise and jitter, an MNIST-flavoured
  stand-in sized for a 16-column tensor core after pooling.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

# 8x8 stroke templates for the ten digits ('1' marks lit pixels).
_DIGIT_TEMPLATES = [
    ["00111100", "01000010", "01000110", "01001010", "01010010", "01100010", "00111100", "00000000"],
    ["00011000", "00111000", "00011000", "00011000", "00011000", "00011000", "01111110", "00000000"],
    ["00111100", "01000010", "00000010", "00001100", "00110000", "01000000", "01111110", "00000000"],
    ["00111100", "01000010", "00000010", "00011100", "00000010", "01000010", "00111100", "00000000"],
    ["00000100", "00001100", "00010100", "00100100", "01111110", "00000100", "00000100", "00000000"],
    ["01111110", "01000000", "01111100", "00000010", "00000010", "01000010", "00111100", "00000000"],
    ["00111100", "01000000", "01111100", "01000010", "01000010", "01000010", "00111100", "00000000"],
    ["01111110", "00000010", "00000100", "00001000", "00010000", "00100000", "00100000", "00000000"],
    ["00111100", "01000010", "00111100", "01000010", "01000010", "01000010", "00111100", "00000000"],
    ["00111100", "01000010", "01000010", "00111110", "00000010", "00000010", "00111100", "00000000"],
]


def gaussian_blobs(
    samples_per_class: int = 60,
    classes: int = 3,
    features: int = 16,
    spread: float = 0.9,
    seed: int = 3,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian clusters with non-negative features.

    Returns (X, y): X of shape (samples, features) in [0, inf) suitable
    for intensity encoding, y integer class labels.
    """
    if samples_per_class < 1 or classes < 2 or features < 1:
        raise ConfigurationError("need >= 1 sample, >= 2 classes, >= 1 feature")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(1.0, 4.0, size=(classes, features))
    data = []
    labels = []
    for index, center in enumerate(centers):
        cluster = rng.normal(center, spread, size=(samples_per_class, features))
        data.append(np.clip(cluster, 0.0, None))
        labels.append(np.full(samples_per_class, index))
    features_matrix = np.vstack(data)
    label_vector = np.concatenate(labels)
    order = rng.permutation(len(label_vector))
    return features_matrix[order], label_vector[order]


def procedural_digits(
    samples_per_class: int = 40,
    noise: float = 0.15,
    seed: int = 5,
    pooled: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Noisy 8x8 digit glyphs, optionally 2x2 average-pooled to 4x4.

    Pooling yields 16 features — exactly one 16-column tensor-core row
    per output class.  Pixel intensities lie in [0, 1].
    """
    if samples_per_class < 1:
        raise ConfigurationError("need at least one sample per class")
    rng = np.random.default_rng(seed)
    templates = np.array(
        [
            [[float(char) for char in row] for row in template]
            for template in _DIGIT_TEMPLATES
        ]
    )
    images = []
    labels = []
    for digit in range(10):
        base = templates[digit]
        for _ in range(samples_per_class):
            image = base.copy()
            # Sub-pixel jitter: shift by -1/0/+1 in each axis.
            shift_row, shift_col = rng.integers(-1, 2, size=2)
            image = np.roll(image, (shift_row, shift_col), axis=(0, 1))
            image = np.clip(image + rng.normal(0.0, noise, image.shape), 0.0, 1.0)
            images.append(image)
            labels.append(digit)
    stack = np.array(images)
    label_vector = np.array(labels)
    if pooled:
        stack = stack.reshape(-1, 4, 2, 4, 2).mean(axis=(2, 4))
    flat = stack.reshape(len(stack), -1)
    order = rng.permutation(len(label_vector))
    return flat[order], label_vector[order]


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.25,
    seed: int = 9,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError("test fraction must be in (0, 1)")
    features = np.asarray(features)
    labels = np.asarray(labels)
    if len(features) != len(labels):
        raise ConfigurationError("features and labels must have equal length")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(labels))
    cut = int(round(len(labels) * (1.0 - test_fraction)))
    train_idx, test_idx = order[:cut], order[cut:]
    return features[train_idx], features[test_idx], labels[train_idx], labels[test_idx]
