"""ML application layer: running neural workloads on the tensor core.

The paper motivates the architecture with AI/ML inference; this package
closes the loop: synthetic datasets, a float-trained MLP, and layers
that execute their matmuls *through* the simulated photonic tensor core
with quantized weights and p-bit eoADC outputs.
"""

from .convolution import (
    PhotonicConv2d,
    avg_pool2d,
    im2col,
    im2col_channels,
    output_shape,
    sobel_kernels,
)
from .datasets import gaussian_blobs, procedural_digits, train_test_split
from .insitu import InSituTrainer, TrainingLog
from .layers import PhotonicDense, compile_differential_engines, relu
from .mapping import MatrixTiler
from .network import MLP, PhotonicCNN, PhotonicMLP, cnn_float_features

__all__ = [
    "avg_pool2d",
    "cnn_float_features",
    "compile_differential_engines",
    "gaussian_blobs",
    "im2col",
    "im2col_channels",
    "InSituTrainer",
    "MatrixTiler",
    "MLP",
    "output_shape",
    "PhotonicCNN",
    "PhotonicConv2d",
    "PhotonicDense",
    "PhotonicMLP",
    "procedural_digits",
    "relu",
    "sobel_kernels",
    "train_test_split",
    "TrainingLog",
]
