"""ML application layer: running neural workloads on the tensor core.

The paper motivates the architecture with AI/ML inference; this package
closes the loop: synthetic datasets, a float-trained MLP, and layers
that execute their matmuls *through* the simulated photonic tensor core
with quantized weights and p-bit eoADC outputs.
"""

from .convolution import PhotonicConv2d, im2col, output_shape, sobel_kernels
from .datasets import gaussian_blobs, procedural_digits, train_test_split
from .insitu import InSituTrainer, TrainingLog
from .layers import PhotonicDense, relu
from .mapping import MatrixTiler
from .network import MLP, PhotonicMLP

__all__ = [
    "gaussian_blobs",
    "im2col",
    "InSituTrainer",
    "MatrixTiler",
    "MLP",
    "output_shape",
    "PhotonicConv2d",
    "PhotonicDense",
    "PhotonicMLP",
    "procedural_digits",
    "relu",
    "sobel_kernels",
    "train_test_split",
    "TrainingLog",
]
