"""Inline suppressions: ``repro-lint: disable=<rule> -- <reason>``.

A finding is suppressed by a marker comment on the *same line*.  The
reason after ``--`` is mandatory: a suppression without one is itself
reported as a ``suppression-syntax`` error, so every exemption in the
tree documents why the contract does not apply there.  Several rules
suppress at once with ``disable=rule-a,rule-b``.

Markers are read off the token stream (comment tokens only), so a
docstring or string literal *describing* the syntax never activates
it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding, Severity

#: The marker grammar, matched against comment tokens only (see the
#: module docstring for the written-out syntax; a literal example here
#: would register itself as a stale suppression of this very file).
MARKER = re.compile(
    r"repro-lint:\s*disable=(?P<rules>[a-z0-9_,\-\s]+?)"
    r"(?:--\s*(?P<reason>.*\S))?\s*$"
)

SUPPRESSION_SYNTAX = "suppression-syntax"


@dataclass
class Suppression:
    """One parsed marker: the rules it silences and where it sits."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class FileSuppressions:
    """Every marker of one file, plus the malformed ones as findings."""

    path: str
    by_line: dict[int, Suppression] = field(default_factory=dict)
    syntax_findings: list[Finding] = field(default_factory=list)

    def covers(self, line: int, rule: str) -> bool:
        """True (and marks the marker used) when ``rule`` is disabled
        on ``line``."""
        marker = self.by_line.get(line)
        if marker is None or rule not in marker.rules:
            return False
        marker.used = True
        return True


def _comment_tokens(source: str) -> list[tuple[int, int, str]]:
    """Every comment in ``source`` as ``(line, column, text)``.

    Tokenization errors (the runner only feeds sources that already
    parsed as Python) yield whatever comments were read before the
    error rather than raising.
    """
    comments = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append(
                    (token.start[0], token.start[1] + 1, token.string)
                )
    except (tokenize.TokenizeError, IndentationError):
        pass
    return comments


def scan_suppressions(path: str, source: str) -> FileSuppressions:
    """Parse every ``repro-lint: disable`` marker out of ``source``.

    Markers with no reason — or with an empty rule list — become
    ``suppression-syntax`` findings instead of active suppressions, so
    a half-written marker fails the run rather than silently silencing
    nothing (or everything).
    """
    result = FileSuppressions(path=path)
    for lineno, column, text in _comment_tokens(source):
        if "repro-lint" not in text:
            continue
        match = MARKER.search(text)
        if match is None:
            result.syntax_findings.append(
                Finding(
                    rule=SUPPRESSION_SYNTAX,
                    severity=Severity.ERROR,
                    path=path,
                    line=lineno,
                    column=column,
                    message=(
                        "malformed repro-lint marker; use "
                        "'repro-lint: disable=<rule>[,<rule>] -- <reason>'"
                    ),
                )
            )
            continue
        rules = tuple(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not rules or not reason:
            what = "a rule name" if not rules else "a reason after '--'"
            result.syntax_findings.append(
                Finding(
                    rule=SUPPRESSION_SYNTAX,
                    severity=Severity.ERROR,
                    path=path,
                    line=lineno,
                    column=column,
                    message=(
                        f"repro-lint suppression needs {what}: every "
                        "exemption must say which rule it disables and why"
                    ),
                )
            )
            continue
        result.by_line[lineno] = Suppression(
            line=lineno, rules=rules, reason=reason
        )
    return result
