"""The rule registry: every contract check registers itself here.

A rule is a class with a stable kebab-case ``name``, a default
:class:`~repro.lint.findings.Severity`, a one-line ``contract`` (what
it enforces — surfaced by ``lint --catalog`` and the README), and a
``check(module)`` returning findings.  Registration happens at import
time via :func:`register`, so adding a rule is one decorated class in
a rules module — the runner, CLI catalog, fixture tests, and README
table all pick it up from :data:`RULES`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..errors import ConfigurationError
from .findings import Finding, Severity


@dataclass(frozen=True)
class ModuleUnderLint:
    """One parsed source file handed to every rule.

    ``relpath`` is the repo-relative posix path (what findings and
    scope prefixes are matched against); ``dotted`` the importable
    module name (``repro.runtime.scheduler``) when the file sits under
    a package root, else the bare stem.
    """

    relpath: str
    dotted: str
    source: str
    tree: ast.Module


class Rule:
    """Base class: subclass, set the class attributes, implement
    ``check``."""

    #: Stable kebab-case identifier used in findings, suppressions and
    #: the baseline.
    name: str = ""
    severity: Severity = Severity.ERROR
    #: One line: what the rule enforces.
    contract: str = ""
    #: Why the contract exists (one or two lines for the catalog).
    rationale: str = ""
    #: Only files whose relpath starts with one of these prefixes are
    #: checked ('' = everything the runner was pointed at).
    scope_prefixes: tuple[str, ...] = ("",)
    #: Files whose relpath starts with one of these are skipped even
    #: inside the scope (e.g. the sanctioned wall-clock module).
    exempt_prefixes: tuple[str, ...] = ()

    def applies_to(self, module: ModuleUnderLint) -> bool:
        path = module.relpath
        if any(path.startswith(prefix) for prefix in self.exempt_prefixes):
            return False
        return any(path.startswith(prefix) for prefix in self.scope_prefixes)

    def check(self, module: ModuleUnderLint) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleUnderLint, node: ast.AST, message: str
    ) -> Finding:
        """A finding anchored at ``node`` in ``module``."""
        return Finding(
            rule=self.name,
            severity=self.severity,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


#: name -> rule instance, in registration order.
RULES: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one rule to :data:`RULES`."""
    rule = cls()
    if not rule.name or not rule.contract:
        raise ConfigurationError(
            f"lint rule {cls.__name__} needs a name and a contract line"
        )
    if rule.name in RULES:
        raise ConfigurationError(f"duplicate lint rule name {rule.name!r}")
    RULES[rule.name] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, importing the rule modules on first use."""
    import importlib

    for suffix in ("rules_determinism", "rules_structure", "rules_telemetry"):
        importlib.import_module(f"{__package__}.{suffix}")
    return tuple(RULES.values())
