"""Determinism contracts: seeded randomness and the modelled clock.

The whole reproduction argument rests on runs being replayable: the
drift loop, the serve benches and the bit-for-bit engine equivalence
tests all assume that re-running with the same seed produces the same
codes and the same modelled timeline.  One ``np.random.rand()`` or
``time.time()`` on a hot path silently breaks that for every benchmark
downstream, so these rules forbid the global-state entry points at
*every* call site instead of sampling a few in tests.
"""

from __future__ import annotations

import ast

from .findings import Finding, Severity
from .registry import ModuleUnderLint, Rule, register

#: numpy.random module-level functions that read or mutate the hidden
#: global BitGenerator.  Seeded constructors (``default_rng(seed)``,
#: ``Generator``, ``SeedSequence``, ``PCG64`` ...) are the sanctioned
#: route and stay allowed.
_SANCTIONED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "MT19937",
    "SFC64",
}

#: stdlib ``random`` module-level functions (same hidden-global-state
#: problem as ``np.random.*``).  ``random.Random(seed)`` is fine.
_SANCTIONED_STDLIB_RANDOM = {"Random", "SystemRandom"}


def _attribute_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Names the module binds to the numpy package (``np``, ``numpy``)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


@register
class NoUnseededRng(Rule):
    """Every random draw must come from an explicitly seeded generator."""

    name = "no-unseeded-rng"
    severity = Severity.ERROR
    contract = (
        "randomness flows through an explicit seeded Generator "
        "(np.random.default_rng(seed) threaded via an rng/seed "
        "parameter); global-state draws and argless default_rng() are "
        "forbidden"
    )
    rationale = (
        "drift injection, probe monitoring and the serve benches are "
        "only comparable across runs because every draw is replayable; "
        "one hidden-global-state call makes a benchmark unrepeatable"
    )

    def check(self, module: ModuleUnderLint) -> list[Finding]:
        findings: list[Finding] = []
        numpy_names = _numpy_aliases(module.tree)
        stdlib_random_names = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "random":
                        stdlib_random_names.add(item.asname or "random")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if chain is None:
                continue
            # np.random.<global-state fn>(...)
            if (
                len(chain) == 3
                and chain[0] in numpy_names
                and chain[1] == "random"
                and chain[2] not in _SANCTIONED_NP_RANDOM
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        (
                            f"np.random.{chain[2]}() draws from the hidden "
                            "global BitGenerator; thread an explicit "
                            "np.random.default_rng(seed) through an "
                            "rng/seed parameter instead"
                        ),
                    )
                )
                continue
            # random.<global-state fn>(...)
            if (
                len(chain) == 2
                and chain[0] in stdlib_random_names
                and chain[1] not in _SANCTIONED_STDLIB_RANDOM
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        (
                            f"random.{chain[1]}() uses the process-global "
                            "RNG; use a seeded np.random.default_rng or "
                            "random.Random(seed) instead"
                        ),
                    )
                )
                continue
            # <anything>.default_rng() or bare default_rng() with no
            # seed (the chain is just ["default_rng"] for the bare
            # call after `from numpy.random import default_rng`).
            if chain[-1] == "default_rng" and not node.args and not node.keywords:
                findings.append(
                    self.finding(
                        module,
                        node,
                        (
                            "default_rng() without a seed is entropy-seeded "
                            "and unrepeatable; pass the seed explicitly"
                        ),
                    )
                )
        return findings


@register
class ModelledClockPurity(Rule):
    """Time on serving paths is modelled time, never the host clock."""

    name = "modelled-clock-purity"
    severity = Severity.ERROR
    contract = (
        "wall-clock reads (time.*, datetime.now/utcnow/today) live only "
        "in repro.telemetry.profiling; everything else reads the "
        "ModelClock or the profiling module's sanctioned helpers"
    )
    rationale = (
        "traces, latency quantiles and the drift timeline all sit on "
        "the modelled clock; a stray wall-clock read desynchronizes "
        "them and makes modelled-time benches machine-dependent"
    )
    exempt_prefixes = ("src/repro/telemetry/profiling.py",)

    #: ``time`` module attributes that read the host clock.
    _TIME_ATTRS = {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    }
    _DATETIME_ATTRS = {"now", "utcnow", "today"}

    def check(self, module: ModuleUnderLint) -> list[Finding]:
        findings: list[Finding] = []
        time_aliases = set()
        from_time_names = set()
        datetime_like = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "time":
                        time_aliases.add(item.asname or "time")
                    if item.name == "datetime":
                        datetime_like.add(item.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for item in node.names:
                        if item.name in self._TIME_ATTRS:
                            from_time_names.add(item.asname or item.name)
                if node.module == "datetime":
                    for item in node.names:
                        if item.name in ("datetime", "date"):
                            datetime_like.add(item.asname or item.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if chain is None:
                continue
            wall = None
            if (
                len(chain) == 2
                and chain[0] in time_aliases
                and chain[1] in self._TIME_ATTRS
            ):
                wall = f"time.{chain[1]}"
            elif len(chain) == 1 and chain[0] in from_time_names:
                wall = f"time.{chain[0]}"
            elif (
                len(chain) >= 2
                and chain[0] in datetime_like
                and chain[-1] in self._DATETIME_ATTRS
            ):
                wall = ".".join(chain)
            if wall is not None:
                findings.append(
                    self.finding(
                        module,
                        node,
                        (
                            f"{wall}() reads the host clock; modelled-time "
                            "code uses ModelClock, and sanctioned wall-clock "
                            "access goes through repro.telemetry.profiling"
                        ),
                    )
                )
        return findings
