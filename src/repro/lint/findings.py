"""Findings: what a lint rule reports, and how it renders.

A :class:`Finding` is one contract violation at one source location.
Findings carry a stable ``key`` (rule + path + message, no line
numbers) so a baseline survives unrelated edits shifting code up and
down a file, and render both human-readable
(``path:line:col: severity [rule] message``) and JSON-ready.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """How bad a finding is; the runner fails the build on anything at
    or above :attr:`WARNING` that is neither suppressed nor
    baselined."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One contract violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str

    @property
    def key(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity} [{self.rule}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }
