"""Hot-path contracts: guarded telemetry and cache invalidation.

The zero-overhead telemetry promise (PR 6) and the stale-compiled-state
lessons (PRs 2/5 each shipped a cache-poisoning fix) are structural
properties of the code, not of any single test vector — so they are
checked structurally, at every call site.
"""

from __future__ import annotations

import ast

from .findings import Finding, Severity
from .registry import ModuleUnderLint, Rule, register


def _is_telemetry_source(node: ast.AST) -> bool:
    """True for expressions that read a telemetry or observability
    binding off an object: ``self.telemetry``, ``session.telemetry``,
    ``self.obs``, ``target.obs``, ... — both follow the same nullable
    guard contract."""
    return isinstance(node, ast.Attribute) and node.attr in (
        "telemetry",
        "obs",
    )


def _guard_key(node: ast.AST) -> str | None:
    """The guardable identity of an expression: a bare name's id, or
    the dotted path of a pure attribute chain (``self.telemetry``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _guard_key(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _guard_keys(test: ast.AST, positive: bool) -> set[str]:
    """Guard keys ``test`` proves non-None on the branch taken when it
    holds (``positive=True``) or fails (``positive=False``) — handles
    ``x is not None`` / ``x is None`` and ``and``-chains of them."""
    keys: set[str] = set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And) and positive:
        for value in test.values:
            keys |= _guard_keys(value, positive=True)
        return keys
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, (op,), (right,) = test.left, test.ops, test.comparators
        if not (isinstance(right, ast.Constant) and right.value is None):
            return keys
        key = _guard_key(left)
        if key is None:
            return keys
        if (positive and isinstance(op, ast.IsNot)) or (
            not positive and isinstance(op, ast.Is)
        ):
            keys.add(key)
    return keys


def _terminates(stmts: list[ast.stmt]) -> bool:
    """True when the statement list cannot fall through (ends in
    return / raise / continue / break)."""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


@register
class HotPathTelemetryGuard(Rule):
    """Telemetry on serving paths only behind an ``is not None`` check."""

    name = "hot-path-telemetry-guard"
    severity = Severity.ERROR
    contract = (
        "every use of a telemetry or obs binding in repro.runtime / "
        "repro.api / repro.traffic / repro.elastic / repro.obs is "
        "dominated by an 'is not None' guard on that binding"
    )
    rationale = (
        "an uninstrumented session holds telemetry = None and obs = "
        "None; an unguarded tel.* / obs.* access either crashes the "
        "hot path or quietly assumes a binding exists, breaking the "
        "zero-overhead / bit-for-bit promise of PRs 6 and 10"
    )
    scope_prefixes = (
        "src/repro/runtime/",
        "src/repro/api/",
        "src/repro/traffic/",
        "src/repro/elastic/",
        "src/repro/obs/",
    )

    def check(self, module: ModuleUnderLint) -> list[Finding]:
        findings: list[Finding] = []
        # ast.walk yields every function (nested included) exactly
        # once; _walk_block below skips nested defs so no function is
        # analyzed twice.
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(module, node, findings)
        return findings

    # -- per-function dominance walk -----------------------------------------
    def _check_function(
        self,
        module: ModuleUnderLint,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        findings: list[Finding],
    ) -> None:
        aliases: set[str] = set()
        # Parameters named like telemetry/obs bindings count as
        # bindings — they may be None exactly like self.telemetry.
        for arg in list(func.args.args) + list(func.args.kwonlyargs):
            if arg.arg in ("tel", "telemetry", "obs"):
                aliases.add(arg.arg)
        self._walk_block(module, func.body, aliases, set(), findings)

    def _walk_block(
        self,
        module: ModuleUnderLint,
        stmts: list[ast.stmt],
        aliases: set[str],
        guarded: set[str],
        findings: list[Finding],
    ) -> None:
        guarded = set(guarded)
        for stmt in stmts:
            # A (re)binding `tel = <obj>.telemetry` names a new alias
            # and voids any earlier guard on that name.
            if isinstance(stmt, ast.Assign) and _is_telemetry_source(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
                        guarded.discard(target.id)
                continue
            if isinstance(stmt, ast.If):
                positive = _guard_keys(stmt.test, positive=True)
                negative = _guard_keys(stmt.test, positive=False)
                self._check_expr(module, stmt.test, aliases, guarded, findings)
                self._walk_block(
                    module, stmt.body, aliases, guarded | positive, findings
                )
                self._walk_block(
                    module, stmt.orelse, aliases, guarded | negative, findings
                )
                # `if tel is None: return` guards the rest of the block.
                if negative and _terminates(stmt.body):
                    guarded |= negative
                continue
            if isinstance(stmt, ast.Assert):
                guarded |= _guard_keys(stmt.test, positive=True)
                continue
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # Handled by the top-level ast.walk with a fresh scope.
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._check_expr(module, stmt.iter, aliases, guarded, findings)
                self._walk_block(module, stmt.body, aliases, guarded, findings)
                self._walk_block(module, stmt.orelse, aliases, guarded, findings)
                continue
            if isinstance(stmt, ast.While):
                self._check_expr(module, stmt.test, aliases, guarded, findings)
                positive = _guard_keys(stmt.test, positive=True)
                self._walk_block(
                    module, stmt.body, aliases, guarded | positive, findings
                )
                self._walk_block(module, stmt.orelse, aliases, guarded, findings)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._check_expr(
                        module, item.context_expr, aliases, guarded, findings
                    )
                self._walk_block(module, stmt.body, aliases, guarded, findings)
                continue
            if isinstance(stmt, ast.Try):
                self._walk_block(module, stmt.body, aliases, guarded, findings)
                for handler in stmt.handlers:
                    self._walk_block(
                        module, handler.body, aliases, guarded, findings
                    )
                self._walk_block(module, stmt.orelse, aliases, guarded, findings)
                self._walk_block(
                    module, stmt.finalbody, aliases, guarded, findings
                )
                continue
            self._check_expr(module, stmt, aliases, guarded, findings)

    def _check_expr(
        self,
        module: ModuleUnderLint,
        node: ast.AST | None,
        aliases: set[str],
        guarded: set[str],
        findings: list[Finding],
    ) -> None:
        """Flag unguarded telemetry uses inside one expression tree,
        honouring the inline guard forms (``x is not None and ...``,
        ternaries, comprehension ``if`` clauses)."""
        if node is None:
            return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            proven: set[str] = set()
            for value in node.values:
                self._check_expr(module, value, aliases, guarded | proven, findings)
                proven |= _guard_keys(value, positive=True)
            return
        if isinstance(node, ast.IfExp):
            positive = _guard_keys(node.test, positive=True)
            negative = _guard_keys(node.test, positive=False)
            self._check_expr(module, node.test, aliases, guarded, findings)
            self._check_expr(
                module, node.body, aliases, guarded | positive, findings
            )
            self._check_expr(
                module, node.orelse, aliases, guarded | negative, findings
            )
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            proven = set()
            for generator in node.generators:
                self._check_expr(
                    module, generator.iter, aliases, guarded | proven, findings
                )
                for cond in generator.ifs:
                    self._check_expr(
                        module, cond, aliases, guarded | proven, findings
                    )
                    proven |= _guard_keys(cond, positive=True)
            element_guard = guarded | proven
            parts = (
                (node.key, node.value)
                if isinstance(node, ast.DictComp)
                else (node.elt,)
            )
            for part in parts:
                self._check_expr(module, part, aliases, element_guard, findings)
            return
        if isinstance(node, ast.Attribute):
            # An access *on* a telemetry binding is the use the guard
            # must dominate; the `tel is not None` comparison itself
            # reads only the name and is never flagged.
            base = node.value
            base_key = _guard_key(base)
            flagged = False
            if (
                isinstance(base, ast.Name)
                and base.id in aliases
                and base.id not in guarded
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        (
                            f"telemetry binding '{base.id}' is used without "
                            f"a dominating '{base.id} is not None' guard; "
                            "an uninstrumented session holds None here"
                        ),
                    )
                )
                flagged = True
            elif (
                _is_telemetry_source(base)
                and base_key is not None
                and base_key not in guarded
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        (
                            f"'{base_key}' is used without a dominating "
                            f"'{base_key} is not None' guard; an "
                            "uninstrumented session holds None here"
                        ),
                    )
                )
                flagged = True
            if flagged:
                return
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.stmt):
                self._check_expr(module, child, aliases, guarded, findings)


#: attribute name -> the invalidation hooks that make mutating it safe.
#: A method of a class *defining* one of the hooks that assigns one of
#: these attributes must call a matching hook (directly or on the
#: owning core) in the same method.
INVALIDATION_REGISTRY: dict[str, tuple[str, ...]] = {
    # eoADC trim state: compiled ladders bisect against it.
    "trim_errors": ("invalidate_boundaries", "invalidate_ladders"),
    "spec": ("invalidate_boundaries", "invalidate_ladders"),
    # Quantized layer weights: compiled tile engines snapshot them.
    "float_weights": ("invalidate_runtime",),
    "q_positive": ("invalidate_runtime",),
    "q_negative": ("invalidate_runtime",),
    "weight_scale": ("invalidate_runtime",),
    # The cross-compiler ladder memo itself.
    "runtime_ladder_cache": ("invalidate_ladders",),
}


@register
class MutateMustInvalidate(Rule):
    """Mutating compiled-state-bearing attributes must invalidate."""

    name = "mutate-must-invalidate"
    severity = Severity.ERROR
    contract = (
        "a method assigning a registered compiled-state attribute "
        "(trim_errors, spec, q_positive/q_negative/float_weights/"
        "weight_scale, runtime_ladder_cache) on a class that defines "
        "the matching invalidate_* hook must call that hook"
    )
    rationale = (
        "PRs 2 and 5 both shipped stale-cache bugs: compiled engines "
        "and bisected ladders silently kept serving pre-mutation "
        "state; the invalidate hooks exist exactly so the next compile "
        "re-derives"
    )

    def check(self, module: ModuleUnderLint) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(module, node, findings)
        return findings

    def _check_class(
        self, module: ModuleUnderLint, cls: ast.ClassDef, findings: list[Finding]
    ) -> None:
        hooks = {
            item.name
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name.startswith("invalidate_")
        }
        if not hooks:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__" or item.name in hooks:
                continue
            mutated = self._mutated_attributes(item)
            relevant = {
                attr: node
                for attr, node in mutated.items()
                if any(hook in hooks for hook in INVALIDATION_REGISTRY[attr])
            }
            if not relevant:
                continue
            called = self._called_hooks(item)
            for attr, node in sorted(relevant.items(), key=lambda kv: kv[1].lineno):
                required = INVALIDATION_REGISTRY[attr]
                if not any(hook in called for hook in required):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            (
                                f"{cls.name}.{item.name} assigns "
                                f"self.{attr} (compiled state depends on "
                                f"it) without calling "
                                f"{' or '.join(required)}; stale engines "
                                "keep serving the old value"
                            ),
                        )
                    )

    @staticmethod
    def _mutated_attributes(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> dict[str, ast.AST]:
        """Registered ``self.<attr>`` assignment targets in ``func``
        (plain, augmented, tuple-unpacked, and ``self.attr[...] = ...``
        stores)."""
        mutated: dict[str, ast.AST] = {}

        def record(target: ast.AST, node: ast.AST) -> None:
            if isinstance(target, ast.Subscript):
                target = target.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in INVALIDATION_REGISTRY
            ):
                mutated.setdefault(target.attr, node)

        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Tuple):
                        for element in target.elts:
                            record(element, node)
                    else:
                        record(target, node)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                record(node.target, node)
        return mutated

    @staticmethod
    def _called_hooks(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Names of ``invalidate_*`` methods called anywhere in
        ``func``, on any receiver (``self.invalidate_runtime()``,
        ``self.core.invalidate_ladders()``, ...)."""
        called: set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr.startswith("invalidate_")
            ):
                called.add(node.func.attr)
        return called
