"""``repro.lint`` — the AST-based contract checker.

The reproduction rests on cross-cutting contracts no single test can
pin down everywhere: compiled engines bit-for-bit equal to the device
loop, zero-overhead telemetry when unattached, all randomness on
seeded generators, all time on the modelled clock, every compiled-state
mutation invalidating its caches, every report counter surviving the
fleet roll-up.  This package enforces them *statically*, at every call
site, on every PR: ``python -m repro lint`` (see
:mod:`repro.lint.runner`) walks ``src/``, runs the registered rules
(:data:`repro.lint.registry.RULES`), honours inline
``repro-lint: disable=<rule> -- <reason>`` suppressions, and fails on
any finding not in the checked-in baseline.

Self-contained: stdlib ``ast``/``tokenize`` only, no third-party
dependencies.
"""

from __future__ import annotations

from .findings import Finding, Severity
from .registry import RULES, ModuleUnderLint, Rule, all_rules, register
from .runner import (
    BASELINE_FILE,
    LintRun,
    load_baseline,
    run_lint,
    write_baseline,
)
from .suppressions import scan_suppressions

__all__ = [
    "BASELINE_FILE",
    "Finding",
    "LintRun",
    "ModuleUnderLint",
    "RULES",
    "Rule",
    "Severity",
    "all_rules",
    "load_baseline",
    "register",
    "run_lint",
    "scan_suppressions",
    "write_baseline",
]
