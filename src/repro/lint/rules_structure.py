"""Structural contracts: report completeness, error taxonomy, imports.

These rules read the *shape* of the code — dataclass field lists
against roll-up call sites, ``raise`` expressions against the typed
hierarchy, import tables against name uses — so the contract holds for
fields and call sites that no test happens to exercise.
"""

from __future__ import annotations

import ast

from .findings import Finding, Severity
from .registry import ModuleUnderLint, Rule, register

#: Dataclasses whose numeric fields roll up *outside* the class: the
#: call site constructing the fleet record must pass every field
#: explicitly.  name -> containing-scope hint for the message.
_ROLLUP_CALL_SITES = {"ClusterReport": "PhotonicCluster.report"}

_NUMERIC_ANNOTATIONS = {"int", "float"}


def _annotation_name(annotation: ast.AST | None) -> str | None:
    """The simple name of an annotation (``int``, ``float``), looking
    through ``X | None`` unions; None for anything more structured."""
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _annotation_name(annotation.left)
        right = _annotation_name(annotation.right)
        names = {name for name in (left, right) if name not in (None, "None")}
        return names.pop() if len(names) == 1 else None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            return _annotation_name(ast.parse(annotation.value, mode="eval").body)
        except SyntaxError:
            return None
    return None


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return True
    return False


def _numeric_fields(cls: ast.ClassDef) -> dict[str, ast.AnnAssign]:
    fields: dict[str, ast.AnnAssign] = {}
    for item in cls.body:
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and _annotation_name(item.annotation) in _NUMERIC_ANNOTATIONS
        ):
            fields[item.target.id] = item
    return fields


@register
class ReportAccountingCompleteness(Rule):
    """Every numeric report counter survives the fleet roll-up."""

    name = "report-accounting-completeness"
    severity = Severity.ERROR
    contract = (
        "every numeric field of a report dataclass that defines "
        "combined() is passed in combined()'s constructor call, and "
        "every numeric ClusterReport field is passed at its fleet "
        "roll-up call site"
    )
    rationale = (
        "fleet totals are hand-rolled keyword-by-keyword; when the "
        "next PR adds a counter, nothing but this check stops it from "
        "silently vanishing from ClusterReport totals"
    )

    def check(self, module: ModuleUnderLint) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            fields = _numeric_fields(node)
            if not fields:
                continue
            combined = next(
                (
                    item
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "combined"
                ),
                None,
            )
            if combined is not None:
                passed = self._constructed_keywords(
                    combined, receivers={"cls", node.name}
                )
                for name, field in sorted(
                    fields.items(), key=lambda kv: kv[1].lineno
                ):
                    if name not in passed:
                        findings.append(
                            self.finding(
                                module,
                                field,
                                (
                                    f"numeric field {node.name}.{name} is "
                                    f"not summed in {node.name}.combined(); "
                                    "it silently drops out of fleet totals"
                                ),
                            )
                        )
            if node.name in _ROLLUP_CALL_SITES:
                passed = self._constructed_keywords(
                    module.tree, receivers={node.name}, skip=node
                )
                rollup = _ROLLUP_CALL_SITES[node.name]
                for name, field in sorted(
                    fields.items(), key=lambda kv: kv[1].lineno
                ):
                    if name not in passed:
                        findings.append(
                            self.finding(
                                module,
                                field,
                                (
                                    f"numeric field {node.name}.{name} is "
                                    f"never passed where the fleet record "
                                    f"is built ({rollup}); the roll-up "
                                    "must name every counter"
                                ),
                            )
                        )
        return findings

    @staticmethod
    def _constructed_keywords(
        scope: ast.AST, receivers: set[str], skip: ast.AST | None = None
    ) -> set[str]:
        """Keyword names passed to any ``<receiver>(...)`` call in
        ``scope`` (excluding the subtree ``skip`` — the class body
        itself, so default values don't count as roll-up handling)."""
        skipped = set()
        if skip is not None:
            skipped = {id(sub) for sub in ast.walk(skip)}
        passed: set[str] = set()
        for node in ast.walk(scope):
            if id(node) in skipped or not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in receivers:
                passed |= {kw.arg for kw in node.keywords if kw.arg is not None}
        return passed


@register
class ErrorTaxonomy(Rule):
    """API surfaces raise the typed hierarchy, not bare builtins."""

    name = "error-taxonomy"
    severity = Severity.ERROR
    contract = (
        "raise sites in src/repro use the repro.errors hierarchy "
        "(ReproError subclasses); bare ValueError / RuntimeError / "
        "Exception are forbidden"
    )
    rationale = (
        "callers catch ReproError to separate library failures from "
        "programming errors; a bare builtin raise silently escapes "
        "that contract (PendingFlushError/ClusterSaturatedError exist "
        "precisely to stay inside both hierarchies)"
    )
    scope_prefixes = ("src/repro/",)

    _FORBIDDEN = {"ValueError", "RuntimeError", "Exception", "IOError", "OSError"}

    def check(self, module: ModuleUnderLint) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            if isinstance(target, ast.Name) and target.id in self._FORBIDDEN:
                findings.append(
                    self.finding(
                        module,
                        node,
                        (
                            f"raise {target.id} escapes the typed error "
                            "taxonomy; raise a repro.errors.ReproError "
                            "subclass (or add one) so package-wide "
                            "handlers still catch it"
                        ),
                    )
                )
        return findings


@register
class UnusedImport(Rule):
    """Dead imports are dead code: every import is referenced."""

    name = "unused-import"
    severity = Severity.WARNING
    contract = (
        "every name a module imports is referenced somewhere in the "
        "module (package __init__ re-export surfaces are exempt)"
    )
    rationale = (
        "unused imports hide real dependencies, slow cold starts, and "
        "rot into confusion about what a module actually touches"
    )

    def applies_to(self, module: ModuleUnderLint) -> bool:
        if module.relpath.endswith("__init__.py"):
            return False
        return super().applies_to(module)

    def check(self, module: ModuleUnderLint) -> list[Finding]:
        imported: dict[str, tuple[ast.AST, str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    bound = item.asname or item.name.split(".")[0]
                    imported.setdefault(bound, (node, item.name))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for item in node.names:
                    if item.name == "*":
                        continue
                    bound = item.asname or item.name
                    imported.setdefault(bound, (node, item.name))
        if not imported:
            return []
        used: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    used.add(root.id)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # String annotations under `from __future__ import
                # annotations` arrive pre-parsed as expressions, but
                # explicit "Quoted[Name]" annotations do not — count
                # their words as uses rather than false-flagging.
                if node.value.isidentifier():
                    used.add(node.value)
        exported = self._declared_all(module.tree)
        findings: list[Finding] = []
        for bound, (node, original) in sorted(
            imported.items(), key=lambda kv: kv[1][0].lineno
        ):
            if bound in used or bound in exported:
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    (
                        f"imported name '{bound}' "
                        f"(from '{original}') is never used in this module"
                    ),
                )
            )
        return findings

    @staticmethod
    def _declared_all(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in node.targets
                )
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.add(element.value)
        return names
