"""The lint driver: walk sources, run rules, apply suppressions.

``python -m repro lint`` builds a :class:`LintRun` over ``src/`` (or
explicit paths), checks every registered rule against every in-scope
module, drops findings covered by an inline suppression, then splits
the rest against the checked-in baseline: baselined findings are
reported but don't fail; anything new does.

Unused suppressions are themselves findings (``unused-suppression``)
— an exemption that no longer silences anything is stale documentation
and gets cleaned up rather than accreting.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigurationError
from .findings import Finding, Severity
from .registry import ModuleUnderLint, Rule, all_rules
from .suppressions import scan_suppressions

#: Default baseline location, repo-root-relative.
BASELINE_FILE = ".repro-lint-baseline.json"

UNUSED_SUPPRESSION = "unused-suppression"
PARSE_ERROR = "parse-error"


@dataclass
class LintRun:
    """One lint invocation's outcome."""

    findings: list[Finding] = field(default_factory=list)
    #: Keys of findings matched by (and consumed from) the baseline.
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: int = 0

    @property
    def failed(self) -> bool:
        return any(f.severity >= Severity.WARNING for f in self.findings)

    def to_dict(self) -> dict:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "failed": self.failed,
            "counts_by_rule": counts,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
        }

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        for finding in self.baselined:
            lines.append(f"{finding.render()} (baselined)")
        new = len(self.findings)
        lines.append(
            f"repro lint: {self.files_checked} files x {self.rules_run} "
            f"rules -> {new} finding{'s' if new != 1 else ''}"
            + (f" ({len(self.baselined)} baselined)" if self.baselined else "")
        )
        return "\n".join(lines)


def discover_files(root: Path, paths: list[str] | None = None) -> list[Path]:
    """The Python files to lint: ``src/`` under ``root`` by default,
    or the explicit files/directories in ``paths``."""
    if paths:
        files: list[Path] = []
        for raw in paths:
            path = (root / raw) if not Path(raw).is_absolute() else Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py" and path.exists():
                files.append(path)
            else:
                raise ConfigurationError(f"nothing to lint at {raw!r}")
        return files
    return sorted((root / "src").rglob("*.py"))


def _module_for(root: Path, path: Path) -> ModuleUnderLint | None:
    """Parse one file; None (plus a finding from the caller) when the
    source is not valid Python."""
    relpath = path.relative_to(root).as_posix() if path.is_relative_to(root) else (
        path.as_posix()
    )
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    parts = list(path.with_suffix("").parts)
    dotted = path.stem
    if "src" in parts:
        dotted = ".".join(parts[parts.index("src") + 1 :])
    return ModuleUnderLint(relpath=relpath, dotted=dotted, source=source, tree=tree)


def run_lint(
    root: Path,
    paths: list[str] | None = None,
    baseline_path: Path | None = None,
    rules: tuple[Rule, ...] | None = None,
) -> LintRun:
    """Lint ``paths`` (default: ``src/``) under ``root`` against every
    registered rule, honouring inline suppressions and the baseline."""
    rules = all_rules() if rules is None else rules
    run = LintRun(rules_run=len(rules))
    raw_findings: list[Finding] = []
    for path in discover_files(root, paths):
        relpath = (
            path.relative_to(root).as_posix()
            if path.is_relative_to(root)
            else path.as_posix()
        )
        try:
            module = _module_for(root, path)
        except SyntaxError as error:
            raw_findings.append(
                Finding(
                    rule=PARSE_ERROR,
                    severity=Severity.ERROR,
                    path=relpath,
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        run.files_checked += 1
        suppressions = scan_suppressions(module.relpath, module.source)
        raw_findings.extend(suppressions.syntax_findings)
        for rule in rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                if not suppressions.covers(finding.line, finding.rule):
                    raw_findings.append(finding)
        for marker in suppressions.by_line.values():
            if not marker.used:
                raw_findings.append(
                    Finding(
                        rule=UNUSED_SUPPRESSION,
                        severity=Severity.WARNING,
                        path=module.relpath,
                        line=marker.line,
                        column=1,
                        message=(
                            "suppression of "
                            f"{', '.join(marker.rules)} matches no finding; "
                            "remove the stale marker"
                        ),
                    )
                )
    raw_findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    baseline = load_baseline(baseline_path) if baseline_path else set()
    for finding in raw_findings:
        if finding.key in baseline:
            run.baselined.append(finding)
        else:
            run.findings.append(finding)
    return run


def load_baseline(path: Path) -> set[str]:
    """The grandfathered finding keys, or empty for a missing file."""
    if not path.exists():
        return set()
    try:
        data = json.loads(path.read_text())
        keys = data["findings"] if isinstance(data, dict) else data
        return {str(key) for key in keys}
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise ConfigurationError(
            f"baseline {path} is not a JSON list of finding keys: {error}"
        ) from error


def write_baseline(path: Path, run: LintRun) -> int:
    """Grandfather the run's current findings; returns the count."""
    keys = sorted(
        {f.key for f in run.findings} | {f.key for f in run.baselined}
    )
    path.write_text(
        json.dumps({"findings": keys}, indent=2) + "\n"
    )
    return len(keys)
