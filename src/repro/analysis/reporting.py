"""Plain-text reporting for the benchmark harness.

The benches regenerate the paper's tables and figure data as text:
:func:`ascii_table` renders aligned tables, :func:`format_series`
renders (x, y) figure data as rows a reader can diff against the
paper's plots.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ConfigurationError


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows under headers with column alignment."""
    if not headers:
        raise ConfigurationError("table needs at least one column")
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in text_rows))
        if text_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(str(header).ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    x_values: Sequence[float],
    y_values: Sequence[float],
    x_format: str = "{:.4g}",
    y_format: str = "{:.6g}",
    max_rows: int | None = None,
) -> str:
    """Render an (x, y) series as a two-column table.

    ``max_rows`` decimates long series evenly (first/last retained).
    """
    if len(x_values) != len(y_values):
        raise ConfigurationError("x and y series must have equal length")
    count = len(x_values)
    if count == 0:
        raise ConfigurationError("series must not be empty")
    if max_rows is not None and count > max_rows:
        step = max((count - 1) // (max_rows - 1), 1)
        indices = list(range(0, count, step))
        if indices[-1] != count - 1:
            indices.append(count - 1)
    else:
        indices = list(range(count))
    rows = [
        (x_format.format(x_values[i]), y_format.format(y_values[i])) for i in indices
    ]
    return ascii_table((x_label, y_label), rows)
