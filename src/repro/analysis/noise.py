"""Noise analysis: how far the optical power budget can shrink.

The paper's energy numbers are set by its optical power choices
(200 uW/channel ADC input, 18 uW references, -20 dBm pSRAM bias).
These analyses expose the *floor* under those choices: shot and thermal
noise at each photodiode decide how close to a threshold a signal can
sit before decisions start flipping.

* :func:`threshold_error_probability` — probability a balanced-PD
  thresholding decision is wrong given its current margin and noise.
* :class:`EoAdcNoiseAnalysis` — worst-case decision margin across the
  code range and the resulting code-error probability vs channel power.
* :class:`ComputePathNoiseAnalysis` — SNR and effective resolution of
  the analog dot product at the row photodiode/TIA.
* :class:`PsramNoiseAnalysis` — hold-current margin of the latch vs
  bias power (when does the feedback stop winning against noise?).
"""

from __future__ import annotations

import math

from scipy.special import erfc

from ..config import Technology, default_technology
from ..constants import BOLTZMANN_CONSTANT, ELEMENTARY_CHARGE, ROOM_TEMPERATURE
from ..errors import ConfigurationError


def shot_noise_sigma(current: float, bandwidth: float) -> float:
    """Shot-noise current std-dev [A] of a photocurrent at a bandwidth."""
    if current < 0.0 or bandwidth <= 0.0:
        raise ConfigurationError("current must be >= 0 and bandwidth > 0")
    return math.sqrt(2.0 * ELEMENTARY_CHARGE * current * bandwidth)


def thermal_noise_sigma(bandwidth: float, load_resistance: float = 10e3) -> float:
    """Thermal (Johnson) noise current std-dev [A] of a load resistance."""
    if bandwidth <= 0.0 or load_resistance <= 0.0:
        raise ConfigurationError("bandwidth and resistance must be positive")
    return math.sqrt(
        4.0 * BOLTZMANN_CONSTANT * ROOM_TEMPERATURE * bandwidth / load_resistance
    )


def threshold_error_probability(margin_current: float, noise_sigma: float) -> float:
    """P(wrong decision) for a Gaussian-noise comparison.

    ``margin_current`` is the distance of the mean differential current
    from zero; the decision flips when noise exceeds it.
    """
    if noise_sigma < 0.0:
        raise ConfigurationError("noise sigma must be non-negative")
    if noise_sigma == 0.0:
        return 0.0 if margin_current > 0.0 else 0.5
    return 0.5 * erfc(margin_current / (noise_sigma * math.sqrt(2.0)))


class EoAdcNoiseAnalysis:
    """Shot/thermal-noise floor of the 1-hot thresholding decisions."""

    def __init__(self, technology: Technology | None = None) -> None:
        self.technology = technology if technology is not None else default_technology()

    def _decision_sigma(self, thru_power: float, reference_power: float,
                        bandwidth: float) -> float:
        responsivity = self.technology.photodiode.responsivity
        shot_upper = shot_noise_sigma(responsivity * thru_power, bandwidth)
        shot_lower = shot_noise_sigma(responsivity * reference_power, bandwidth)
        thermal = thermal_noise_sigma(bandwidth)
        return math.hypot(math.hypot(shot_upper, shot_lower), thermal)

    def worst_case_margin(self, channel_power: float | None = None) -> float:
        """Smallest differential current [A] any in-range input leaves.

        The worst case is a quarter-LSB inside a bin edge: the active
        ring's thru power is closest to the reference there.
        """
        tech = self.technology
        spec = tech.eoadc
        channel_power = spec.channel_power if channel_power is None else channel_power
        scale = channel_power / spec.channel_power
        # Transmission at a quarter-LSB detuning from the window edge.
        from ..photonics.mrr import AllPassMRR
        from ..photonics.pn_junction import DepletionTuner

        ring = AllPassMRR(
            tech.adc_ring_spec(),
            design_wavelength=tech.wavelength,
            design_voltage=0.0,
            waveguide=tech.waveguide,
            coupler=tech.coupler,
            tuner=DepletionTuner(tech.depletion),
        )
        detuning = 0.75 * spec.lsb_voltage / 2.0
        thru = float(ring.thru_transmission(tech.wavelength, voltage=detuning))
        responsivity = tech.photodiode.responsivity
        margin = responsivity * (spec.reference_power * scale - thru * channel_power)
        return margin

    def code_error_probability(
        self,
        channel_power: float | None = None,
        bandwidth: float | None = None,
    ) -> float:
        """Worst-case probability of a flipped activation per decision."""
        tech = self.technology
        spec = tech.eoadc
        channel_power = spec.channel_power if channel_power is None else channel_power
        bandwidth = spec.sample_rate / 2.0 if bandwidth is None else bandwidth
        scale = channel_power / spec.channel_power
        margin = self.worst_case_margin(channel_power)
        # At the worst-case point the active ring's thru transmission
        # sits just under the 0.09 threshold ratio (~0.085).
        sigma = self._decision_sigma(
            channel_power * 0.085, spec.reference_power * scale, bandwidth
        )
        return threshold_error_probability(margin, sigma)

    def minimum_channel_power(
        self, target_error: float = 1e-12, bandwidth: float | None = None
    ) -> float:
        """Smallest channel power meeting a code-error target [W].

        Bisects over power with the references scaled proportionally
        (the window geometry is power-ratio-invariant).
        """
        if not 0.0 < target_error < 0.5:
            raise ConfigurationError("target error must be in (0, 0.5)")
        low, high = 1e-9, self.technology.eoadc.channel_power * 10.0
        for _ in range(80):
            mid = math.sqrt(low * high)
            if self.code_error_probability(mid, bandwidth) > target_error:
                low = mid
            else:
                high = mid
        return high


class ComputePathNoiseAnalysis:
    """SNR of the analog dot product at the row photodiode + TIA."""

    def __init__(self, technology: Technology | None = None) -> None:
        self.technology = technology if technology is not None else default_technology()

    def full_scale_current(self, vector_length: int = 16) -> float:
        """Approximate full-scale row photocurrent [A]."""
        tech = self.technology
        per_channel = tech.compute.channel_power * tech.photodiode.responsivity
        # Binary-scaled planes sum to (2^n - 1)/2^n of the input power;
        # the w=1 insertion loss is ~0.86.
        plane_sum = 1.0 - 2.0 ** (-tech.compute.weight_bits)
        return vector_length * per_channel * plane_sum * 0.86

    def noise_sigma(
        self, signal_current: float, bandwidth: float | None = None
    ) -> float:
        """Total noise current std-dev [A] at the row TIA input."""
        bandwidth = (
            self.technology.tensor.sample_rate / 2.0 if bandwidth is None else bandwidth
        )
        shot = shot_noise_sigma(signal_current, bandwidth)
        thermal = thermal_noise_sigma(bandwidth, load_resistance=3e3)
        return math.hypot(shot, thermal)

    def snr_db(self, vector_length: int = 16, utilization: float = 0.5) -> float:
        """SNR [dB] of a dot product using ``utilization`` of full scale."""
        if not 0.0 < utilization <= 1.0:
            raise ConfigurationError("utilization must be in (0, 1]")
        signal = self.full_scale_current(vector_length) * utilization
        sigma = self.noise_sigma(signal)
        return 20.0 * math.log10(signal / sigma)

    def effective_bits(self, vector_length: int = 16) -> float:
        """Analog-path resolution bound in bits (before the eoADC).

        Uses the full-scale-to-noise ratio; the eoADC's p bits are only
        justified while this bound exceeds p.
        """
        full_scale = self.full_scale_current(vector_length)
        sigma = self.noise_sigma(full_scale)
        return (20.0 * math.log10(full_scale / sigma) - 1.76) / 6.02


class PsramNoiseAnalysis:
    """Hold margin of the pSRAM latch vs optical bias power."""

    def __init__(self, technology: Technology | None = None) -> None:
        self.technology = technology if technology is not None else default_technology()

    def hold_margin(self, bias_power: float | None = None) -> float:
        """Restoring-minus-disturbing current [A] at the held-low node."""
        import dataclasses

        from ..core.psram import PsramBitcell

        tech = self.technology
        if bias_power is not None:
            tech = tech.replace(
                psram=dataclasses.replace(tech.psram, bias_power=bias_power)
            )
        cell = PsramBitcell(tech)
        cell.set_state(1)
        current_q, current_qb = cell.hold_node_currents()
        return min(current_q, -current_qb)

    def disturb_probability(
        self, bias_power: float | None = None, bandwidth: float = 20e9
    ) -> float:
        """P(noise momentarily overcomes the restoring current)."""
        bias = (
            self.technology.psram.bias_power if bias_power is None else bias_power
        )
        margin = self.hold_margin(bias)
        responsivity = self.technology.photodiode.responsivity
        sigma = math.hypot(
            shot_noise_sigma(responsivity * bias / 2.0, bandwidth),
            thermal_noise_sigma(bandwidth, load_resistance=100e3),
        )
        return threshold_error_probability(margin, sigma)

    def minimum_bias_power(self, target_probability: float = 1e-15) -> float:
        """Smallest hold bias [W] keeping disturb probability below target."""
        if not 0.0 < target_probability < 0.5:
            raise ConfigurationError("target probability must be in (0, 0.5)")
        low, high = 1e-9, self.technology.psram.bias_power * 10.0
        for _ in range(60):
            mid = math.sqrt(low * high)
            if self.disturb_probability(mid) > target_probability:
                low = mid
            else:
                high = mid
        return high
