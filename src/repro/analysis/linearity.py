"""Linearity analysis for the compute core (paper Fig. 7).

The paper validates vector multiplication by checking that the
normalized photodiode current aligns linearly with the expected
products; these helpers quantify that alignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


def linear_fit(x, y) -> tuple[float, float]:
    """Least-squares slope and intercept of y against x."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise ConfigurationError("need two equal-length 1-D arrays with >= 2 points")
    slope, intercept = np.polyfit(x, y, 1)
    return float(slope), float(intercept)


@dataclass(frozen=True)
class LinearityReport:
    """Summary of a measured-vs-expected linearity comparison."""

    slope: float
    intercept: float
    r_squared: float
    max_abs_error: float
    rms_error: float

    def is_linear(self, min_r_squared: float = 0.999) -> bool:
        return self.r_squared >= min_r_squared


def linearity_report(expected, measured) -> LinearityReport:
    """Fit measured against expected and report fit quality.

    ``max_abs_error`` and ``rms_error`` are residuals from the fitted
    line in the units of ``measured``.
    """
    expected = np.asarray(expected, dtype=float)
    measured = np.asarray(measured, dtype=float)
    slope, intercept = linear_fit(expected, measured)
    predicted = slope * expected + intercept
    residuals = measured - predicted
    total = measured - measured.mean()
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum(total**2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0
    return LinearityReport(
        slope=slope,
        intercept=intercept,
        r_squared=r_squared,
        max_abs_error=float(np.max(np.abs(residuals))),
        rms_error=float(np.sqrt(np.mean(residuals**2))),
    )
