"""Analysis helpers: linearity fits, noise floors, bench reporting."""

from .linearity import LinearityReport, linear_fit, linearity_report
from .noise import (
    ComputePathNoiseAnalysis,
    EoAdcNoiseAnalysis,
    PsramNoiseAnalysis,
    shot_noise_sigma,
    thermal_noise_sigma,
    threshold_error_probability,
)
from .reporting import ascii_table, format_series

__all__ = [
    "ascii_table",
    "ComputePathNoiseAnalysis",
    "EoAdcNoiseAnalysis",
    "format_series",
    "linear_fit",
    "LinearityReport",
    "linearity_report",
    "PsramNoiseAnalysis",
    "shot_noise_sigma",
    "thermal_noise_sigma",
    "threshold_error_probability",
]
