"""Integration tests across substrates: the paper's end-to-end flows."""

import numpy as np
import pytest

from repro.core.compute_core import VectorComputeCore
from repro.core.eoadc import EoAdc
from repro.core.psram import PsramBitcell
from repro.core.tensor_core import PhotonicTensorCore
from repro.photonics.coupler import PowerSplitter
from repro.photonics.laser import CWLaser
from repro.photonics.mrr import AddDropMRR
from repro.photonics.network import PhotonicCircuit
from repro.photonics.photodiode import Photodiode
from repro.photonics.pn_junction import InjectionTuner
from repro.sim.waveform import PulseTrain, StepSequence


def test_network_evaluation_matches_analytic_compute(tech):
    """Building one 1-bit multiply as an explicit photonic netlist must
    agree with the vectorized compute-core path."""
    circuit = PhotonicCircuit()
    circuit.add("laser", CWLaser(tech.wavelength, 200e-6))
    ring = AddDropMRR(
        tech.compute_ring_spec(),
        design_wavelength=tech.wavelength,
        design_voltage=0.0,
        waveguide=tech.waveguide,
        coupler=tech.coupler,
        tuner=InjectionTuner(tech.injection),
    )
    ring.voltage = 1.8  # weight = 1
    circuit.add("ring", ring)
    circuit.add("pd", Photodiode(tech.photodiode))
    circuit.add("drop_pd", Photodiode(tech.photodiode))
    circuit.connect("laser", "out", "ring", "in")
    circuit.connect("ring", "thru", "pd", "in")
    circuit.connect("ring", "drop", "drop_pd", "in")
    circuit.evaluate()
    network_power = circuit.component("pd").last_input_power
    analytic = 200e-6 * float(ring.thru_transmission(tech.wavelength))
    assert network_power == pytest.approx(analytic, rel=1e-12)


def test_psram_write_then_compute(tech):
    """Weights written through the pSRAM write path must drive the
    multiplication exactly like directly loaded weights."""
    core = VectorComputeCore(4, 3, tech)
    core.load_weights([5, 2, 7, 0])
    x = np.array([0.9, 0.4, 0.6, 0.8])
    current_a = core.compute(x)
    # Rewrite the same weights via a fresh array write cycle.
    core.load_weights([0, 0, 0, 0])
    core.load_weights([5, 2, 7, 0])
    assert core.compute(x) == pytest.approx(current_a, rel=1e-12)


def test_bitcell_write_consistent_with_array_model(tech):
    """The array's 0.5 pJ/switch bookkeeping matches the transient
    bitcell's ledger."""
    cell = PsramBitcell(tech)
    cell.set_state(0)
    transient_energy = cell.write(1).switch_energy
    assert transient_energy == pytest.approx(0.5e-12, rel=1e-3)


def test_compute_core_output_through_eoadc(tech):
    """Full mixed-signal path: dot product -> TIA scaling -> eoADC code
    must match the analytically expected code."""
    core = VectorComputeCore(4, 3, tech)
    core.load_weights([7, 7, 7, 7])
    adc = EoAdc(tech, trim_errors=np.zeros(8))
    full_scale = core.compute(np.ones(4))
    gain = adc.spec.full_scale_voltage / full_scale
    for fraction in (0.1, 0.45, 0.8):
        x = np.full(4, fraction)
        voltage = min(core.compute(x) * gain, 4.0 - 1e-9)
        code = adc.convert(voltage)
        expected = min(int(voltage / adc.lsb), 7)
        assert abs(code - expected) <= 1


def test_tensor_core_matvec_reproducible(tech):
    core = PhotonicTensorCore(rows=2, columns=4, technology=tech)
    rng = np.random.default_rng(55)
    core.load_weight_matrix(rng.integers(0, 8, (2, 4)))
    x = rng.uniform(0.0, 1.0, 4)
    first = core.matvec(x)
    second = core.matvec(x)
    assert np.array_equal(first.codes, second.codes)
    assert np.allclose(first.currents, second.currents)


def test_weight_streaming_during_inference(tech):
    """The 20 GHz update headline: swapping weight matrices between
    matvecs changes results correctly and books the switch energy."""
    core = PhotonicTensorCore(rows=2, columns=4, technology=tech)
    x = np.full(4, 0.8)
    core.load_weight_matrix(np.zeros((2, 4), dtype=int))
    low = core.matvec(x).estimates
    energy_before = core.weight_update_energy()
    core.load_weight_matrix(np.full((2, 4), 7))
    high = core.matvec(x).estimates
    assert np.all(high > low)
    assert core.weight_update_energy() > energy_before
    assert core.weight_update_time() == pytest.approx(4 / 20e9)


def test_adc_transient_agrees_with_static_for_settled_inputs(ideal_adc):
    """After a full sample period the transient code equals the static
    conversion — the quasi-static limit."""
    for level in (0.4, 1.3, 2.6, 3.6):
        sequence = StepSequence([level], period=250e-12)
        record = ideal_adc.transient_convert(
            sequence, duration=250e-12, sample_rate=4e9
        )
        assert record.codes[-1] == ideal_adc.convert(level)


def test_psram_disturb_free_half_select(tech):
    """A write pulse on WBL only (no WBLB) must flip the target without
    corrupting it on the repeated write (write-1 twice is idempotent)."""
    cell = PsramBitcell(tech)
    cell.set_state(0)
    assert cell.write(1).success
    assert cell.write(1).success
    assert cell.state == 1


def test_hold_bias_removal_is_detected(tech):
    """With the optical bias off, the latch loses its restoring
    currents (the paper: data held only while both biases persist)."""
    import dataclasses

    dark_tech = tech.replace(psram=dataclasses.replace(tech.psram, bias_power=0.0))
    cell = PsramBitcell(dark_tech)
    cell.set_state(1)
    current_q, current_qb = cell.hold_node_currents()
    assert abs(current_q) < 1e-7 and abs(current_qb) < 1e-7


def test_full_pipeline_blob_classification(tech):
    """Sanity: a full photonic matvec classifies an easy sample the
    same way the float path does."""
    from repro.ml.datasets import gaussian_blobs
    from repro.ml.layers import PhotonicDense

    X, y = gaussian_blobs(samples_per_class=20, classes=2, features=4, spread=0.3)
    # Nearest-centroid weights.
    centroids = np.stack([X[y == c].mean(axis=0) for c in range(2)])
    core = PhotonicTensorCore(rows=2, columns=4, adc_bits=6, technology=tech)
    layer = PhotonicDense(centroids, core, signed=True)
    sample = X[y == 1][0]
    scores = layer.forward_sample(sample)
    float_scores = layer.forward_float(sample[None, :])[0]
    assert np.argmax(scores) == np.argmax(float_scores)
