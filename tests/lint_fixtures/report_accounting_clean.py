"""Fixture: complete roll-ups and out-of-scope shapes (0 findings)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RunReport:
    requests: int
    analog_energy: float
    latency_quantiles: dict | None = None  # non-numeric: exempt

    @classmethod
    def combined(cls, reports):
        reports = list(reports)
        return cls(
            requests=sum(r.requests for r in reports),
            analog_energy=sum(r.analog_energy for r in reports),
        )


@dataclass(frozen=True)
class ClusterReport:
    cores: int
    shed: int


def build_fleet_record(per_core, shed):
    return ClusterReport(cores=len(per_core), shed=shed)


@dataclass(frozen=True)
class PlainRecord:
    """No combined() and not a fleet record: out of contract scope."""

    value: float
