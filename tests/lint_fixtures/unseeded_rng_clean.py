"""Fixture: every sanctioned randomness form (0 findings)."""

import random

import numpy as np
from numpy.random import default_rng


def draw(seed: int, rng: np.random.Generator | None = None):
    rng = rng if rng is not None else np.random.default_rng(seed)
    local = default_rng(seed + 1)
    stream = np.random.default_rng(np.random.SeedSequence(seed))
    legacy = random.Random(seed)
    return rng.normal(0.0, 1.0, 8), local.integers(0, 8), stream, legacy.random()
