"""Fixture: telemetry used without a dominating guard (4 findings)."""


class Scheduler:
    def __init__(self, telemetry=None):
        self.telemetry = telemetry

    def flush_unguarded_local(self):
        tel = self.telemetry
        tel.metrics.counter("flushes").inc()  # firing: no guard at all

    def flush_unguarded_direct(self):
        self.telemetry.clock.advance(1.0)  # firing: direct attribute use

    def flush_guard_wrong_branch(self):
        tel = self.telemetry
        if tel is None:
            tel.instant("oops", "cache")  # firing: guarded the wrong way

    def flush_guard_does_not_dominate(self, tel):
        if tel is not None:
            pass
        tel.span("late", "flush", 0.0, 1.0)  # firing: guard scope ended
