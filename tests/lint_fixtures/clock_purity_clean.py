"""Fixture: modelled time and the sanctioned accessor (0 findings)."""

from repro.telemetry import ModelClock, wall_clock


def measure(clock: ModelClock):
    started = wall_clock()
    clock.advance(1.5e-6)
    return clock.now, wall_clock() - started
