"""Fixture: dead imports (3 findings)."""

import json  # firing: never referenced
import math
from pathlib import Path  # firing: never referenced
from typing import Iterable as Seq  # firing: bound alias never referenced


def area(radius):
    return math.pi * radius**2
