"""Fixture: every import referenced, including edge forms (0 findings)."""

from __future__ import annotations

import math
import os.path
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Iterable

__all__ = ["area", "Path"]


def area(radius: float, points: Iterable[float] = ()) -> float:
    return math.pi * radius**2 + os.path.getsize(os.curdir) * 0 + len(list(points))
