"""Fixture: compiled-state mutations that skip the hook (3 findings)."""

import numpy as np


class Adc:
    def __init__(self, trim_errors):
        self.trim_errors = trim_errors  # clean: __init__ is exempt
        self._boundaries = None

    def invalidate_boundaries(self):
        self._boundaries = None

    def retrim(self, sigma, rng):
        self.trim_errors = rng.normal(0.0, sigma, 8)  # firing: no hook call

    def retrim_in_place(self, rng):
        self.trim_errors[:] = rng.normal(0.0, 1.0, 8)  # firing: subscript store


class DenseLayer:
    def __init__(self, weights):
        self.q_positive = weights
        self._engine = None

    def invalidate_runtime(self):
        self._engine = None

    def set_weights(self, weights):
        self.q_positive = np.asarray(weights)  # firing: engine stays stale
