"""Fixture: host-clock reads outside the profiling module (4 findings)."""

import time
from datetime import datetime
from time import perf_counter


def measure():
    started = time.time()  # firing
    tick = time.monotonic()  # firing
    fine = perf_counter()  # firing: from-imported name
    stamp = datetime.now()  # firing
    return started, tick, fine, stamp
