"""Fixture: report counters that vanish from roll-ups (2 findings)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RunReport:
    requests: int
    batches: int
    analog_energy: float  # firing: not summed in combined()

    @classmethod
    def combined(cls, reports):
        reports = list(reports)
        return cls(
            requests=sum(r.requests for r in reports),
            batches=sum(r.batches for r in reports),
        )


@dataclass(frozen=True)
class ClusterReport:
    cores: int
    shed: int  # firing: never passed at the fleet roll-up call site


def build_fleet_record(per_core):
    return ClusterReport(cores=len(per_core))
