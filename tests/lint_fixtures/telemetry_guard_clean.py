"""Fixture: every sanctioned telemetry guard form (0 findings)."""


class Scheduler:
    def __init__(self, telemetry=None):
        self.telemetry = telemetry

    def flush_local_guard(self):
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("flushes").inc()
            tel.clock.advance(1.0)

    def flush_early_return(self):
        tel = self.telemetry
        if tel is None:
            return
        tel.span("flush", "flush", 0.0, 1.0)

    def flush_direct_guard(self, seconds):
        if self.telemetry is not None:
            self.telemetry.clock.advance(seconds)

    def flush_inline_and(self, tel):
        return tel is not None and tel.clock.now

    def flush_ternary(self, tel):
        return tel.clock.now if tel is not None else 0.0

    def fleet_now(self, sessions):
        return max(
            (
                session.telemetry.clock.now
                for session in sessions
                if session.telemetry is not None
            ),
            default=0.0,
        )

    def comparisons_are_not_uses(self):
        tel = self.telemetry
        return tel is not None
