"""Fixture: raises that escape the typed hierarchy (3 findings)."""


def check_range(value):
    if value < 0:
        raise ValueError(f"negative: {value}")  # firing
    if value > 100:
        raise RuntimeError("overflow")  # firing
    if value == 13:
        raise Exception("unlucky")  # firing
    return value
