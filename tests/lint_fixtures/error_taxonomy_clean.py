"""Fixture: sanctioned raise forms (0 findings)."""

from repro.errors import ConfigurationError, MappingError


def check_range(value):
    if value < 0:
        raise ConfigurationError(f"negative: {value}")
    if value > 100:
        raise MappingError("overflow")
    if value == 7:
        raise TypeError("programming errors stay builtin")
    if value == 9:
        raise NotImplementedError  # abstract-method idiom stays allowed
    try:
        return 1 / value
    except ZeroDivisionError:
        raise  # re-raise without an exception expression is fine
