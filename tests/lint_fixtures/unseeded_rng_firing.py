"""Fixture: hidden-global-state randomness (4 findings)."""

import random

import numpy as np
from numpy.random import default_rng


def draw():
    noise = np.random.normal(0.0, 1.0, 8)  # firing: global BitGenerator
    np.random.seed(0)  # firing: mutates hidden global state
    jitter = random.random()  # firing: stdlib global RNG
    rng = default_rng()  # firing: entropy-seeded, unrepeatable
    return noise, jitter, rng
