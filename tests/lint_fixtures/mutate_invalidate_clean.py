"""Fixture: sanctioned compiled-state mutation patterns (0 findings)."""

import numpy as np


class Adc:
    def __init__(self, trim_errors):
        self.trim_errors = trim_errors
        self._boundaries = None

    def invalidate_boundaries(self):
        self._boundaries = None

    def retrim(self, sigma, rng):
        self.trim_errors = rng.normal(0.0, sigma, 8)
        self.invalidate_boundaries()


class Core:
    def __init__(self, adc):
        self.adc = adc
        self.runtime_ladder_cache = []

    def invalidate_ladders(self):
        self.runtime_ladder_cache.clear()
        self.adc.invalidate_boundaries()

    def reset_memo(self):
        self.runtime_ladder_cache = []
        self.invalidate_ladders()


class DenseLayer:
    def __init__(self, weights):
        self.q_positive = weights
        self._engine = None

    def invalidate_runtime(self):
        self._engine = None

    def set_weights(self, weights):
        self.q_positive = np.asarray(weights)
        self.invalidate_runtime()


class NoHooksNoContract:
    """A class without invalidate_* hooks is out of contract scope."""

    def __init__(self):
        self.spec = None

    def replace_spec(self, spec):
        self.spec = spec
