"""Unit tests for repro.constants."""

import math

import pytest

from repro import constants as c


def test_dbm_round_trip():
    for dbm in (-30.0, -20.0, 0.0, 10.0):
        assert c.watts_to_dbm(c.dbm_to_watts(dbm)) == pytest.approx(dbm)


def test_dbm_reference_points():
    assert c.dbm_to_watts(0.0) == pytest.approx(1e-3)
    assert c.dbm_to_watts(-20.0) == pytest.approx(10e-6)
    assert c.dbm_to_watts(30.0) == pytest.approx(1.0)


def test_watts_to_dbm_rejects_non_positive():
    with pytest.raises(ValueError):
        c.watts_to_dbm(0.0)
    with pytest.raises(ValueError):
        c.watts_to_dbm(-1.0)


def test_db_linear_round_trip():
    for db in (-30.0, -3.0, 0.0, 3.0, 20.0):
        assert c.linear_to_db(c.db_to_linear(db)) == pytest.approx(db)


def test_linear_to_db_rejects_non_positive():
    with pytest.raises(ValueError):
        c.linear_to_db(0.0)


def test_alpha_conversion_matches_definition():
    # 10 dB/cm over 1 mm must attenuate power by exactly 1 dB.
    alpha = c.db_per_cm_to_alpha(10.0)
    transmission = math.exp(-alpha * 1e-3)
    assert 10.0 * math.log10(transmission) == pytest.approx(-1.0)


def test_wavelength_frequency_round_trip():
    wavelength = 1310.5e-9
    assert c.frequency_to_wavelength(c.wavelength_to_frequency(wavelength)) == pytest.approx(
        wavelength
    )


def test_wavelength_frequency_reject_non_positive():
    with pytest.raises(ValueError):
        c.wavelength_to_frequency(0.0)
    with pytest.raises(ValueError):
        c.frequency_to_wavelength(-1.0)


def test_photon_energy_o_band():
    # ~0.95 eV at 1310 nm.
    energy_ev = c.photon_energy(1310e-9) / c.ELEMENTARY_CHARGE
    assert energy_ev == pytest.approx(0.946, rel=1e-2)


def test_unit_helpers():
    assert c.nm(1.0) == pytest.approx(1e-9)
    assert c.um(2.0) == pytest.approx(2e-6)
    assert c.mm(3.0) == pytest.approx(3e-3)
    assert c.ps(4.0) == pytest.approx(4e-12)
    assert c.ns(5.0) == pytest.approx(5e-9)
    assert c.ghz(6.0) == pytest.approx(6e9)
    assert c.mw(7.0) == pytest.approx(7e-3)
    assert c.uw(8.0) == pytest.approx(8e-6)
    assert c.ff(9.0) == pytest.approx(9e-15)
    assert c.pj(1.0) == pytest.approx(1e-12)
    assert c.fj(1.0) == pytest.approx(1e-15)
