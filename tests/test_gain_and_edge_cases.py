"""Edge-case coverage: TIA range gain, ADC clamp paths, tiny cores."""

import numpy as np
import pytest

from repro.core.eoadc import EoAdc
from repro.core.compute_core import VectorComputeCore
from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError


class TestMatvecGain:
    @pytest.fixture(scope="class")
    def small_system(self, tech):
        core = PhotonicTensorCore(rows=2, columns=4, adc_bits=4, technology=tech)
        core.load_weight_matrix(np.array([[1, 1, 0, 0], [0, 0, 1, 1]]))
        return core

    def test_gain_resolves_small_signals(self, small_system):
        """A weak input that lands in code 0 at unity gain must resolve
        to a non-zero code once the range gain is applied."""
        x = np.full(4, 0.05)
        unity = small_system.matvec(x, gain=1.0)
        boosted = small_system.matvec(x, gain=64.0)
        assert np.all(unity.codes == 0)  # buried below 1 LSB natively
        assert np.all(boosted.codes > 0)

    def test_gain_is_undone_in_estimates(self, small_system):
        """Estimates stay in dot-product units regardless of gain."""
        x = np.full(4, 0.3)
        ideal = small_system.ideal_matvec(x)
        for gain in (2.0, 4.0):
            estimates = small_system.matvec(x, gain=gain).estimates
            full_scale = 4 * small_system.max_weight
            lsb = full_scale / (16 * gain)
            assert np.all(np.abs(estimates - ideal) <= 2.0 * lsb)

    def test_gain_saturates_gracefully(self, small_system):
        """Excessive gain clips at the top code instead of failing."""
        result = small_system.matvec(np.ones(4), gain=100.0)
        assert np.all(result.codes == 15)

    def test_gain_validation(self, small_system):
        with pytest.raises(ConfigurationError):
            small_system.matvec(np.ones(4), gain=0.0)


class TestTinyConfigurations:
    def test_one_by_one_core(self, tech):
        core = PhotonicTensorCore(rows=1, columns=1, technology=tech)
        core.load_weight_matrix([[7]])
        result = core.matvec([1.0])
        assert result.codes.shape == (1,)
        assert result.codes[0] == core.row_adcs[0].levels - 1

    def test_single_channel_compute_core(self, tech):
        core = VectorComputeCore(vector_length=1, weight_bits=1, technology=tech)
        core.load_weights([1])
        assert core.macro_count == 1
        on_current = core.compute([1.0])
        core.load_weights([0])
        off_current = core.compute([1.0])
        assert on_current > 50 * off_current

    def test_one_bit_adc(self, tech):
        adc = EoAdc(tech, bits=1, trim_errors=np.zeros(2))
        assert adc.convert(0.5) == 0
        assert adc.convert(3.5) == 1

    def test_vector_not_multiple_of_macro_width(self, tech):
        """A 1x6 vector needs two macros, the second half-filled."""
        core = VectorComputeCore(vector_length=6, weight_bits=2, technology=tech)
        assert core.macro_count == 2
        core.load_weights([3, 3, 3, 3, 3, 3])
        x = np.array([1.0, 1.0, 1.0, 1.0, 0.0, 0.0])
        partial = core.compute(x)
        full = core.compute(np.ones(6))
        assert full > partial > 0.0


class TestAdcClampPaths:
    def test_convert_clamped_handles_extremes(self, ideal_adc):
        assert ideal_adc.convert_clamped(-10.0) == 0
        assert ideal_adc.convert_clamped(10.0) == 7
        assert ideal_adc.convert_clamped(1.3) == ideal_adc.convert(1.3)

    def test_dequantize_monotone(self, tech):
        core = PhotonicTensorCore(rows=2, columns=4, technology=tech)
        estimates = core.dequantize_codes(np.arange(8))
        assert np.all(np.diff(estimates) > 0)
