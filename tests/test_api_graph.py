"""Tests for the declarative model graphs (repro.api.graph)."""

import numpy as np
import pytest

from repro.api.graph import AvgPool, Conv2d, Dense, Flatten, Model, ReLU
from repro.errors import ConfigurationError
from repro.ml.network import MLP


class TestLayerSpecs:
    def test_dense_normalizes_and_validates(self):
        layer = Dense(np.ones((3, 4)), bias=[1, 2, 3])
        assert layer.out_features == 3 and layer.in_features == 4
        assert layer.bias.dtype == float
        with pytest.raises(ConfigurationError, match="2-D"):
            Dense(np.ones(4))
        with pytest.raises(ConfigurationError, match="bias"):
            Dense(np.ones((3, 4)), bias=np.ones(2))
        with pytest.raises(ConfigurationError, match="gain"):
            Dense(np.ones((3, 4)), gain=0.0)

    def test_conv_normalizes_and_validates(self):
        layer = Conv2d(np.ones((2, 3, 3)))
        assert layer.kernels.shape == (2, 1, 3, 3)  # channel promoted
        assert layer.num_kernels == 2 and layer.kernel_size == 3
        with pytest.raises(ConfigurationError, match="kernels"):
            Conv2d(np.ones((2, 3, 4)))
        with pytest.raises(ConfigurationError, match="stride"):
            Conv2d(np.ones((2, 3, 3)), stride=0)
        with pytest.raises(ConfigurationError, match="gain"):
            Conv2d(np.ones((2, 3, 3)), gain=-1.0)

    def test_avg_pool_validation(self):
        with pytest.raises(ConfigurationError, match="size"):
            AvgPool(0)


class TestModelValidation:
    def test_sequential_builds_and_describes(self):
        model = Model.sequential(Dense(np.ones((4, 6))), ReLU(), Dense(np.ones((2, 4))))
        assert len(model.layers) == 3
        assert model.input_domain == "vector"
        assert "Dense 4x6" in model.describe()

    def test_empty_or_compute_free_models_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one layer"):
            Model.sequential()
        with pytest.raises(ConfigurationError, match="compute layer"):
            Model.sequential(ReLU())

    def test_non_spec_layers_rejected(self):
        with pytest.raises(ConfigurationError, match="not a layer spec"):
            Model.sequential(Dense(np.ones((2, 2))), "relu")

    def test_dense_feature_chain_checked(self):
        with pytest.raises(ConfigurationError, match="features"):
            Model.sequential(Dense(np.ones((4, 6))), Dense(np.ones((2, 5))))

    def test_dense_cannot_consume_feature_maps(self):
        with pytest.raises(ConfigurationError, match="Flatten"):
            Model.sequential(Conv2d(np.ones((2, 3, 3))), Dense(np.ones((2, 8))))

    def test_conv_cannot_follow_vector_layer(self):
        with pytest.raises(ConfigurationError, match="vector-domain"):
            Model.sequential(Dense(np.ones((4, 6))), Conv2d(np.ones((2, 3, 3))))

    def test_conv_channel_chain_checked(self):
        with pytest.raises(ConfigurationError, match="channels"):
            Model.sequential(
                Conv2d(np.ones((2, 3, 3))), Conv2d(np.ones((2, 3, 3, 3)))
            )
        # Matching channels chain fine.
        Model.sequential(Conv2d(np.ones((3, 2, 2))), Conv2d(np.ones((2, 3, 2, 2))))

    def test_cnn_shape_bridges(self):
        model = Model.sequential(
            Conv2d(np.ones((2, 3, 3))), ReLU(), AvgPool(2), Flatten(),
            Dense(np.ones((4, 8))),
        )
        assert model.input_domain == "image"
        assert len(model.compute_layers) == 2


class TestAdapters:
    def test_from_mlp_shares_float_arrays(self):
        mlp = MLP(6, 4, 3)
        model = Model.from_mlp(mlp)
        first, activation, second = model.layers
        assert isinstance(activation, ReLU)
        assert first.weights is mlp.w1 and second.weights is mlp.w2
        np.testing.assert_array_equal(first.bias, mlp.b1)

    def test_from_mlp_rejects_non_mlp(self):
        with pytest.raises(ConfigurationError, match="MLP-like"):
            Model.from_mlp(object())

    def test_from_cnn_composition(self):
        mlp = MLP(8, 4, 3)
        kernels = np.random.default_rng(0).normal(size=(2, 3, 3))
        model = Model.from_cnn(kernels, mlp, pool=2, stride=1, conv_gain=2.0)
        kinds = [type(layer).__name__ for layer in model.layers]
        assert kinds == ["Conv2d", "ReLU", "AvgPool", "Flatten", "Dense", "ReLU", "Dense"]
        assert model.layers[0].gain == 2.0

    def test_to_model_roundtrip_carries_gains(self, tech):
        from repro.core.tensor_core import PhotonicTensorCore
        from repro.ml.network import PhotonicMLP

        rng = np.random.default_rng(5)
        mlp = MLP(6, 4, 3)
        core = PhotonicTensorCore(rows=4, columns=6, technology=tech)
        batch = rng.uniform(0.0, 1.0, (8, 6))
        photonic = PhotonicMLP(mlp, core, calibration_batch=batch)
        model = photonic.to_model()
        first, _, second = model.layers
        assert first.gain == photonic.layer1.gain
        assert second.gain == photonic.layer2.gain
        assert mlp.to_model().layers[0].gain is None  # uncalibrated adapter
