"""Tests for the Section IV-D performance analysis (Table I row)."""

import pytest

from repro.core.performance import PerformanceModel
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def perf(tech):
    return PerformanceModel(tech)


def test_throughput_matches_paper(perf):
    """16 rows x 32 ops x 8 GS/s = 4.096 TOPS (paper rounds to 4.10)."""
    assert perf.ops_per_sample == 512
    assert perf.throughput_tops == pytest.approx(4.096, rel=1e-6)
    assert round(perf.throughput_tops, 2) == 4.10


def test_power_efficiency_matches_paper(perf):
    """3.02 TOPS/W."""
    assert perf.tops_per_watt == pytest.approx(3.02, abs=0.005)


def test_psram_cell_count(perf):
    """Paper: 768 bitcells for 16x16 at 3 bits."""
    assert perf.psram_cell_count == 768


def test_weight_update_rate(perf):
    assert perf.weight_update_rate == pytest.approx(20e9)


def test_power_breakdown_components(perf):
    breakdown = perf.power_ledger().breakdown()
    names = list(breakdown)
    assert any("eoADC" in name for name in names)
    assert any("pSRAM" in name for name in names)
    assert any("TIA" in name for name in names)
    assert any("comb" in name for name in names)
    # eoADC electronics: 16 x 11 mW.
    adc_electronics = [v for k, v in breakdown.items() if "eoADC electronics" in k]
    assert adc_electronics[0] == pytest.approx(16 * 11e-3, rel=1e-6)


def test_total_power_reasonable(perf):
    assert perf.total_power == pytest.approx(4.096 / 3.02, rel=1e-3)


def test_energy_per_op(perf):
    assert perf.energy_per_op == pytest.approx(1.0 / 3.02e12, rel=1e-3)


def test_table_row_contents(perf):
    row = perf.table_row()
    assert row["throughput_tops"] == pytest.approx(4.10, abs=0.01)
    assert row["power_efficiency_tops_per_w"] == pytest.approx(3.02, abs=0.01)
    assert row["weight_update_hz"] == pytest.approx(20e9)


def test_summary_is_readable(perf):
    summary = perf.summary()
    assert "TOPS" in summary and "TOPS/W" in summary and "768" in summary


def test_scaling_with_array_size(tech):
    """Throughput scales with rows x columns; efficiency improves as the
    fixed overheads amortize."""
    small = PerformanceModel(tech, rows=8, columns=8)
    large = PerformanceModel(tech, rows=32, columns=32)
    assert large.throughput_tops == pytest.approx(16 * small.throughput_tops)
    assert large.tops_per_watt > small.tops_per_watt


def test_invalid_configuration(tech):
    with pytest.raises(ConfigurationError):
        PerformanceModel(tech, rows=0)
