"""Unit tests for the plasma-dispersion junction models."""

import pytest

from repro.config import DepletionJunctionSpec, InjectionTunerSpec
from repro.errors import ConfigurationError
from repro.photonics.pn_junction import (
    DepletionTuner,
    InjectionTuner,
    depletion_width,
    soref_bennett_delta_alpha,
    soref_bennett_delta_n,
)


def test_soref_bennett_sign_conventions():
    """Adding carriers lowers the index and raises the absorption."""
    assert soref_bennett_delta_n(1e17, 0.0) < 0.0
    assert soref_bennett_delta_n(0.0, 1e17) < 0.0
    assert soref_bennett_delta_alpha(1e17, 1e17) > 0.0


def test_soref_bennett_order_of_magnitude():
    """~1e17 cm^-3 injection gives |dn| ~ 1e-4 at O-band."""
    delta_n = abs(soref_bennett_delta_n(1e17, 1e17, wavelength=1.31e-6))
    assert 1e-5 < delta_n < 1e-3


def test_soref_bennett_band_selection():
    o_band = soref_bennett_delta_n(1e17, 1e17, wavelength=1.31e-6)
    c_band = soref_bennett_delta_n(1e17, 1e17, wavelength=1.55e-6)
    assert abs(c_band) > abs(o_band)


def test_calibrated_efficiency_is_physically_plausible(tech):
    """The calibrated 32 pm/V maps to a carrier-density modulation well
    inside the Soref-Bennett range for a moderately confined mode."""
    efficiency = tech.depletion.efficiency
    delta_n_eff_per_volt = efficiency * tech.waveguide.group_index / tech.wavelength
    # Required bulk index change at ~30% confinement:
    delta_n_bulk = delta_n_eff_per_volt / 0.3
    # Compare with the shift from a 2e17 cm^-3 swing (upper plausible bound).
    bound = abs(soref_bennett_delta_n(2e17, 2e17))
    assert delta_n_bulk < bound


def test_depletion_width_grows_with_reverse_bias():
    narrow = depletion_width(0.0)
    wide = depletion_width(3.0)
    assert wide > narrow
    # Typical junctions: tens to hundreds of nm.
    assert 10e-9 < narrow < 200e-9


def test_depletion_width_rejects_strong_forward_bias():
    with pytest.raises(ConfigurationError):
        depletion_width(-1.0)


def test_depletion_tuner_odd_symmetry_with_asymmetry():
    tuner = DepletionTuner(DepletionJunctionSpec(asymmetry_per_volt=0.0))
    assert tuner.wavelength_shift(-1.0) == pytest.approx(-tuner.wavelength_shift(1.0))


def test_depletion_tuner_small_signal_efficiency():
    tuner = DepletionTuner()
    shift = tuner.wavelength_shift(-0.01)
    assert shift / 0.01 == pytest.approx(tuner.small_signal_efficiency(), rel=0.02)


def test_depletion_tuner_range_guard():
    tuner = DepletionTuner()
    with pytest.raises(ConfigurationError):
        tuner.wavelength_shift(5.0)
    with pytest.raises(ConfigurationError):
        tuner.wavelength_shift(-5.0)


def test_injection_tuner_blue_shift_monotone():
    tuner = InjectionTuner(InjectionTunerSpec())
    shifts = [tuner.wavelength_shift(v) for v in (0.0, 0.8, 1.2, 1.8)]
    assert shifts[0] == 0.0
    assert all(b <= a for a, b in zip(shifts, shifts[1:]))
    assert shifts[-1] == pytest.approx(-180e-12)


def test_injection_tuner_rejects_negative_drive():
    tuner = InjectionTuner()
    with pytest.raises(ConfigurationError):
        tuner.wavelength_shift(-1.0)
