"""Unit tests for the opto-electric thresholding block."""

import pytest

from repro.electronics.comparator import OptoElectricThresholder
from repro.errors import ConfigurationError


@pytest.fixture()
def thresholder():
    return OptoElectricThresholder(reference_power=18e-6, supply_voltage=1.8)


def test_static_activation_threshold(thresholder):
    """Active exactly when the ring notch drops below the reference."""
    assert thresholder.is_active(10e-6)
    assert thresholder.is_active(17.9e-6)
    assert not thresholder.is_active(18.1e-6)
    assert not thresholder.is_active(200e-6)


def test_activation_voltage_rails(thresholder):
    assert thresholder.activation_voltage(1e-6) == 1.8
    assert thresholder.activation_voltage(100e-6) == 0.0


def test_tia_rail_target_follows_current_sign(thresholder):
    """The with-TIA read path regenerates from the current sign."""
    assert thresholder.tia_rail_target(1e-6) == 1.8
    assert thresholder.tia_rail_target(100e-6) == 0.0


def test_node_slew_is_slow_without_tia(thresholder):
    """The no-TIA path must take hundreds of ps to cross the trip point
    — the physical reason the paper's TIA-less eoADC runs at
    416.7 MS/s instead of 8 GS/s."""
    thresholder.node.voltage = 1.8
    time = 0.0
    dt = 1e-12
    while thresholder.node.voltage > 0.9 and time < 5e-9:
        thresholder.step(1e-6, dt)  # deep notch: reference wins
        time += dt
    assert 100e-12 < time < 1.2e-9
    assert thresholder.node_rail_output() > 0.9


def test_read_chain_time_constant_fits_8gsps(thresholder):
    """TIA + amp settling must fit several time constants in 125 ps."""
    assert thresholder.read_chain_time_constant < 125e-12 / 3.0


def test_read_chain_power_is_per_channel_budget(thresholder):
    assert thresholder.read_chain_power == pytest.approx(0.7975e-3, rel=1e-6)


def test_hysteresis_moves_threshold():
    thresholder = OptoElectricThresholder(
        reference_power=18e-6, hysteresis_power=2e-6
    )
    assert not thresholder.is_active(17e-6)  # inside the hysteresis band
    assert thresholder.is_active(15.9e-6)


def test_rejects_bad_construction():
    with pytest.raises(ConfigurationError):
        OptoElectricThresholder(reference_power=0.0)
    with pytest.raises(ConfigurationError):
        OptoElectricThresholder(reference_power=18e-6, hysteresis_power=-1e-6)
