"""Unit tests for ADC characterization metrics (paper Fig. 10)."""

import numpy as np
import pytest

from repro.electronics.adc_metrics import (
    code_transitions,
    differential_nonlinearity,
    effective_number_of_bits,
    integral_nonlinearity,
    is_monotonic,
    missing_codes,
    sqnr_from_ramp,
    transfer_function,
)
from repro.errors import ConfigurationError


def ideal_converter(lsb=0.5, levels=8):
    def convert(v):
        return min(max(int(v / lsb), 0), levels - 1)

    return convert


def test_transfer_function_sweep():
    voltages, codes = transfer_function(ideal_converter(), 0.0, 3.999, points=801)
    assert voltages.shape == codes.shape == (801,)
    assert codes[0] == 0 and codes[-1] == 7


def test_transfer_function_validates_arguments():
    with pytest.raises(ConfigurationError):
        transfer_function(ideal_converter(), 1.0, 0.0)
    with pytest.raises(ConfigurationError):
        transfer_function(ideal_converter(), 0.0, 1.0, points=1)


def test_code_transitions_of_ideal_converter():
    voltages, codes = transfer_function(ideal_converter(), 0.0, 3.999, points=8001)
    transitions = code_transitions(voltages, codes)
    for code in range(1, 8):
        assert transitions[code] == pytest.approx(code * 0.5, abs=1e-3)


def test_dnl_of_ideal_converter_is_zero():
    voltages, codes = transfer_function(ideal_converter(), 0.0, 3.999, points=16001)
    transitions = code_transitions(voltages, codes)
    dnl = differential_nonlinearity(transitions, lsb=0.5, levels=8)
    assert np.all(np.abs(dnl) < 5e-3)


def test_dnl_flags_missing_code():
    transitions = {1: 0.5, 3: 1.5}  # code 2 never appears
    dnl = differential_nonlinearity(transitions, lsb=0.5, levels=8)
    assert dnl[1] == -1.0  # missing upper transition
    assert dnl[2] == -1.0


def test_dnl_detects_wide_and_narrow_bins():
    transitions = {1: 0.5, 2: 1.25, 3: 1.5}  # bin 1 is 1.5 LSB, bin 2 is 0.5
    dnl = differential_nonlinearity(transitions, lsb=0.5, levels=4)
    assert dnl[1] == pytest.approx(0.5)
    assert dnl[2] == pytest.approx(-0.5)


def test_inl_is_cumulative_dnl():
    dnl = np.array([0.0, 0.2, -0.1, 0.0])
    inl = integral_nonlinearity(dnl)
    assert inl == pytest.approx([0.0, 0.2, 0.1, 0.1])


def test_missing_codes_detection():
    assert missing_codes([0, 1, 3], levels=4) == [2]
    assert missing_codes(range(8), levels=8) == []


def test_monotonicity_check():
    assert is_monotonic([0, 0, 1, 2, 2, 3])
    assert not is_monotonic([0, 1, 0, 2])


def test_sqnr_near_ideal_bound():
    """An ideal 3-bit ramp test approaches 6.02*3 + 1.76 dB."""
    voltages, codes = transfer_function(ideal_converter(), 0.0, 3.999, points=40001)
    sqnr = sqnr_from_ramp(voltages, codes, lsb=0.5)
    # Ramp crest factor differs from sine; allow a band around the bound.
    assert 17.0 < sqnr < 21.0
    enob = effective_number_of_bits(sqnr)
    assert 2.5 < enob < 3.3


def test_dnl_validates_lsb():
    with pytest.raises(ConfigurationError):
        differential_nonlinearity({}, lsb=0.0, levels=8)
