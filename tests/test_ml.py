"""Tests for datasets, photonic layers, tiling and the MLP flow."""

import numpy as np
import pytest

from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError, MappingError
from repro.ml.convolution import sobel_kernels
from repro.ml.datasets import gaussian_blobs, procedural_digits, train_test_split
from repro.ml.layers import PhotonicDense, relu
from repro.ml.mapping import MatrixTiler
from repro.ml.network import MLP, PhotonicCNN, PhotonicMLP, cnn_float_features


class TestDatasets:
    def test_blobs_shapes_and_ranges(self):
        X, y = gaussian_blobs(samples_per_class=10, classes=3, features=5)
        assert X.shape == (30, 5)
        assert set(y) == {0, 1, 2}
        assert np.all(X >= 0.0)

    def test_blobs_reproducible(self):
        X1, y1 = gaussian_blobs(seed=4)
        X2, y2 = gaussian_blobs(seed=4)
        assert np.array_equal(X1, X2) and np.array_equal(y1, y2)

    def test_digits_pooled_to_16_features(self):
        X, y = procedural_digits(samples_per_class=5)
        assert X.shape == (50, 16)
        assert set(y) == set(range(10))
        assert np.all((X >= 0.0) & (X <= 1.0))

    def test_digits_unpooled(self):
        X, _ = procedural_digits(samples_per_class=2, pooled=False)
        assert X.shape == (20, 64)

    def test_digit_classes_are_distinguishable(self):
        """Class-mean templates must differ pairwise."""
        X, y = procedural_digits(samples_per_class=20, noise=0.05)
        means = np.stack([X[y == d].mean(axis=0) for d in range(10)])
        for a in range(10):
            for b in range(a + 1, 10):
                assert np.linalg.norm(means[a] - means[b]) > 0.15

    def test_split_preserves_all_samples(self):
        X, y = gaussian_blobs(samples_per_class=10, classes=2, features=4)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25)
        assert len(Xtr) + len(Xte) == len(X)
        assert len(ytr) == len(Xtr) and len(yte) == len(Xte)

    def test_split_validation(self):
        X, y = gaussian_blobs(samples_per_class=5, classes=2, features=2)
        with pytest.raises(ConfigurationError):
            train_test_split(X, y, test_fraction=0.0)
        with pytest.raises(ConfigurationError):
            train_test_split(X, y[:-1])


class TestTiler:
    @pytest.fixture(scope="class")
    def small_ptc(self, tech):
        return PhotonicTensorCore(rows=4, columns=4, technology=tech)

    def test_tile_counts(self, small_ptc):
        tiler = MatrixTiler(small_ptc)
        assert tiler.tile_counts(4, 4) == (1, 1)
        assert tiler.tile_counts(5, 9) == (2, 3)

    def test_tiled_matvec_matches_untiled_within_quantization(self, small_ptc, tech):
        """A 6x6 matmul on a 4x4 core must approximate W @ x."""
        tiler = MatrixTiler(small_ptc)
        rng = np.random.default_rng(31)
        W = rng.integers(0, 8, (6, 6))
        x = rng.uniform(0.0, 1.0, 6)
        estimate = tiler.matvec(W, x)
        ideal = W @ x
        # Each of 2 column tiles contributes <= ~1 ADC LSB of error.
        lsb = small_ptc.columns * small_ptc.max_weight / 8
        assert np.all(np.abs(estimate - ideal) <= 2.5 * lsb)

    def test_matmul_batches(self, small_ptc):
        tiler = MatrixTiler(small_ptc)
        rng = np.random.default_rng(32)
        W = rng.integers(0, 8, (4, 4))
        X = rng.uniform(0.0, 1.0, (4, 3))
        result = tiler.matmul(W, X)
        assert result.shape == (4, 3)

    def test_validation(self, small_ptc):
        tiler = MatrixTiler(small_ptc)
        with pytest.raises(MappingError):
            tiler.matvec(np.ones((2, 2, 2), dtype=int), np.ones(2))
        with pytest.raises(MappingError):
            tiler.matvec(np.full((2, 2), 9), np.ones(2))
        with pytest.raises(MappingError):
            tiler.matvec(np.ones((2, 2), dtype=int), np.ones(3))


class TestLayersAndNetwork:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.5])), [0.0, 0.5])

    def test_photonic_dense_approximates_float_layer(self, tech):
        core = PhotonicTensorCore(rows=4, columns=4, adc_bits=6, technology=tech)
        rng = np.random.default_rng(41)
        weights = rng.normal(0.0, 1.0, (3, 4))
        layer = PhotonicDense(weights, core)
        x = rng.uniform(0.0, 2.0, (4, 4))
        photonic = layer.forward(x)
        reference = layer.forward_float(x)
        scale = np.abs(reference).max()
        assert np.max(np.abs(photonic - reference)) < 0.35 * scale

    def test_mlp_trains_on_blobs(self):
        X, y = gaussian_blobs(samples_per_class=40, classes=3, features=8, spread=0.5)
        Xtr, Xte, ytr, yte = train_test_split(X, y)
        mlp = MLP(8, 8, 3)
        losses = mlp.train(Xtr, ytr, epochs=40)
        assert losses[-1] < losses[0]
        assert mlp.accuracy(Xte, yte) > 0.7

    def test_photonic_inference_close_to_float(self, tech):
        X, y = gaussian_blobs(samples_per_class=30, classes=3, features=8, spread=0.5)
        Xtr, Xte, ytr, yte = train_test_split(X, y)
        mlp = MLP(8, 8, 3)
        mlp.train(Xtr, ytr, epochs=40)
        float_accuracy = mlp.accuracy(Xte, yte)
        core = PhotonicTensorCore(rows=8, columns=8, adc_bits=6, technology=tech)
        photonic = PhotonicMLP(mlp, core, calibration_batch=Xtr[:30])
        subset = slice(0, 20)
        photonic_accuracy = photonic.accuracy(Xte[subset], yte[subset])
        assert photonic_accuracy >= float_accuracy - 0.25

    def test_runtime_path_matches_device_loop(self, tech):
        """runtime=True must reproduce the per-sample loop outputs."""
        core = PhotonicTensorCore(rows=4, columns=6, technology=tech)
        rng = np.random.default_rng(23)
        weights = rng.normal(0.0, 1.0, (5, 9))
        batch = rng.uniform(0.0, 2.0, (6, 9))
        loop = PhotonicDense(weights, core)
        fast = PhotonicDense(weights, core, runtime=True)
        loop.calibrate_gain(batch)
        fast.calibrate_gain(batch)
        assert loop.gain == fast.gain
        assert np.allclose(loop.forward(batch), fast.forward(batch))

    def test_runtime_path_honours_custom_adc_bits(self, tech):
        """The fast path must quantize with the core's ADC precision,
        not the technology default."""
        core = PhotonicTensorCore(rows=4, columns=4, adc_bits=5, technology=tech)
        rng = np.random.default_rng(29)
        weights = rng.normal(0.0, 1.0, (3, 4))
        batch = rng.uniform(0.0, 2.0, (5, 4))
        loop = PhotonicDense(weights, core)
        fast = PhotonicDense(weights, core, runtime=True)
        assert np.allclose(loop.forward(batch), fast.forward(batch))

    def test_runtime_mlp_matches_device_loop(self, tech):
        X, y = gaussian_blobs(samples_per_class=10, classes=3, features=6, spread=0.5)
        mlp = MLP(6, 4, 3)
        mlp.train(X, y, epochs=5)
        core = PhotonicTensorCore(rows=4, columns=6, technology=tech)
        loop = PhotonicMLP(mlp, core, calibration_batch=X[:8])
        fast = PhotonicMLP(mlp, core, calibration_batch=X[:8], runtime=True)
        subset = X[:10]
        assert np.allclose(loop.forward(subset), fast.forward(subset))

    def test_set_weights_invalidates_runtime_engines(self, tech):
        """Regression: a weight update must not leave the compiled
        runtime engines silently serving the old program."""
        core = PhotonicTensorCore(rows=4, columns=6, technology=tech)
        rng = np.random.default_rng(31)
        first = rng.normal(0.0, 1.0, (4, 6))
        second = rng.normal(0.0, 1.0, (4, 6))
        batch = rng.uniform(0.0, 2.0, (5, 6))

        layer = PhotonicDense(first, core, runtime=True)
        before = layer.forward(batch)
        assert layer._runtime_positive is not None  # engines compiled

        layer.set_weights(second)
        assert layer._runtime_positive is None and layer._runtime_negative is None
        after = layer.forward(batch)
        fresh = PhotonicDense(second, core, runtime=True)
        assert not np.allclose(before, after)
        assert np.allclose(after, fresh.forward(batch))
        # ... and the runtime output still tracks the device loop.
        loop = PhotonicDense(second, core)
        assert np.allclose(after, loop.forward(batch))

    def test_set_weights_bias_handling(self, tech):
        core = PhotonicTensorCore(rows=2, columns=2, technology=tech)
        layer = PhotonicDense(np.ones((2, 2)), core, bias=np.array([1.0, 2.0]))
        layer.set_weights(2.0 * np.ones((2, 2)))
        np.testing.assert_array_equal(layer.bias, [1.0, 2.0])  # shape fits: kept
        layer.set_weights(np.ones((3, 2)))
        np.testing.assert_array_equal(layer.bias, np.zeros(3))  # reshaped: reset
        with pytest.raises(ConfigurationError):
            layer.set_weights(np.ones((2, 2)), bias=np.ones(3))

    def test_invalidate_runtime_after_inplace_mutation(self, tech):
        core = PhotonicTensorCore(rows=2, columns=3, technology=tech)
        rng = np.random.default_rng(33)
        layer = PhotonicDense(rng.normal(0.0, 1.0, (2, 3)), core, runtime=True)
        batch = rng.uniform(0.0, 1.0, (3, 3))
        layer.forward(batch)
        engines = layer._runtime_positive
        layer.invalidate_runtime()
        assert layer._runtime_positive is None
        layer.forward(batch)
        assert layer._runtime_positive is not engines  # recompiled

    def test_layer_validation(self, tech):
        core = PhotonicTensorCore(rows=2, columns=2, technology=tech)
        with pytest.raises(ConfigurationError):
            PhotonicDense(np.ones(3), core)
        layer = PhotonicDense(np.ones((2, 2)), core)
        with pytest.raises(ConfigurationError):
            layer.forward_sample(np.ones(3))
        with pytest.raises(ConfigurationError):
            MLP(0, 1, 2)


class TestPhotonicCNN:
    @pytest.fixture(scope="class")
    def digits(self):
        X, y = procedural_digits(samples_per_class=6, noise=0.08, pooled=False)
        return X.reshape(-1, 8, 8), y

    @pytest.fixture(scope="class")
    def trained(self, digits):
        images, labels = digits
        kernels = sobel_kernels()
        features = cnn_float_features(kernels, images)
        mlp = MLP(features.shape[1], 12, 10, seed=3)
        mlp.train(features, labels, epochs=25)
        return kernels, mlp

    def test_float_features_shape_and_stage_equivalence(self, digits):
        images, _ = digits
        kernels = sobel_kernels()
        features = cnn_float_features(kernels, images[:4])
        # conv (6x6) -> 2x2 pool -> 3x3, times 2 kernels.
        assert features.shape == (4, 2 * 3 * 3)
        assert np.all(features >= 0.0)  # post-ReLU

    def test_runtime_cnn_matches_device_loop(self, tech, digits, trained):
        images, _ = digits
        kernels, mlp = trained
        core = PhotonicTensorCore(rows=4, columns=9, adc_bits=6, technology=tech)
        loop = PhotonicCNN(kernels, mlp, core, calibration_images=images[:10])
        fast = PhotonicCNN(kernels, mlp, core, calibration_images=images[:10],
                           runtime=True)
        subset = images[:3]
        np.testing.assert_allclose(fast.forward(subset), loop.forward(subset))

    def test_photonic_cnn_classifies_digits(self, tech, digits, trained):
        images, labels = digits
        kernels, mlp = trained
        float_accuracy = mlp.accuracy(cnn_float_features(kernels, images), labels)
        core = PhotonicTensorCore(rows=4, columns=9, adc_bits=6, technology=tech)
        cnn = PhotonicCNN(kernels, mlp, core, calibration_images=images[:10],
                          runtime=True)
        subset = slice(0, 20)
        assert cnn.accuracy(images[subset], labels[subset]) >= float_accuracy - 0.3

    def test_head_feature_mismatch_raises(self, tech, digits, trained):
        images, _ = digits
        kernels, mlp = trained
        core = PhotonicTensorCore(rows=4, columns=9, technology=tech)
        with pytest.raises(ConfigurationError, match="features"):
            PhotonicCNN(kernels, mlp, core, pool=1, calibration_images=images[:4])
